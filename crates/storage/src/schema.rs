use serde::Serialize;

/// Physical data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Interned string.
    Str,
}

impl DataType {
    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Str => "Str",
        }
    }
}

/// Mining-level kind of an attribute (paper Definition 5).
///
/// Categorical attributes admit only `=` predicates in summarization
/// patterns; numeric attributes also admit `≤`/`≥`. The kind is independent
/// of the physical type: an integer id column is categorical, an integer
/// points column is numeric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AttrKind {
    /// Equality-only attribute.
    Categorical,
    /// Ordered attribute admitting threshold predicates.
    Numeric,
}

/// One attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Field {
    /// Attribute name (unique within the relation).
    pub name: String,
    /// Physical type.
    pub dtype: DataType,
    /// Mining kind (categorical vs. numeric).
    pub kind: AttrKind,
    /// True iff the attribute is part of the relation's primary key.
    pub is_pk: bool,
}

/// Schema of one relation: name plus ordered fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Schema {
    /// Relation name.
    pub name: String,
    /// Ordered attributes.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Index of the field named `name`.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of the primary-key attributes, in schema order.
    pub fn primary_key(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.is_pk)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }
}

/// Fluent builder for [`Schema`].
///
/// ```
/// use cajade_storage::{SchemaBuilder, DataType, AttrKind};
/// let s = SchemaBuilder::new("game")
///     .column_pk("game_date", DataType::Str, AttrKind::Categorical)
///     .column_pk("home_id", DataType::Int, AttrKind::Categorical)
///     .column("home_points", DataType::Int, AttrKind::Numeric)
///     .build();
/// assert_eq!(s.primary_key(), vec!["game_date", "home_id"]);
/// ```
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    fields: Vec<Field>,
}

impl SchemaBuilder {
    /// Starts a schema for relation `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Adds a non-key column.
    pub fn column(mut self, name: impl Into<String>, dtype: DataType, kind: AttrKind) -> Self {
        self.fields.push(Field {
            name: name.into(),
            dtype,
            kind,
            is_pk: false,
        });
        self
    }

    /// Adds a primary-key column.
    pub fn column_pk(mut self, name: impl Into<String>, dtype: DataType, kind: AttrKind) -> Self {
        self.fields.push(Field {
            name: name.into(),
            dtype,
            kind,
            is_pk: true,
        });
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        debug_assert!(
            {
                let mut names: Vec<_> = self.fields.iter().map(|f| &f.name).collect();
                names.sort();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate column names in schema `{}`",
            self.name
        );
        Schema {
            name: self.name,
            fields: self.fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        SchemaBuilder::new("player_game_stats")
            .column_pk("game_date", DataType::Str, AttrKind::Categorical)
            .column_pk("home_id", DataType::Int, AttrKind::Categorical)
            .column_pk("player_id", DataType::Int, AttrKind::Categorical)
            .column("points", DataType::Int, AttrKind::Numeric)
            .column("minutes", DataType::Float, AttrKind::Numeric)
            .build()
    }

    #[test]
    fn field_lookup() {
        let s = demo();
        assert_eq!(s.field_index("points"), Some(3));
        assert_eq!(s.field_index("nope"), None);
        assert_eq!(s.field("minutes").unwrap().dtype, DataType::Float);
    }

    #[test]
    fn composite_primary_key() {
        let s = demo();
        assert_eq!(s.primary_key(), vec!["game_date", "home_id", "player_id"]);
        assert_eq!(s.arity(), 5);
    }

    #[test]
    fn kind_is_independent_of_dtype() {
        let s = demo();
        // Integer id column is categorical, integer points column numeric.
        assert_eq!(s.field("player_id").unwrap().kind, AttrKind::Categorical);
        assert_eq!(s.field("points").unwrap().kind, AttrKind::Numeric);
    }
}
