use crate::pool::StrId;
use crate::schema::DataType;
use crate::value::Value;
use crate::StorageError;

/// A null bitmap: bit `i` set means row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullMask {
    words: Vec<u64>,
    any: bool,
}

impl NullMask {
    /// An empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row's null flag.
    #[inline]
    pub fn push(&mut self, is_null: bool, row: usize) {
        let word = row / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if is_null {
            self.words[word] |= 1 << (row % 64);
            self.any = true;
        }
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if !self.any {
            return false;
        }
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// True iff any row is NULL (fast path check).
    #[inline]
    pub fn any_null(&self) -> bool {
        self.any
    }
}

/// Typed columnar storage for one attribute.
///
/// The variant matches the field's [`DataType`]; NULLs are tracked in a
/// side bitmap with an in-band placeholder in the data vector.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Row values (placeholder 0 where null).
        data: Vec<i64>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// 64-bit floats.
    Float {
        /// Row values (placeholder 0.0 where null).
        data: Vec<f64>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// Interned strings.
    Str {
        /// Row values (placeholder StrId(0) where null).
        data: Vec<StrId>,
        /// Null bitmap.
        nulls: NullMask,
    },
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int {
                data: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::new(),
                nulls: NullMask::new(),
            },
            DataType::Str => Column::Str {
                data: Vec::new(),
                nulls: NullMask::new(),
            },
        }
    }

    /// Creates an empty column with pre-allocated capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int {
                data: Vec::with_capacity(cap),
                nulls: NullMask::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::with_capacity(cap),
                nulls: NullMask::new(),
            },
            DataType::Str => Column::Str {
                data: Vec::with_capacity(cap),
                nulls: NullMask::new(),
            },
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, checking its type against the column.
    pub fn push(&mut self, v: Value, column_name: &str) -> Result<(), StorageError> {
        let row = self.len();
        match (self, v) {
            (Column::Int { data, nulls }, Value::Int(i)) => {
                data.push(i);
                nulls.push(false, row);
            }
            (Column::Int { data, nulls }, Value::Null) => {
                data.push(0);
                nulls.push(true, row);
            }
            (Column::Float { data, nulls }, Value::Float(f)) => {
                data.push(f);
                nulls.push(false, row);
            }
            // Ints widen into float columns (convenient for generated data).
            (Column::Float { data, nulls }, Value::Int(i)) => {
                data.push(i as f64);
                nulls.push(false, row);
            }
            (Column::Float { data, nulls }, Value::Null) => {
                data.push(0.0);
                nulls.push(true, row);
            }
            (Column::Str { data, nulls }, Value::Str(id)) => {
                data.push(id);
                nulls.push(false, row);
            }
            (Column::Str { data, nulls }, Value::Null) => {
                data.push(StrId(0));
                nulls.push(true, row);
            }
            (col, v) => {
                return Err(StorageError::TypeMismatch {
                    column: column_name.to_string(),
                    expected: col.dtype().name(),
                    got: v.type_name(),
                })
            }
        }
        Ok(())
    }

    /// Reads row `i` as a [`Value`].
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            Column::Float { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            Column::Str { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Str(data[i])
                }
            }
        }
    }

    /// Numeric view of row `i` (ints widen; strings/nulls are `None`).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            Column::Int { data, nulls } => (!nulls.is_null(i)).then(|| data[i] as f64),
            Column::Float { data, nulls } => (!nulls.is_null(i)).then(|| data[i]),
            Column::Str { .. } => None,
        }
    }

    /// String-id view of row `i`.
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<StrId> {
        match self {
            Column::Str { data, nulls } => (!nulls.is_null(i)).then(|| data[i]),
            _ => None,
        }
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int { nulls, .. } => nulls.is_null(i),
            Column::Float { nulls, .. } => nulls.is_null(i),
            Column::Str { nulls, .. } => nulls.is_null(i),
        }
    }

    /// Number of distinct non-null values (used by the join-graph cost
    /// estimator, paper §4 "estimateCost").
    pub fn distinct_count(&self) -> usize {
        use std::collections::HashSet;
        match self {
            Column::Int { data, nulls } => {
                let mut set = HashSet::with_capacity(data.len().min(1024));
                for (i, v) in data.iter().enumerate() {
                    if !nulls.is_null(i) {
                        set.insert(*v);
                    }
                }
                set.len()
            }
            Column::Float { data, nulls } => {
                let mut set = HashSet::with_capacity(data.len().min(1024));
                for (i, v) in data.iter().enumerate() {
                    if !nulls.is_null(i) {
                        set.insert(v.to_bits());
                    }
                }
                set.len()
            }
            Column::Str { data, nulls } => {
                let mut set = HashSet::with_capacity(data.len().min(1024));
                for (i, v) in data.iter().enumerate() {
                    if !nulls.is_null(i) {
                        set.insert(*v);
                    }
                }
                set.len()
            }
        }
    }

    /// Gathers the rows at `indices` into a new column (projection helper
    /// used by join materialization).
    pub fn gather(&self, indices: &[usize]) -> Column {
        let mut out = Column::with_capacity(self.dtype(), indices.len());
        for (row, &i) in indices.iter().enumerate() {
            match (&mut out, self) {
                (
                    Column::Int { data, nulls },
                    Column::Int {
                        data: src,
                        nulls: sn,
                    },
                ) => {
                    data.push(src[i]);
                    nulls.push(sn.is_null(i), row);
                }
                (
                    Column::Float { data, nulls },
                    Column::Float {
                        data: src,
                        nulls: sn,
                    },
                ) => {
                    data.push(src[i]);
                    nulls.push(sn.is_null(i), row);
                }
                (
                    Column::Str { data, nulls },
                    Column::Str {
                        data: src,
                        nulls: sn,
                    },
                ) => {
                    data.push(src[i]);
                    nulls.push(sn.is_null(i), row);
                }
                _ => unreachable!("gather output matches input dtype"),
            }
        }
        out
    }

    /// Approximate heap footprint in bytes (cell payloads + null bitmap).
    /// Used by cache byte-budget accounting; intentionally cheap rather
    /// than allocator-exact.
    pub fn approx_bytes(&self) -> usize {
        let payload = match self {
            Column::Int { data, .. } => data.len() * std::mem::size_of::<i64>(),
            Column::Float { data, .. } => data.len() * std::mem::size_of::<f64>(),
            Column::Str { data, .. } => data.len() * std::mem::size_of::<crate::StrId>(),
        };
        payload + self.len().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nullmask_roundtrip() {
        let mut m = NullMask::new();
        for i in 0..200 {
            m.push(i % 3 == 0, i);
        }
        for i in 0..200 {
            assert_eq!(m.is_null(i), i % 3 == 0, "row {i}");
        }
        assert!(m.any_null());
    }

    #[test]
    fn nullmask_without_nulls_is_cheap() {
        let mut m = NullMask::new();
        for i in 0..100 {
            m.push(false, i);
        }
        assert!(!m.any_null());
        assert!(!m.is_null(50));
    }

    #[test]
    fn push_and_read_back() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(7), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        c.push(Value::Int(-3), "x").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(7));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(-3));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(2), "x").unwrap();
        assert_eq!(c.value(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(DataType::Int);
        let err = c.push(Value::Float(1.5), "pts").unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn distinct_count_ignores_nulls() {
        let mut c = Column::new(DataType::Int);
        for v in [1, 2, 2, 3] {
            c.push(Value::Int(v), "x").unwrap();
        }
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn gather_projects_rows() {
        let mut c = Column::new(DataType::Str);
        for i in 0..5 {
            c.push(Value::Str(StrId(i)), "x").unwrap();
        }
        let g = c.gather(&[4, 0, 2]);
        assert_eq!(g.value(0), Value::Str(StrId(4)));
        assert_eq!(g.value(1), Value::Str(StrId(0)));
        assert_eq!(g.value(2), Value::Str(StrId(2)));
    }
}
