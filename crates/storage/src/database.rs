use std::collections::HashMap;

use crate::pool::{StrId, StringPool};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use crate::{Result, StorageError};

/// A foreign-key constraint: `from_table(from_cols) → to_table(to_cols)`.
///
/// Foreign keys serve double duty: referential metadata for the generators'
/// integrity tests, and the seed for the default schema graph (paper §2.2:
/// "our system can extract join conditions from the foreign key constraints
/// of a database").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing relation.
    pub from_table: String,
    /// Referencing attributes.
    pub from_cols: Vec<String>,
    /// Referenced relation.
    pub to_table: String,
    /// Referenced attributes (typically the target's key).
    pub to_cols: Vec<String>,
}

/// A catalog of tables sharing one [`StringPool`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Database name (informational).
    pub name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    foreign_keys: Vec<ForeignKey>,
    pool: StringPool,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Interns a string in the shared pool.
    #[inline]
    pub fn intern(&mut self, s: &str) -> StrId {
        self.pool.intern(s)
    }

    /// Looks up an interned string without inserting.
    pub fn lookup_str(&self, s: &str) -> Option<StrId> {
        self.pool.get(s)
    }

    /// Resolves an interned string id.
    #[inline]
    pub fn resolve(&self, id: StrId) -> &str {
        self.pool.resolve(id)
    }

    /// The shared string pool.
    #[inline]
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    /// Mutable access to the shared string pool.
    #[inline]
    pub fn pool_mut(&mut self) -> &mut StringPool {
        &mut self.pool
    }

    /// Creates an empty table from `schema` and returns its index.
    pub fn create_table(&mut self, schema: Schema) -> Result<usize> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::TableExists(schema.name));
        }
        let idx = self.tables.len();
        self.by_name.insert(schema.name.clone(), idx);
        self.tables.push(Table::new(schema));
        Ok(idx)
    }

    /// Inserts a fully-built table.
    pub fn insert_table(&mut self, table: Table) -> Result<usize> {
        if self.by_name.contains_key(table.name()) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        let idx = self.tables.len();
        self.by_name.insert(table.name().to_string(), idx);
        self.tables.push(table);
        Ok(idx)
    }

    /// Replaces an existing table (same name) with a new instance — used by
    /// the dataset scaler.
    pub fn replace_table(&mut self, table: Table) -> Result<()> {
        let idx = *self
            .by_name
            .get(table.name())
            .ok_or_else(|| StorageError::NoSuchTable(table.name().to_string()))?;
        self.tables[idx] = table;
        Ok(())
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.by_name
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        match self.by_name.get(name) {
            Some(&i) => Ok(&mut self.tables[i]),
            None => Err(StorageError::NoSuchTable(name.to_string())),
        }
    }

    /// All tables in creation order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Names of all tables in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name()).collect()
    }

    /// Registers a foreign key after validating that its endpoints exist and
    /// have matching arity.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        if fk.from_cols.len() != fk.to_cols.len() || fk.from_cols.is_empty() {
            return Err(StorageError::InvalidForeignKey(format!(
                "{} → {}: column lists must be equal-length and non-empty",
                fk.from_table, fk.to_table
            )));
        }
        let from = self.table(&fk.from_table).map_err(|_| {
            StorageError::InvalidForeignKey(format!("missing table `{}`", fk.from_table))
        })?;
        for c in &fk.from_cols {
            if from.schema().field_index(c).is_none() {
                return Err(StorageError::InvalidForeignKey(format!(
                    "missing column `{}` in `{}`",
                    c, fk.from_table
                )));
            }
        }
        let to = self.table(&fk.to_table).map_err(|_| {
            StorageError::InvalidForeignKey(format!("missing table `{}`", fk.to_table))
        })?;
        for c in &fk.to_cols {
            if to.schema().field_index(c).is_none() {
                return Err(StorageError::InvalidForeignKey(format!(
                    "missing column `{}` in `{}`",
                    c, fk.to_table
                )));
            }
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    /// All registered foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Total number of rows across all tables (scale-factor sanity metric).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.num_rows()).sum()
    }

    /// A content fingerprint of the whole catalog: schemas, foreign keys,
    /// and every cell value (strings hashed by their text, not their
    /// pool id, so logically-equal databases agree regardless of intern
    /// order). Two databases with the same fingerprint hold the same
    /// data, which is what cache invalidation on re-registration needs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&self.name);
        for t in &self.tables {
            let schema = t.schema();
            h.write_str(&schema.name);
            for f in &schema.fields {
                h.write_str(&f.name);
                h.write_str(f.dtype.name());
                h.write_u64(matches!(f.kind, crate::AttrKind::Numeric) as u64);
                h.write_u64(f.is_pk as u64);
            }
            h.write_u64(t.num_rows() as u64);
            for c in 0..t.num_columns() {
                let col = t.column(c);
                for row in 0..col.len() {
                    match col.value(row) {
                        Value::Null => h.write_u64(0x9E3779B97F4A7C15),
                        Value::Int(i) => {
                            h.write_u64(1);
                            h.write_u64(i as u64);
                        }
                        Value::Float(f) => {
                            h.write_u64(2);
                            // Normalize so 2.0f and NaN payloads hash stably.
                            h.write_u64(if f == 0.0 { 0 } else { f.to_bits() });
                        }
                        Value::Str(id) => {
                            h.write_u64(3);
                            h.write_str(self.pool.resolve(id));
                        }
                    }
                }
            }
        }
        for fk in &self.foreign_keys {
            h.write_str(&fk.from_table);
            for c in &fk.from_cols {
                h.write_str(c);
            }
            h.write_str(&fk.to_table);
            for c in &fk.to_cols {
                h.write_str(c);
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a, kept local so fingerprints are stable across Rust
/// releases (`DefaultHasher`'s algorithm is unspecified).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, DataType, SchemaBuilder};
    use crate::value::Value;

    fn db_with_two_tables() -> Database {
        let mut db = Database::new("nba");
        db.create_table(
            SchemaBuilder::new("team")
                .column_pk("team_id", DataType::Int, AttrKind::Categorical)
                .column("team", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("game_date", DataType::Str, AttrKind::Categorical)
                .column_pk("home_id", DataType::Int, AttrKind::Categorical)
                .column("winner_id", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup() {
        let db = db_with_two_tables();
        assert!(db.table("team").is_ok());
        assert!(db.table("nope").is_err());
        assert_eq!(db.table_names(), vec!["team", "game"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_two_tables();
        let err = db
            .create_table(SchemaBuilder::new("team").build())
            .unwrap_err();
        assert!(matches!(err, StorageError::TableExists(_)));
    }

    #[test]
    fn shared_pool_across_tables() {
        let mut db = db_with_two_tables();
        let gsw = db.intern("GSW");
        let date = db.intern("2016-01-22");
        db.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(gsw)])
            .unwrap();
        db.table_mut("game")
            .unwrap()
            .push_row(vec![Value::Str(date), Value::Int(1), Value::Int(1)])
            .unwrap();
        assert_eq!(db.resolve(gsw), "GSW");
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    fn foreign_key_validation() {
        let mut db = db_with_two_tables();
        db.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["winner_id".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        })
        .unwrap();
        assert_eq!(db.foreign_keys().len(), 1);

        let bad = db.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["missing".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        });
        assert!(matches!(bad, Err(StorageError::InvalidForeignKey(_))));

        let bad_arity = db.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["winner_id".into(), "home_id".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        });
        assert!(matches!(bad_arity, Err(StorageError::InvalidForeignKey(_))));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = db_with_two_tables();
        let b = db_with_two_tables();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same print");

        // A data change moves the fingerprint.
        let mut c = db_with_two_tables();
        let gsw = c.intern("GSW");
        c.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(gsw)])
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());

        // Equal strings interned in different order still agree.
        let mut d1 = db_with_two_tables();
        let x = d1.intern("x");
        let _y = d1.intern("y");
        let mut d2 = db_with_two_tables();
        let _y = d2.intern("y");
        let x2 = d2.intern("x");
        d1.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(x)])
            .unwrap();
        d2.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(x2)])
            .unwrap();
        assert_eq!(d1.fingerprint(), d2.fingerprint());

        // Foreign keys participate.
        let mut e = db_with_two_tables();
        e.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["winner_id".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        })
        .unwrap();
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn replace_table_swaps_contents() {
        let mut db = db_with_two_tables();
        let schema = db.table("team").unwrap().schema().clone();
        let mut bigger = Table::new(schema);
        bigger.push_row(vec![Value::Int(9), Value::Null]).unwrap();
        db.replace_table(bigger).unwrap();
        assert_eq!(db.table("team").unwrap().num_rows(), 1);
    }
}
