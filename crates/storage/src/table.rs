use crate::column::Column;
use crate::schema::Schema;
use crate::value::Value;
use crate::{Result, StorageError};

/// A materialized relation: schema plus typed columns.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.fields.iter().map(|f| Column::new(f.dtype)).collect();
        Self {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Creates an empty table with row-capacity hint.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| Column::with_capacity(f.dtype, rows))
            .collect();
        Self {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by position.
    #[inline]
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .field_index(name)
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: self.schema.name.clone(),
                column: name.to_string(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Cell value at (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Full row as owned values.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.num_rows {
            return Err(StorageError::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Re-flags which fields form the primary key — used by ingestion's
    /// post-load composite-key detection, which can only certify a key
    /// after seeing every row. Every named column must exist; all other
    /// fields lose their key flag.
    pub fn set_primary_key(&mut self, key_columns: &[String]) -> Result<()> {
        for name in key_columns {
            if self.schema.field_index(name).is_none() {
                return Err(StorageError::NoSuchColumn {
                    table: self.schema.name.clone(),
                    column: name.clone(),
                });
            }
        }
        for f in &mut self.schema.fields {
            f.is_pk = key_columns.contains(&f.name);
        }
        Ok(())
    }

    /// Appends a row, type-checking each value.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for ((col, field), v) in self.columns.iter_mut().zip(&self.schema.fields).zip(row) {
            col.push(v, &field.name)?;
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Materializes the subset of rows at `indices` (order preserved,
    /// duplicates allowed) into a new table with the same schema.
    pub fn gather(&self, indices: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            num_rows: indices.len(),
        }
    }

    /// Iterates over row indices.
    pub fn row_indices(&self) -> impl Iterator<Item = usize> {
        0..self.num_rows
    }
}

/// Incremental row-at-a-time builder (kept separate from [`Table`] so
/// generators can stream rows without re-checking schema invariants).
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts building a table for `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            table: Table::new(schema),
        }
    }

    /// Starts building with a row-capacity hint.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        Self {
            table: Table::with_capacity(schema, rows),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<Value>) -> Result<()> {
        self.table.push_row(row)
    }

    /// Finishes and returns the table.
    pub fn finish(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, DataType, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("x", DataType::Float, AttrKind::Numeric)
            .build()
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new(schema());
        t.push_row(vec![Value::Int(1), Value::Float(0.5)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1).unwrap(), vec![Value::Int(2), Value::Null]);
        assert_eq!(t.value(0, 1), Value::Float(0.5));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(schema());
        let err = t.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn row_out_of_bounds() {
        let t = Table::new(schema());
        assert!(matches!(t.row(0), Err(StorageError::RowOutOfBounds { .. })));
    }

    #[test]
    fn column_by_name_errors_mention_table() {
        let t = Table::new(schema());
        let err = t.column_by_name("zzz").unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn gather_subsets_rows() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 * 0.1)])
                .unwrap();
        }
        let g = t.gather(&[9, 9, 0]);
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.value(0, 0), Value::Int(9));
        assert_eq!(g.value(1, 0), Value::Int(9));
        assert_eq!(g.value(2, 0), Value::Int(0));
    }

    #[test]
    fn builder_finishes() {
        let mut b = TableBuilder::with_capacity(schema(), 4);
        b.push(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        let t = b.finish();
        assert_eq!(t.num_rows(), 1);
    }
}
