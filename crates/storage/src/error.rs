use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    NoSuchTable(String),
    /// No column with this name exists in the table.
    NoSuchColumn {
        /// Table that was searched.
        table: String,
        /// Column that was requested.
        column: String,
    },
    /// A value's type does not match the column's declared [`crate::DataType`].
    TypeMismatch {
        /// Column being written.
        column: String,
        /// Declared type of the column.
        expected: &'static str,
        /// Type of the offending value.
        got: &'static str,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// A foreign key referenced a missing table or column.
    InvalidForeignKey(String),
    /// Malformed CSV input (I/O failure or unreadable structure).
    Csv {
        /// 1-based physical line where the offending record starts (0 when
        /// the failure is not attributable to a line, e.g. an open error).
        line: u64,
        /// What went wrong.
        msg: String,
    },
    /// Column type inference failed or was contradicted by later data.
    TypeInference {
        /// Column whose inferred type broke.
        column: String,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::NoSuchTable(name) => write!(f, "no such table `{name}`"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column `{column}`: expected {expected}, got {got}"
            ),
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} fields, row has {got}"
                )
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (table has {len} rows)")
            }
            StorageError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            StorageError::Csv { line, msg } => {
                if *line == 0 {
                    write!(f, "malformed CSV: {msg}")
                } else {
                    write!(f, "malformed CSV at line {line}: {msg}")
                }
            }
            StorageError::TypeInference { column, msg } => {
                write!(f, "type inference failed for column `{column}`: {msg}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::NoSuchColumn {
            table: "game".into(),
            column: "bogus".into(),
        };
        assert!(e.to_string().contains("bogus"));
        assert!(e.to_string().contains("game"));

        let e = StorageError::TypeMismatch {
            column: "pts".into(),
            expected: "Int",
            got: "Str",
        };
        assert!(e.to_string().contains("pts"));

        let e = StorageError::Csv {
            line: 17,
            msg: "unbalanced quote".into(),
        };
        assert!(e.to_string().contains("line 17"));
        assert!(e.to_string().contains("unbalanced quote"));
        let unlocated = StorageError::Csv {
            line: 0,
            msg: "cannot open".into(),
        };
        assert!(!unlocated.to_string().contains("line"));

        let e = StorageError::TypeInference {
            column: "zip".into(),
            msg: "Int column met `N/A`".into(),
        };
        assert!(e.to_string().contains("zip"));
        assert!(e.to_string().contains("N/A"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&StorageError::TableExists("x".into()));
    }
}
