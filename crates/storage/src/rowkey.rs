//! Composite-key encoding for hash joins and group-by.
//!
//! Join and grouping keys are multi-column; hashing a `Vec<Value>` per row
//! would allocate and branch heavily. Instead we serialize the key columns
//! of a row into a compact byte buffer (via [`bytes::BufMut`]) that is then
//! used directly as the hash-map key. Encoding is injective per value —
//! every value is prefixed by a type tag — so two rows encode to the same
//! bytes iff their key values are pairwise `sql_eq`-equal (with ints
//! canonicalized to the float encoding when a float ever participates is
//! avoided by encoding ints and whole floats identically).
//!
//! NULL keys encode to a sentinel that never equals another row's key,
//! matching SQL semantics where `NULL = NULL` is not true: callers should
//! use [`encode_key`]'s `None` result to drop such rows from equi-joins.

use bytes::{BufMut, BytesMut};

use crate::value::Value;

/// Tag bytes for the injective encoding.
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encodes one value into `buf`. Returns `false` for NULL (caller should
/// discard the row for equi-join purposes).
#[inline]
pub fn encode_value(buf: &mut BytesMut, v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(i) => {
            // Whole-valued floats must encode identically to the equal int
            // so that `Int(2)` joins with `Float(2.0)` (sql_eq semantics).
            buf.put_u8(TAG_INT);
            buf.put_i64(*i);
            true
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                buf.put_u8(TAG_INT);
                buf.put_i64(*f as i64);
            } else {
                buf.put_u8(TAG_FLOAT);
                buf.put_u64(f.to_bits());
            }
            true
        }
        Value::Str(id) => {
            buf.put_u8(TAG_STR);
            buf.put_u32(id.0);
            true
        }
    }
}

/// Encodes a composite key. Returns `None` if any component is NULL.
pub fn encode_key(values: &[Value]) -> Option<Vec<u8>> {
    let mut buf = BytesMut::with_capacity(values.len() * 9);
    for v in values {
        if !encode_value(&mut buf, v) {
            return None;
        }
    }
    Some(buf.to_vec())
}

/// Encodes a composite key reusing a scratch buffer; returns `None` on NULL.
/// The returned slice borrows the scratch buffer.
pub fn encode_key_into<'a>(scratch: &'a mut BytesMut, values: &[Value]) -> Option<&'a [u8]> {
    scratch.clear();
    for v in values {
        if !encode_value(scratch, v) {
            return None;
        }
    }
    Some(&scratch[..])
}

/// Encodes a composite *grouping* key: NULLs are allowed and all encode to
/// the same sentinel, matching SQL `GROUP BY` semantics where all NULLs form
/// one group (unlike equi-join keys, which drop NULL rows).
pub fn encode_group_key(values: &[Value]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(values.len() * 9);
    for v in values {
        if !encode_value(&mut buf, v) {
            buf.put_u8(0); // NULL tag
        }
    }
    buf.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::StrId;
    use proptest::prelude::*;

    #[test]
    fn null_key_is_rejected() {
        assert!(encode_key(&[Value::Int(1), Value::Null]).is_none());
    }

    #[test]
    fn int_and_whole_float_encode_identically() {
        let a = encode_key(&[Value::Int(2)]).unwrap();
        let b = encode_key(&[Value::Float(2.0)]).unwrap();
        assert_eq!(a, b);
        let c = encode_key(&[Value::Float(2.5)]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn encoding_is_injective_across_types() {
        // Str(2) must not collide with Int(2).
        let s = encode_key(&[Value::Str(StrId(2))]).unwrap();
        let i = encode_key(&[Value::Int(2)]).unwrap();
        assert_ne!(s, i);
    }

    #[test]
    fn composite_keys_do_not_blur_boundaries() {
        // (1, 2) vs (12,) — tags and fixed widths prevent concatenation tricks.
        let a = encode_key(&[Value::Int(1), Value::Int(2)]).unwrap();
        let b = encode_key(&[Value::Int(12)]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn scratch_reuse_matches_fresh_encoding() {
        let mut scratch = BytesMut::new();
        let vals = [Value::Int(5), Value::Str(StrId(7))];
        let fresh = encode_key(&vals).unwrap();
        let reused = encode_key_into(&mut scratch, &vals).unwrap().to_vec();
        assert_eq!(fresh, reused);
    }

    fn arb_nonnull() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Value::Float),
            (0u32..500).prop_map(|i| Value::Str(StrId(i))),
        ]
    }

    proptest! {
        /// Keys are equal iff all components are sql_eq-equal.
        #[test]
        fn prop_key_equality_matches_sql_eq(
            a in proptest::collection::vec(arb_nonnull(), 1..4),
            b in proptest::collection::vec(arb_nonnull(), 1..4),
        ) {
            let ka = encode_key(&a).unwrap();
            let kb = encode_key(&b).unwrap();
            let all_eq = a.len() == b.len()
                && a.iter().zip(&b).all(|(x, y)| x.sql_eq(y));
            prop_assert_eq!(ka == kb, all_eq);
        }
    }
}
