//! # cajade-storage
//!
//! In-memory columnar relational storage substrate for the CaJaDE
//! reproduction (SIGMOD'21, "Putting Things into Context").
//!
//! The original system ran on PostgreSQL; this crate provides the subset of
//! relational storage the CaJaDE algorithms actually touch:
//!
//! * typed columnar tables ([`Table`], [`Column`]) with null support,
//! * dictionary-interned strings ([`StringPool`]) so categorical values are
//!   compared as `u32` ids in the hot pattern-matching loops,
//! * a catalog ([`Database`]) with primary-key and foreign-key metadata —
//!   foreign keys seed the default schema graph (paper §2.2),
//! * composite-key encoding ([`rowkey`]) used by hash joins and group-by.
//!
//! Attributes carry an [`AttrKind`] (categorical vs. numeric) because the
//! pattern language of Definition 5 treats them differently: categorical
//! attributes admit only equality predicates while numeric attributes also
//! admit `≤` / `≥` comparisons.
//!
//! ## Example
//!
//! ```
//! use cajade_storage::{Database, DataType, AttrKind, SchemaBuilder, Value};
//!
//! let mut db = Database::new("demo");
//! let schema = SchemaBuilder::new("team")
//!     .column_pk("team_id", DataType::Int, AttrKind::Categorical)
//!     .column("team", DataType::Str, AttrKind::Categorical)
//!     .build();
//! let mut b = db.create_table(schema).unwrap();
//! let gsw = db.intern("GSW");
//! db.table_mut("team").unwrap().push_row(vec![Value::Int(1), Value::Str(gsw)]).unwrap();
//! assert_eq!(db.table("team").unwrap().num_rows(), 1);
//! # let _ = b;
//! ```

#![warn(missing_docs)]

mod column;
pub mod csv;
mod database;
mod error;
mod pool;
pub mod rowkey;
mod schema;
mod table;
mod value;

pub use column::{Column, NullMask};
pub use csv::{parse_typed_cell, read_csv, write_csv, CsvReader};
pub use database::{Database, ForeignKey};
pub use error::StorageError;
pub use pool::{StrId, StringPool};
pub use schema::{AttrKind, DataType, Field, Schema, SchemaBuilder};
pub use table::{Table, TableBuilder};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
