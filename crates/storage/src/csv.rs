//! CSV import/export — the adoption path for using CaJaDE on your own
//! data: load tables from CSV files, declare kinds/keys via the schema
//! (or let `cajade-ingest` infer them), and explain away.
//!
//! The dialect is RFC-4180-ish: comma-separated, double-quote quoting
//! with `""` escapes, `\n` or `\r\n` line ends, one header row, an
//! optional UTF-8 BOM. Empty fields parse as NULL for numeric columns
//! and as the empty string for string columns.
//!
//! [`CsvReader`] is the streaming record reader shared by the one-shot
//! [`read_csv`] (schema known up front) and the ingestion subsystem's
//! two-pass load (first pass infers the schema, second pass loads).

use std::io::{BufRead, Write};

use crate::pool::StringPool;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::{Result, StorageError};

/// Writes `table` as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, pool: &StringPool, out: &mut W) -> std::io::Result<()> {
    let header: Vec<String> = table
        .schema()
        .fields
        .iter()
        .map(|f| quote(&f.name))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for r in 0..table.num_rows() {
        let cells: Vec<String> = (0..table.num_columns())
            .map(|c| match table.value(r, c) {
                Value::Null => String::new(),
                Value::Str(id) => quote(pool.resolve(id)),
                v => v.render(pool),
            })
            .collect();
        writeln!(out, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Reads CSV into a new [`Table`] with the given schema. Columns are
/// matched by header name (order-independent); missing columns error.
pub fn read_csv<R: BufRead>(schema: Schema, pool: &mut StringPool, input: R) -> Result<Table> {
    let mut rows = CsvReader::new(input);
    let header = rows.next_row()?.ok_or_else(|| StorageError::Csv {
        line: 0,
        msg: "empty input (no header row)".into(),
    })?;

    // Map schema field → header position.
    let mut positions = Vec::with_capacity(schema.arity());
    for f in &schema.fields {
        let pos =
            header
                .iter()
                .position(|h| h == &f.name)
                .ok_or_else(|| StorageError::NoSuchColumn {
                    table: schema.name.clone(),
                    column: f.name.clone(),
                })?;
        positions.push(pos);
    }

    let mut table = Table::new(schema);
    while let Some(row) = rows.next_row()? {
        let mut values = Vec::with_capacity(positions.len());
        for (fi, &pos) in positions.iter().enumerate() {
            let raw = row.get(pos).map(String::as_str).unwrap_or("");
            let field = &table.schema().fields[fi];
            let v = parse_typed_cell(raw, field.dtype, pool).ok_or_else(|| {
                StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    got: "unparseable text",
                }
            })?;
            values.push(v);
        }
        table.push_row(values)?;
    }
    Ok(table)
}

/// Parses one CSV cell under a known [`DataType`]. Empty cells become
/// NULL for numeric columns and the empty string for string columns.
/// Returns `None` when the text does not parse as the requested type —
/// callers decide whether that is an error ([`read_csv`]) or a coercion
/// to NULL (the ingestion subsystem's lenient mode).
pub fn parse_typed_cell(raw: &str, dtype: DataType, pool: &mut StringPool) -> Option<Value> {
    match dtype {
        DataType::Str => Some(Value::Str(pool.intern(raw))),
        DataType::Int => {
            let t = raw.trim();
            if t.is_empty() {
                Some(Value::Null)
            } else {
                t.parse::<i64>().ok().map(Value::Int)
            }
        }
        DataType::Float => {
            let t = raw.trim();
            if t.is_empty() {
                Some(Value::Null)
            } else {
                t.parse::<f64>().ok().map(Value::Float)
            }
        }
    }
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Streaming CSV record reader supporting quoted fields with embedded
/// commas, quotes, and newlines, plus CRLF line ends and a UTF-8 BOM.
///
/// Tracks physical line numbers so parse failures can be reported
/// against the source file ([`StorageError::Csv`]). Blank lines between
/// records are skipped.
pub struct CsvReader<R: BufRead> {
    input: R,
    /// Physical lines consumed so far.
    lines_read: u64,
    /// Line where the most recently returned record started.
    record_line: u64,
    first: bool,
}

impl<R: BufRead> CsvReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            input,
            lines_read: 0,
            record_line: 0,
            first: true,
        }
    }

    /// 1-based physical line where the last record returned by
    /// [`next_row`](Self::next_row) started (0 before the first record).
    pub fn record_line(&self) -> u64 {
        self.record_line
    }

    /// Reads the next logical record (which may span multiple physical
    /// lines when a quoted field embeds newlines). Returns `Ok(None)` at
    /// end of input.
    pub fn next_row(&mut self) -> Result<Option<Vec<String>>> {
        loop {
            let mut raw = String::new();
            let start_line = self.lines_read + 1;
            // Accumulate physical lines until quotes balance (embedded \n).
            loop {
                let mut line = String::new();
                let n = self
                    .input
                    .read_line(&mut line)
                    .map_err(|e| StorageError::Csv {
                        line: self.lines_read + 1,
                        msg: e.to_string(),
                    })?;
                if n == 0 {
                    if raw.is_empty() {
                        return Ok(None);
                    }
                    break;
                }
                self.lines_read += 1;
                if self.first {
                    // Strip a UTF-8 byte-order mark from the head of the file.
                    if let Some(rest) = line.strip_prefix('\u{feff}') {
                        line = rest.to_string();
                    }
                    self.first = false;
                }
                raw.push_str(&line);
                if raw.matches('"').count().is_multiple_of(2) {
                    break;
                }
            }
            let raw = raw.trim_end_matches(['\n', '\r']);
            if raw.is_empty() {
                // Skip blank lines between records.
                continue;
            }
            self.record_line = start_line;
            return Ok(Some(split_record(raw)));
        }
    }
}

/// Splits one logical record into fields, honouring quoting.
fn split_record(raw: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = raw.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new("t")
            .column_pk("id", DataType::Int, AttrKind::Categorical)
            .column("name", DataType::Str, AttrKind::Categorical)
            .column("score", DataType::Float, AttrKind::Numeric)
            .build()
    }

    #[test]
    fn round_trip() {
        let mut pool = StringPool::new();
        let mut t = Table::new(schema());
        let a = pool.intern("plain");
        let b = pool.intern("with, comma and \"quotes\"");
        t.push_row(vec![Value::Int(1), Value::Str(a), Value::Float(0.5)])
            .unwrap();
        t.push_row(vec![Value::Int(2), Value::Str(b), Value::Null])
            .unwrap();

        let mut buf = Vec::new();
        write_csv(&t, &pool, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("id,name,score\n"));
        assert!(text.contains("\"with, comma and \"\"quotes\"\"\""));

        let back = read_csv(schema(), &mut pool, &buf[..]).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.value(0, 0), Value::Int(1));
        assert_eq!(back.value(1, 2), Value::Null);
        match back.value(1, 1) {
            Value::Str(id) => assert_eq!(pool.resolve(id), "with, comma and \"quotes\""),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn header_order_independent() {
        let csv = "score,id,name\n1.5,7,x\n";
        let mut pool = StringPool::new();
        let t = read_csv(schema(), &mut pool, csv.as_bytes()).unwrap();
        assert_eq!(t.value(0, 0), Value::Int(7));
        assert_eq!(t.value(0, 2), Value::Float(1.5));
    }

    #[test]
    fn missing_column_is_an_error() {
        let csv = "id,name\n1,x\n";
        let mut pool = StringPool::new();
        let err = read_csv(schema(), &mut pool, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::NoSuchColumn { .. }));
    }

    #[test]
    fn bad_number_is_a_type_error() {
        let csv = "id,name,score\nnot_a_number,x,1.0\n";
        let mut pool = StringPool::new();
        let err = read_csv(schema(), &mut pool, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "id,name,score\n1,\"line1\nline2\",2.0\n";
        let mut pool = StringPool::new();
        let t = read_csv(schema(), &mut pool, csv.as_bytes()).unwrap();
        match t.value(0, 1) {
            Value::Str(id) => assert_eq!(pool.resolve(id), "line1\nline2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blank_lines_skipped_and_empty_file_errors() {
        let csv = "id,name,score\n\n1,x,1.0\n\n";
        let mut pool = StringPool::new();
        let t = read_csv(schema(), &mut pool, csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 1);
        let err = read_csv(schema(), &mut pool, "".as_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Csv { line: 0, .. }));
    }

    #[test]
    fn reader_tracks_record_lines_across_embedded_newlines() {
        let csv = "id,name\n1,\"a\nb\"\n2,c\n";
        let mut r = CsvReader::new(csv.as_bytes());
        r.next_row().unwrap().unwrap(); // header
        assert_eq!(r.record_line(), 1);
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row, vec!["1", "a\nb"]);
        assert_eq!(r.record_line(), 2);
        let row = r.next_row().unwrap().unwrap();
        assert_eq!(row, vec!["2", "c"]);
        assert_eq!(r.record_line(), 4, "quoted field consumed two lines");
        assert!(r.next_row().unwrap().is_none());
    }

    #[test]
    fn bom_and_crlf_are_transparent() {
        let csv = "\u{feff}id,name\r\n1,x\r\n";
        let mut r = CsvReader::new(csv.as_bytes());
        assert_eq!(r.next_row().unwrap().unwrap(), vec!["id", "name"]);
        assert_eq!(r.next_row().unwrap().unwrap(), vec!["1", "x"]);
    }
}
