use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an interned string inside a [`StringPool`].
///
/// Categorical column data is stored as `StrId`s, so the pattern-matching
/// hot loops (Definition 5 / Definition 7 of the paper) compare 4-byte ids
/// instead of string contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

impl StrId {
    /// The raw index into the pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dictionary of interned strings shared by all tables of a [`crate::Database`].
///
/// Interning is append-only: ids are stable for the lifetime of the pool.
#[derive(Debug, Default, Clone)]
pub struct StringPool {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, StrId>,
}

impl StringPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable id. Idempotent.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = StrId(self.strings.len() as u32);
        self.strings.push(Arc::clone(&arc));
        self.index.insert(arc, id);
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.index.get(s).copied()
    }

    /// Resolves an id back to its string. Panics on a foreign id.
    #[inline]
    pub fn resolve(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Resolves an id if it belongs to this pool.
    pub fn try_resolve(&self, id: StrId) -> Option<&str> {
        self.strings.get(id.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut p = StringPool::new();
        let a = p.intern("GSW");
        let b = p.intern("GSW");
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut p = StringPool::new();
        let a = p.intern("a");
        let b = p.intern("b");
        let c = p.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(p.resolve(b), "b");
        // Re-interning earlier strings does not shift ids.
        assert_eq!(p.intern("a"), a);
        assert_eq!(p.resolve(c), "c");
    }

    #[test]
    fn get_does_not_insert() {
        let mut p = StringPool::new();
        assert!(p.get("x").is_none());
        p.intern("x");
        assert!(p.get("x").is_some());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn try_resolve_rejects_foreign_ids() {
        let p = StringPool::new();
        assert!(p.try_resolve(StrId(42)).is_none());
    }

    proptest! {
        /// Round trip: resolve(intern(s)) == s, for arbitrary strings.
        #[test]
        fn prop_intern_round_trip(strings in proptest::collection::vec(".*", 0..32)) {
            let mut p = StringPool::new();
            let ids: Vec<_> = strings.iter().map(|s| p.intern(s)).collect();
            for (s, id) in strings.iter().zip(ids) {
                prop_assert_eq!(p.resolve(id), s.as_str());
            }
        }

        /// Distinct strings get distinct ids; equal strings get equal ids.
        #[test]
        fn prop_intern_injective(a in ".*", b in ".*") {
            let mut p = StringPool::new();
            let ia = p.intern(&a);
            let ib = p.intern(&b);
            prop_assert_eq!(a == b, ia == ib);
        }
    }
}
