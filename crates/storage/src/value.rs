use std::cmp::Ordering;
use std::fmt;

use crate::pool::{StrId, StringPool};

/// A single cell value.
///
/// `Value` is the row-oriented exchange type at API boundaries; bulk data
/// lives in typed [`crate::Column`]s. Strings are interned ([`StrId`]) —
/// resolve them through the owning database's [`StringPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(StrId),
}

impl Value {
    /// Name of the value's runtime type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
        }
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints widen to f64, floats pass through.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no coercion from float).
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interned-string view.
    #[inline]
    pub fn as_str_id(&self) -> Option<StrId> {
        match self {
            Value::Str(id) => Some(*id),
            _ => None,
        }
    }

    /// Total order over values.
    ///
    /// `Null` sorts first; ints and floats compare numerically (cross-type,
    /// with `-0.0 = 0.0` so the order agrees with [`Value::sql_eq`]);
    /// strings compare by intern id. CaJaDE only ever *orders* numeric
    /// attributes (Definition 5 restricts categorical attributes to
    /// equality), so id-order on strings is sufficient and cheap. NaN sorts
    /// after every other float, making the order total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        // Canonicalize -0.0 so ordering agrees with SQL equality.
        fn norm(f: f64) -> f64 {
            if f == 0.0 {
                0.0
            } else {
                f
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm(*a).total_cmp(&norm(*b)),
            (Int(a), Float(b)) => (*a as f64).total_cmp(&norm(*b)),
            (Float(a), Int(b)) => norm(*a).total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            // Numbers sort before strings.
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }

    /// SQL-style equality: NULL equals nothing (not even NULL); ints and
    /// floats compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Int(a), Int(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            _ => false,
        }
    }

    /// Renders the value using `pool` to resolve strings.
    pub fn render(&self, pool: &StringPool) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(id) => pool
                .try_resolve(*id)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("<str#{}>", id.0)),
        }
    }
}

/// Compact float formatting: integers print without a trailing `.0` noise
/// beyond two decimals (matches the paper's table style, e.g. `0.71`).
pub(crate) fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        let s = format!("{f:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Str(id) => write!(f, "<str#{}>", id.0),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<StrId> for Value {
    fn from(v: StrId) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).sql_eq(&Value::Float(2.1)));
    }

    #[test]
    fn sql_null_equals_nothing() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1e300).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn render_resolves_strings() {
        let mut p = StringPool::new();
        let id = p.intern("S. Curry");
        assert_eq!(Value::Str(id).render(&p), "S. Curry");
        assert_eq!(Value::Float(0.71).render(&p), "0.71");
        assert_eq!(Value::Float(73.0).render(&p), "73");
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            (0u32..1000).prop_map(|i| Value::Str(StrId(i))),
        ]
    }

    proptest! {
        /// total_cmp is antisymmetric.
        #[test]
        fn prop_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
            prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        }

        /// total_cmp is transitive (sampled).
        #[test]
        fn prop_cmp_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
            let mut v = [a, b, c];
            v.sort_by(|x, y| x.total_cmp(y));
            prop_assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
            prop_assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
            prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
        }

        /// sql_eq implies total_cmp == Equal for non-null values.
        #[test]
        fn prop_eq_consistent_with_cmp(a in arb_value(), b in arb_value()) {
            if a.sql_eq(&b) {
                prop_assert_eq!(a.total_cmp(&b), Ordering::Equal);
            }
        }
    }
}
