//! # cajade-graph
//!
//! Schema graphs, join graphs, join-graph enumeration (paper Algorithm 2),
//! cardinality-based cost estimation, and augmented-provenance-table (APT)
//! materialization (Definition 4).
//!
//! * [`SchemaGraph`] — which joins are permissible (Definition 2): nodes
//!   are relations, edges carry *sets* of alternative join conditions
//!   (e.g. Fig. 3's `PlayerGameScoring–Game` edge has both the plain
//!   key join and the `home = winner` variant). Extracted from foreign
//!   keys and/or registered by hand.
//! * [`JoinGraph`] — one way of augmenting the provenance (Definition 3):
//!   an undirected multigraph with a distinguished `PT` node; repeated
//!   relations get fresh aliases (`lineup_player1`, `lineup_player2`).
//! * [`enumerate_join_graphs`] — Algorithm 2: iterative deepening over
//!   edge count with both extension types, validity checks (primary-key
//!   coverage + estimated cost ≤ λ_qcost) and canonical-form dedup.
//! * [`Apt`] — the materialized augmented provenance table, carrying the
//!   originating PT row id per APT row, which is exactly what the
//!   Definition-7 coverage semantics needs.

#![warn(missing_docs)]

pub mod apt;
pub mod cost;
pub mod discovery;
pub mod enumerate;
mod error;
pub mod join_graph;
pub mod schema_graph;

pub use apt::{Apt, AptField};
pub use cost::CostEstimator;
pub use discovery::{
    discover_joins, discovered_schema_graph, extend_schema_graph, DiscoveredGraph, DiscoveryConfig,
    JoinCandidate,
};
pub use enumerate::{enumerate_join_graphs, EnumConfig, EnumeratedGraph};
pub use error::GraphError;
pub use join_graph::{JgEdge, JgNode, JoinGraph, JoinGraphKey, NodeLabel};
pub use schema_graph::{AttrPair, JoinCond, SchemaEdge, SchemaGraph};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
