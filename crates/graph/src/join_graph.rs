//! Join graphs (paper Definition 3): one concrete way of augmenting the
//! provenance table with context relations.

use std::collections::HashMap;

use crate::schema_graph::JoinCond;

/// Label of a join-graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeLabel {
    /// The distinguished provenance-table node (exactly one per graph).
    Pt,
    /// A context relation.
    Rel(String),
}

/// A join-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JgNode {
    /// Node label.
    pub label: NodeLabel,
}

/// A join-graph edge. The condition is stored oriented: `cond.pairs[i].left`
/// belongs to the `from` node and `.right` to the `to` node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JgEdge {
    /// Source node index (orientation of `cond`).
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Join condition (oriented from → to).
    pub cond: JoinCond,
    /// Index of the schema-graph edge this edge instantiates.
    pub schema_edge: usize,
    /// Index of the condition within the schema edge's label set.
    pub cond_idx: usize,
    /// When `from` or `to` is the PT node: the query FROM-entry index the
    /// condition's PT-side attributes bind to. This implements the paper's
    /// alias disambiguation — a relation appearing twice in the query can
    /// give two parallel edges that differ only in this binding.
    pub pt_from_idx: Option<usize>,
}

/// An undirected node/edge-labelled multigraph with one PT node
/// (Definition 3). Node 0 is always the PT node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinGraph {
    /// Nodes; index 0 is the PT node.
    pub nodes: Vec<JgNode>,
    /// Edges (multi-edges allowed; no edge may have PT as both endpoints).
    pub edges: Vec<JgEdge>,
}

impl JoinGraph {
    /// The graph consisting only of the PT node (Algorithm 2's Ω₀).
    pub fn pt_only() -> Self {
        JoinGraph {
            nodes: vec![JgNode {
                label: NodeLabel::Pt,
            }],
            edges: Vec::new(),
        }
    }

    /// Index of the PT node (always 0 by construction).
    pub fn pt_node(&self) -> usize {
        0
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Relation name of a non-PT node.
    pub fn rel_of(&self, node: usize) -> Option<&str> {
        match &self.nodes[node].label {
            NodeLabel::Pt => None,
            NodeLabel::Rel(r) => Some(r),
        }
    }

    /// Edge indices incident to `node`.
    pub fn incident_edges(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == node || e.to == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Display aliases per node: `PT` for the PT node; a relation appearing
    /// once keeps its name, repeated relations get `name1`, `name2`, … in
    /// node order (the paper's `LineupPlayer1` / `LineupPlayer2` style).
    pub fn display_aliases(&self) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for n in &self.nodes {
            if let NodeLabel::Rel(r) = &n.label {
                *counts.entry(r.as_str()).or_default() += 1;
            }
        }
        let mut seen: HashMap<&str, usize> = HashMap::new();
        self.nodes
            .iter()
            .map(|n| match &n.label {
                NodeLabel::Pt => "PT".to_string(),
                NodeLabel::Rel(r) => {
                    if counts[r.as_str()] == 1 {
                        r.clone()
                    } else {
                        let k = seen.entry(r.as_str()).or_default();
                        *k += 1;
                        format!("{r}{k}")
                    }
                }
            })
            .collect()
    }

    /// Compact structure description in the paper's style,
    /// e.g. `PT - player_salary - player`.
    pub fn structure_string(&self) -> String {
        let aliases = self.display_aliases();
        let mut s = aliases.join(" - ");
        let extra = self
            .edges
            .len()
            .saturating_sub(self.nodes.len().saturating_sub(1));
        if extra > 0 {
            s.push_str(&format!(
                " (+{extra} extra edge{})",
                if extra > 1 { "s" } else { "" }
            ));
        }
        s
    }

    /// Renders every edge with its condition (appendix-table style).
    pub fn describe_edges(&self) -> Vec<String> {
        let aliases = self.display_aliases();
        self.edges
            .iter()
            .map(|e| e.cond.render(&aliases[e.from], &aliases[e.to]))
            .collect()
    }

    /// A canonical string key: two graphs get the same key iff they are
    /// isomorphic under a node permutation that fixes the PT node and
    /// preserves labels. Used for deduplication during enumeration —
    /// `ExtendJG` generates the same graph along many paths. Graph sizes
    /// are bounded by λ#edges (≤ 4 non-PT nodes in practice), so
    /// brute-force permutation is cheap.
    pub fn canonical_key(&self) -> String {
        let n = self.nodes.len();
        let non_pt: Vec<usize> = (1..n).collect();
        let mut best: Option<String> = None;

        permute(&non_pt, &mut |perm| {
            // mapping[old] = new position; PT stays 0.
            let mut mapping = vec![0usize; n];
            for (new_pos, &old) in perm.iter().enumerate() {
                mapping[old] = new_pos + 1;
            }
            // Node labels in new order.
            let mut labels = vec![String::new(); n];
            labels[0] = "PT".into();
            for &old in perm {
                labels[mapping[old]] = match &self.nodes[old].label {
                    NodeLabel::Pt => unreachable!("only node 0 is PT"),
                    NodeLabel::Rel(r) => r.clone(),
                };
            }
            let mut edge_keys: Vec<String> = self
                .edges
                .iter()
                .map(|e| {
                    let f = mapping[e.from];
                    let t = mapping[e.to];
                    let fwd = format!(
                        "{f}>{t}:{}:{}:{:?}",
                        e.schema_edge, e.cond_idx, e.pt_from_idx
                    );
                    let rev = format!(
                        "{t}<{f}:{}:{}:{:?}",
                        e.schema_edge, e.cond_idx, e.pt_from_idx
                    );
                    // Undirected comparison: a consistent representative of
                    // the two orientations.
                    if f <= t {
                        fwd
                    } else {
                        rev
                    }
                })
                .collect();
            edge_keys.sort();
            let key = format!("{}|{}", labels.join(","), edge_keys.join(";"));
            if best.as_ref().is_none_or(|b| key < *b) {
                best = Some(key);
            }
        });

        best.unwrap_or_else(|| "PT|".to_string())
    }

    /// Like [`canonical_key`](Self::canonical_key), but edges are
    /// labelled with their *rendered join conditions* instead of
    /// `(schema edge, condition)` indices. Two graphs enumerated from
    /// **different** schema graphs (say, a declared one and a
    /// discovery-assembled one) get equal semantic keys iff they join the
    /// same relations on the same attribute pairs — the equivalence the
    /// ingestion round-trip benchmark checks. Within one schema graph,
    /// `canonical_key` is cheaper and exactly as discriminating.
    pub fn semantic_key(&self) -> String {
        let n = self.nodes.len();
        let non_pt: Vec<usize> = (1..n).collect();
        let mut best: Option<String> = None;

        let cond_fwd = |e: &JgEdge| -> String {
            e.cond
                .pairs
                .iter()
                .map(|p| format!("{}={}", p.left, p.right))
                .collect::<Vec<_>>()
                .join("&")
        };
        let cond_rev = |e: &JgEdge| -> String {
            e.cond
                .pairs
                .iter()
                .map(|p| format!("{}={}", p.right, p.left))
                .collect::<Vec<_>>()
                .join("&")
        };

        permute(&non_pt, &mut |perm| {
            let mut mapping = vec![0usize; n];
            for (new_pos, &old) in perm.iter().enumerate() {
                mapping[old] = new_pos + 1;
            }
            let mut labels = vec![String::new(); n];
            labels[0] = "PT".into();
            for &old in perm {
                labels[mapping[old]] = match &self.nodes[old].label {
                    NodeLabel::Pt => unreachable!("only node 0 is PT"),
                    NodeLabel::Rel(r) => r.clone(),
                };
            }
            let mut edge_keys: Vec<String> = self
                .edges
                .iter()
                .map(|e| {
                    let f = mapping[e.from];
                    let t = mapping[e.to];
                    if f <= t {
                        format!("{f}>{t}:{}:{:?}", cond_fwd(e), e.pt_from_idx)
                    } else {
                        format!("{t}<{f}:{}:{:?}", cond_rev(e), e.pt_from_idx)
                    }
                })
                .collect();
            edge_keys.sort();
            let key = format!("{}|{}", labels.join(","), edge_keys.join(";"));
            if best.as_ref().is_none_or(|b| key < *b) {
                best = Some(key);
            }
        });

        best.unwrap_or_else(|| "PT|".to_string())
    }
}

/// A hashable canonical join-graph key: two graphs get equal keys iff
/// they are isomorphic under a PT-fixing, label-preserving node
/// permutation (see [`JoinGraph::canonical_key`]). This is the cache key
/// the service layer uses to share one materialized APT between all
/// sessions asking about the same join-graph structure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinGraphKey(String);

impl JoinGraphKey {
    /// The canonical string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Approximate heap footprint (for cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.0.len()
    }
}

impl std::fmt::Display for JoinGraphKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl JoinGraph {
    /// The graph's hashable canonical key.
    pub fn key(&self) -> JoinGraphKey {
        JoinGraphKey(self.canonical_key())
    }
}

/// Heap's algorithm over a small index set.
fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
    let mut v = items.to_vec();
    let n = v.len();
    if n == 0 {
        f(&v);
        return;
    }
    let mut c = vec![0usize; n];
    f(&v);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                v.swap(0, i);
            } else {
                v.swap(c[i], i);
            }
            f(&v);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_graph::JoinCond;

    fn rel(name: &str) -> JgNode {
        JgNode {
            label: NodeLabel::Rel(name.into()),
        }
    }

    fn edge(from: usize, to: usize, se: usize, ci: usize) -> JgEdge {
        JgEdge {
            from,
            to,
            cond: JoinCond::on(&[("x", "y")]),
            schema_edge: se,
            cond_idx: ci,
            pt_from_idx: if from == 0 || to == 0 { Some(0) } else { None },
        }
    }

    #[test]
    fn pt_only_graph() {
        let g = JoinGraph::pt_only();
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.structure_string(), "PT");
        assert!(g.canonical_key().starts_with("PT|"));
    }

    #[test]
    fn display_aliases_number_repeats() {
        let g = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("lineup_player"),
                rel("lineup_player"),
                rel("game"),
            ],
            edges: vec![],
        };
        assert_eq!(
            g.display_aliases(),
            vec!["PT", "lineup_player1", "lineup_player2", "game"]
        );
    }

    #[test]
    fn canonical_key_identifies_isomorphic_graphs() {
        // PT - a, PT - b (nodes in different order).
        let g1 = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
                rel("b"),
            ],
            edges: vec![edge(0, 1, 0, 0), edge(0, 2, 1, 0)],
        };
        let g2 = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("b"),
                rel("a"),
            ],
            edges: vec![edge(0, 2, 0, 0), edge(0, 1, 1, 0)],
        };
        assert_eq!(g1.canonical_key(), g2.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_conditions() {
        let g1 = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
            ],
            edges: vec![edge(0, 1, 0, 0)],
        };
        let g2 = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
            ],
            edges: vec![edge(0, 1, 0, 1)], // different condition index
        };
        assert_ne!(g1.canonical_key(), g2.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_topology() {
        // PT - a - b vs. PT - a, PT - b.
        let chain = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
                rel("b"),
            ],
            edges: vec![edge(0, 1, 0, 0), edge(1, 2, 1, 0)],
        };
        let star = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
                rel("b"),
            ],
            edges: vec![edge(0, 1, 0, 0), edge(0, 2, 1, 0)],
        };
        assert_ne!(chain.canonical_key(), star.canonical_key());
    }

    #[test]
    fn structure_string_notes_extra_edges() {
        let g = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("a"),
            ],
            edges: vec![edge(0, 1, 0, 0), edge(0, 1, 0, 1)],
        };
        assert!(g.structure_string().contains("extra edge"));
    }

    #[test]
    fn describe_edges_renders_conditions() {
        let g = JoinGraph {
            nodes: vec![
                JgNode {
                    label: NodeLabel::Pt,
                },
                rel("player_salary"),
            ],
            edges: vec![edge(0, 1, 0, 0)],
        };
        assert_eq!(g.describe_edges(), vec!["PT.x = player_salary.y"]);
    }
}
