//! Augmented provenance table (APT) materialization — paper Definition 4:
//!
//! `APT(Q, D, Ω) = σ_θΩ (PT(Q, D) × S_1 × … × S_p)`
//!
//! implemented as hash joins radiating out from the PT node along the join
//! graph's edges. Each APT row remembers the PT row it extends
//! (`pt_row`), which is exactly what the Definition-7 coverage semantics
//! needs: a provenance tuple `t'` is covered by a pattern iff *some* APT
//! row extending `t'` matches.
//!
//! Per Definition 4's closing remark, duplicate (renamed) join columns are
//! removed: a context node's attributes that the joining edge equates to
//! an already-present attribute are dropped.

use std::collections::HashMap;

use bytes::BytesMut;
use cajade_query::ProvenanceTable;
use cajade_storage::rowkey::encode_key_into;
use cajade_storage::{AttrKind, Column, DataType, Database, Value};

use crate::join_graph::{JoinGraph, NodeLabel};
use crate::{GraphError, Result};

/// One attribute of an APT.
#[derive(Debug, Clone)]
pub struct AptField {
    /// Display name: PT fields keep their `prov_…` name, context fields
    /// are `<node alias>.<attr>`.
    pub name: String,
    /// Physical type.
    pub dtype: DataType,
    /// Mining kind.
    pub kind: AttrKind,
    /// Group-by attribute of the original query (excluded from patterns).
    pub is_group_by: bool,
    /// True iff the field comes from the PT node.
    pub from_pt: bool,
    /// Join-graph node index the field belongs to.
    pub node: usize,
    /// Name of the base-table column this field gathers (without any
    /// `prov_`/alias decoration). Together with
    /// [`JoinGraph::rel_of`](crate::JoinGraph::rel_of) on `node` this
    /// identifies the shared source column of a context field — the key
    /// the cross-graph column-statistics cache is built on.
    pub base_column: String,
}

/// A materialized augmented provenance table.
#[derive(Debug, Clone)]
pub struct Apt {
    /// Wide schema.
    pub fields: Vec<AptField>,
    /// Wide columns, parallel to `fields`.
    pub columns: Vec<Column>,
    /// Number of APT rows.
    pub num_rows: usize,
    /// APT row → originating PT row.
    pub pt_row: Vec<u32>,
    /// The join graph this APT materializes.
    pub graph: JoinGraph,
}

impl Apt {
    /// Materializes `APT(Q, D, Ω)` for the given provenance table and join
    /// graph.
    pub fn materialize(db: &Database, pt: &ProvenanceTable, graph: &JoinGraph) -> Result<Apt> {
        // ---- 1. Order edges: joins (BFS out of PT) then filters. -------
        let n_nodes = graph.nodes.len();
        let mut joined = vec![false; n_nodes];
        joined[0] = true;
        let mut slot_of = vec![usize::MAX; n_nodes];
        slot_of[0] = 0;
        let mut node_order = vec![0usize]; // slot → node

        let mut edge_used = vec![false; graph.edges.len()];
        let mut join_edges: Vec<(usize, usize, usize)> = Vec::new(); // (edge, joined endpoint, new endpoint)
        let mut filter_edges: Vec<usize> = Vec::new();

        loop {
            let mut progressed = false;
            for (ei, e) in graph.edges.iter().enumerate() {
                if edge_used[ei] {
                    continue;
                }
                match (joined[e.from], joined[e.to]) {
                    (true, true) => {
                        edge_used[ei] = true;
                        filter_edges.push(ei);
                        progressed = true;
                    }
                    (true, false) => {
                        edge_used[ei] = true;
                        joined[e.to] = true;
                        slot_of[e.to] = node_order.len();
                        node_order.push(e.to);
                        join_edges.push((ei, e.from, e.to));
                        progressed = true;
                    }
                    (false, true) => {
                        edge_used[ei] = true;
                        joined[e.from] = true;
                        slot_of[e.from] = node_order.len();
                        node_order.push(e.from);
                        join_edges.push((ei, e.to, e.from));
                        progressed = true;
                    }
                    (false, false) => {}
                }
            }
            if !progressed {
                break;
            }
        }
        if edge_used.iter().any(|u| !u) {
            return Err(GraphError::Malformed(
                "join graph is not connected to PT".into(),
            ));
        }

        // ---- 2. Iterative hash joins. ----------------------------------
        // combos: flattened row-id matrix, stride = #nodes joined so far.
        let mut stride = 1usize;
        let mut combos: Vec<u32> = (0..pt.num_rows as u32).collect();
        let mut scratch = BytesMut::new();

        // Value accessor for a node-side attribute of a combo row.
        let side_value =
            |node: usize, attr: &str, pt_from_idx: Option<usize>, combo: &[u32]| -> Result<Value> {
                match &graph.nodes[node].label {
                    NodeLabel::Pt => {
                        let fi = pt_field_for(pt, pt_from_idx, attr)?;
                        Ok(pt.columns[fi].value(combo[0] as usize))
                    }
                    NodeLabel::Rel(rel) => {
                        let t = db.table(rel)?;
                        let ci = t.schema().field_index(attr).ok_or_else(|| {
                            GraphError::BadCondition(format!("`{rel}` has no attribute `{attr}`"))
                        })?;
                        let slot = slot_of[node];
                        Ok(t.column(ci).value(combo[slot] as usize))
                    }
                }
            };

        for &(ei, anchor, new_node) in &join_edges {
            let e = &graph.edges[ei];
            // Orient the condition: anchor-side attrs vs new-side attrs.
            let (anchor_attrs, new_attrs): (Vec<&str>, Vec<&str>) = if e.from == anchor {
                (e.cond.left_attrs(), e.cond.right_attrs())
            } else {
                (e.cond.right_attrs(), e.cond.left_attrs())
            };
            let rel = graph.rel_of(new_node).ok_or_else(|| {
                GraphError::Malformed("PT cannot be a join target of itself".into())
            })?;
            let table = db.table(rel)?;
            let new_cols: Vec<usize> = new_attrs
                .iter()
                .map(|a| {
                    table.schema().field_index(a).ok_or_else(|| {
                        GraphError::BadCondition(format!("`{rel}` has no attribute `{a}`"))
                    })
                })
                .collect::<Result<_>>()?;

            // Build hash table on the new relation.
            let mut build: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
            let mut key_vals = Vec::with_capacity(new_cols.len());
            for r in 0..table.num_rows() {
                key_vals.clear();
                for &c in &new_cols {
                    key_vals.push(table.column(c).value(r));
                }
                if let Some(key) = encode_key_into(&mut scratch, &key_vals) {
                    build.entry(key.to_vec()).or_default().push(r as u32);
                }
            }

            // Probe with existing combos.
            let mut next: Vec<u32> = Vec::new();
            let num_combos = combos.len() / stride;
            for i in 0..num_combos {
                let combo = &combos[i * stride..(i + 1) * stride];
                key_vals.clear();
                for a in &anchor_attrs {
                    key_vals.push(side_value(anchor, a, e.pt_from_idx, combo)?);
                }
                let Some(key) = encode_key_into(&mut scratch, &key_vals) else {
                    continue;
                };
                if let Some(matches) = build.get(key) {
                    for &r in matches {
                        next.extend_from_slice(combo);
                        next.push(r);
                    }
                }
            }
            combos = next;
            stride += 1;
        }

        // ---- 3. Filter edges (cycles / parallel edges). -----------------
        for &ei in &filter_edges {
            let e = &graph.edges[ei];
            let mut next = Vec::with_capacity(combos.len());
            let num_combos = combos.len() / stride;
            'combo: for i in 0..num_combos {
                let combo = &combos[i * stride..(i + 1) * stride];
                for p in &e.cond.pairs {
                    let va = side_value(e.from, &p.left, e.pt_from_idx, combo)?;
                    let vb = side_value(e.to, &p.right, e.pt_from_idx, combo)?;
                    if !va.sql_eq(&vb) {
                        continue 'combo;
                    }
                }
                next.extend_from_slice(combo);
            }
            combos = next;
        }

        // ---- 4. Materialize wide columns. -------------------------------
        let num_rows = combos.len() / stride.max(1);
        let aliases = graph.display_aliases();

        // PT slot rows.
        let pt_rows: Vec<usize> = (0..num_rows).map(|i| combos[i * stride] as usize).collect();

        let mut fields = Vec::new();
        let mut columns = Vec::new();
        for (fi, f) in pt.fields.iter().enumerate() {
            fields.push(AptField {
                name: f.name.clone(),
                dtype: f.dtype,
                kind: f.kind,
                is_group_by: f.is_group_by,
                from_pt: true,
                node: 0,
                base_column: f.attr.clone(),
            });
            columns.push(pt.columns[fi].gather(&pt_rows));
        }

        for (slot, &node) in node_order.iter().enumerate().skip(1) {
            let rel = graph.rel_of(node).expect("non-PT node");
            let table = db.table(rel)?;
            // Attributes equated away by the edge that joined this node
            // (duplicate-column removal, Definition 4).
            let joining = join_edges
                .iter()
                .find(|(_, _, w)| *w == node)
                .map(|&(ei, _, _)| ei)
                .expect("every non-PT node has a joining edge");
            let e = &graph.edges[joining];
            let dup_attrs: Vec<&str> = if e.to == node {
                e.cond.right_attrs()
            } else {
                e.cond.left_attrs()
            };

            let rows: Vec<usize> = (0..num_rows)
                .map(|i| combos[i * stride + slot] as usize)
                .collect();
            for (ci, f) in table.schema().fields.iter().enumerate() {
                if dup_attrs.contains(&f.name.as_str()) {
                    continue;
                }
                fields.push(AptField {
                    name: format!("{}.{}", aliases[node], f.name),
                    dtype: f.dtype,
                    kind: f.kind,
                    is_group_by: false,
                    from_pt: false,
                    node,
                    base_column: f.name.clone(),
                });
                columns.push(table.column(ci).gather(&rows));
            }
        }

        Ok(Apt {
            fields,
            columns,
            num_rows,
            pt_row: pt_rows.iter().map(|&r| r as u32).collect(),
            graph: graph.clone(),
        })
    }

    /// Cell accessor.
    #[inline]
    pub fn value(&self, row: usize, field: usize) -> Value {
        self.columns[field].value(row)
    }

    /// Index of a field by display name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Indices of the fields eligible for patterns: everything except the
    /// query's group-by attributes (§2.4).
    pub fn pattern_fields(&self) -> Vec<usize> {
        (0..self.fields.len())
            .filter(|&i| !self.fields[i].is_group_by)
            .collect()
    }

    /// Approximate heap footprint in bytes: wide columns, the row → PT-row
    /// map, and field metadata. Drives the service cache's byte budget.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum::<usize>()
            + self.pt_row.len() * std::mem::size_of::<u32>()
            + self
                .fields
                .iter()
                .map(|f| f.name.len() + std::mem::size_of::<AptField>())
                .sum::<usize>()
    }
}

/// Resolves a PT-side attribute (with its FROM-entry binding) to a wide PT
/// field index.
fn pt_field_for(pt: &ProvenanceTable, pt_from_idx: Option<usize>, attr: &str) -> Result<usize> {
    let from_idx = pt_from_idx
        .ok_or_else(|| GraphError::Malformed("PT-side edge is missing its FROM binding".into()))?;
    pt.fields
        .iter()
        .position(|f| f.from_idx == from_idx && f.attr == attr)
        .ok_or_else(|| {
            GraphError::BadCondition(format!(
                "provenance table has no attribute `{attr}` for FROM entry {from_idx}"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{JgEdge, JgNode};
    use crate::schema_graph::JoinCond;
    use cajade_query::parse_sql;
    use cajade_storage::{SchemaBuilder, Value};

    /// Example-1 style fixture: game (PT source) + player scoring context.
    fn setup() -> (Database, ProvenanceTable, cajade_query::Query) {
        let mut db = Database::new("nba");
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("gid", DataType::Int, AttrKind::Categorical)
                .column("winner", DataType::Str, AttrKind::Categorical)
                .column("season", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("scoring")
                .column_pk("gid", DataType::Int, AttrKind::Categorical)
                .column_pk("player", DataType::Str, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let gsw = db.intern("GSW");
        let mia = db.intern("MIA");
        let s12 = db.intern("2012-13");
        let s15 = db.intern("2015-16");
        let curry = db.intern("S. Curry");
        let klay = db.intern("K. Thompson");
        // Games: 1 GSW 2012-13, 2+3 GSW 2015-16, 4 MIA 2012-13.
        for (gid, w, s) in [(1, gsw, s12), (2, gsw, s15), (3, gsw, s15), (4, mia, s12)] {
            db.table_mut("game")
                .unwrap()
                .push_row(vec![Value::Int(gid), Value::Str(w), Value::Str(s)])
                .unwrap();
        }
        // Scoring: Curry plays games 1-3, Klay only 2-3; game 4 has Curry too.
        for (gid, p, pts) in [
            (1, curry, 22),
            (2, curry, 40),
            (3, curry, 39),
            (2, klay, 27),
            (3, klay, 18),
            (4, curry, 10),
        ] {
            db.table_mut("scoring")
                .unwrap()
                .push_row(vec![Value::Int(gid), Value::Str(p), Value::Int(pts)])
                .unwrap();
        }
        let query = parse_sql(
            "SELECT count(*) AS win, season FROM game WHERE winner = 'GSW' GROUP BY season",
        )
        .unwrap();
        let pt = ProvenanceTable::compute(&db, &query).unwrap();
        (db, pt, query)
    }

    fn scoring_graph() -> JoinGraph {
        let mut g = JoinGraph::pt_only();
        g.nodes.push(JgNode {
            label: NodeLabel::Rel("scoring".into()),
        });
        g.edges.push(JgEdge {
            from: 0,
            to: 1,
            cond: JoinCond::on(&[("gid", "gid")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        g
    }

    #[test]
    fn apt_matches_example4_shape() {
        let (db, pt, _q) = setup();
        let apt = Apt::materialize(&db, &pt, &scoring_graph()).unwrap();
        // PT = 3 GSW games; game1 → 1 scoring row, games 2,3 → 2 each.
        assert_eq!(apt.num_rows, 5);
        // Each APT row points back at its PT row.
        assert_eq!(apt.pt_row.len(), 5);
        // PT fields retain prov names; context fields use the node alias.
        assert!(apt.field_index("prov_game_season").is_some());
        assert!(apt.field_index("scoring.pts").is_some());
        // Duplicate join column `scoring.gid` was removed (Definition 4).
        assert!(apt.field_index("scoring.gid").is_none());
    }

    #[test]
    fn pt_only_apt_is_the_pt() {
        let (db, pt, _q) = setup();
        let apt = Apt::materialize(&db, &pt, &JoinGraph::pt_only()).unwrap();
        assert_eq!(apt.num_rows, pt.num_rows);
        assert_eq!(apt.fields.len(), pt.fields.len());
        assert_eq!(apt.pt_row, (0..pt.num_rows as u32).collect::<Vec<_>>());
    }

    #[test]
    fn group_by_fields_excluded_from_patterns() {
        let (db, pt, _q) = setup();
        let apt = Apt::materialize(&db, &pt, &scoring_graph()).unwrap();
        let pat = apt.pattern_fields();
        let season = apt.field_index("prov_game_season").unwrap();
        assert!(!pat.contains(&season));
        let pts = apt.field_index("scoring.pts").unwrap();
        assert!(pat.contains(&pts));
    }

    #[test]
    fn apt_values_join_correctly() {
        let (db, pt, _q) = setup();
        let apt = Apt::materialize(&db, &pt, &scoring_graph()).unwrap();
        let pts_f = apt.field_index("scoring.pts").unwrap();
        let player_f = apt.field_index("scoring.player").unwrap();
        let curry = db.lookup_str("S. Curry").unwrap();
        // Sum of Curry's points across GSW games = 22 + 40 + 39.
        let total: i64 = (0..apt.num_rows)
            .filter(|&r| apt.value(r, player_f) == Value::Str(curry))
            .map(|r| apt.value(r, pts_f).as_i64().unwrap())
            .sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let (db, pt, _q) = setup();
        let mut g = JoinGraph::pt_only();
        g.nodes.push(JgNode {
            label: NodeLabel::Rel("scoring".into()),
        });
        // No edges: the scoring node is unreachable. (Join graphs from the
        // enumerator are always connected; hand-built ones may not be.)
        g.nodes.push(JgNode {
            label: NodeLabel::Rel("scoring".into()),
        });
        g.edges.push(JgEdge {
            from: 1,
            to: 2,
            cond: JoinCond::on(&[("gid", "gid")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: None,
        });
        assert!(matches!(
            Apt::materialize(&db, &pt, &g),
            Err(GraphError::Malformed(_))
        ));
    }

    #[test]
    fn two_hop_graph_materializes() {
        let (mut db, _, _) = setup();
        db.create_table(
            SchemaBuilder::new("player_info")
                .column_pk("player", DataType::Str, AttrKind::Categorical)
                .column("age", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let curry = db.lookup_str("S. Curry").unwrap();
        let klay = db.lookup_str("K. Thompson").unwrap();
        db.table_mut("player_info")
            .unwrap()
            .push_row(vec![Value::Str(curry), Value::Int(28)])
            .unwrap();
        db.table_mut("player_info")
            .unwrap()
            .push_row(vec![Value::Str(klay), Value::Int(26)])
            .unwrap();

        let query = parse_sql(
            "SELECT count(*) AS win, season FROM game WHERE winner = 'GSW' GROUP BY season",
        )
        .unwrap();
        let pt = ProvenanceTable::compute(&db, &query).unwrap();
        let mut g = scoring_graph();
        g.nodes.push(JgNode {
            label: NodeLabel::Rel("player_info".into()),
        });
        g.edges.push(JgEdge {
            from: 1,
            to: 2,
            cond: JoinCond::on(&[("player", "player")]),
            schema_edge: 1,
            cond_idx: 0,
            pt_from_idx: None,
        });
        let apt = Apt::materialize(&db, &pt, &g).unwrap();
        assert_eq!(apt.num_rows, 5);
        assert!(apt.field_index("player_info.age").is_some());
        // Duplicate join column removed on the far node too.
        assert!(apt.field_index("player_info.player").is_none());
    }
}
