//! Data-driven join discovery — the paper's §8 future-work item
//! ("integrate context-based explanations with join discovery techniques
//! (e.g., [18, 53]) to automatically find datasets to be used as
//! context"), in the spirit of Aurum \[18\] and JOSIE \[53\].
//!
//! For every pair of join-compatible columns across relations we estimate
//! the **containment** `|vals(A) ∩ vals(B)| / |vals(A)|` over (sampled)
//! distinct values. A high-containment pair whose right side is
//! near-unique looks like a foreign-key → key relationship and becomes a
//! proposed join condition; name similarity breaks ties. The result can
//! seed or extend a [`SchemaGraph`] when no foreign keys are declared.

use std::collections::HashSet;

use cajade_storage::{AttrKind, Column, DataType, Database};

use crate::schema_graph::{JoinCond, SchemaGraph};
use crate::Result;

/// Discovery thresholds.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Minimum containment of the from-side values in the to-side values.
    pub min_containment: f64,
    /// Minimum uniqueness (ndv / rows) of the to-side column — FK targets
    /// are keys or near-keys.
    pub min_to_uniqueness: f64,
    /// Minimum fraction of the to-side's distinct values referenced by
    /// the from side ([`JoinCandidate::to_coverage`]). Real foreign keys
    /// exercise most of their target; a dense surrogate-key range that
    /// merely contains another id column's values is referenced only
    /// partially and gets rejected here.
    pub min_to_coverage: f64,
    /// Cap on distinct values collected per column (memory guard).
    pub max_distinct: usize,
    /// Require non-trivial value sets (columns with fewer distinct values
    /// than this are skipped — booleans/flags join everything).
    pub min_distinct: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            min_containment: 0.95,
            min_to_uniqueness: 0.9,
            min_to_coverage: 0.5,
            max_distinct: 100_000,
            min_distinct: 3,
        }
    }
}

/// One proposed join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// Referencing relation (the fact side).
    pub from_table: String,
    /// Referencing attribute.
    pub from_col: String,
    /// Referenced relation (the key side).
    pub to_table: String,
    /// Referenced attribute.
    pub to_col: String,
    /// Fraction of from-side values contained in the to side.
    pub containment: f64,
    /// ndv/rows of the to-side column.
    pub to_uniqueness: f64,
    /// Fraction of the to-side's distinct values the from side actually
    /// references. True foreign keys tend to exercise most of their
    /// target key; a dense surrogate-key range that merely *happens* to
    /// contain another id column's values (the classic inclusion-
    /// dependency false positive) is referenced only partially. Gated by
    /// [`DiscoveryConfig::min_to_coverage`] and used to pick the best
    /// target among same-score candidates. On *sampled or filtered*
    /// data, where real FKs legitimately reference few target keys,
    /// lower (or zero) the gate.
    pub to_coverage: f64,
    /// Combined ranking score (containment × uniqueness, +name bonus).
    pub score: f64,
}

impl JoinCandidate {
    /// One-line rendering with the evidence that ranked it, e.g.
    /// `orders.customer_id → customers.id (containment 1.00, uniqueness 1.00, coverage 0.95)`.
    pub fn render(&self) -> String {
        format!(
            "{}.{} → {}.{} (containment {:.2}, uniqueness {:.2}, coverage {:.2})",
            self.from_table,
            self.from_col,
            self.to_table,
            self.to_col,
            self.containment,
            self.to_uniqueness,
            self.to_coverage
        )
    }
}

/// A schema graph assembled (or extended) by discovery, with the
/// provenance of every proposed join that made it in — callers surface
/// these so users can audit *why* the system joins their tables.
#[derive(Debug, Clone)]
pub struct DiscoveredGraph {
    /// The (extended) schema graph, already validated against the database.
    pub graph: SchemaGraph,
    /// The discovered candidates that were accepted, strongest first.
    pub accepted: Vec<JoinCandidate>,
    /// Candidates that passed the thresholds but were dropped — because a
    /// pinned edge already connects their table pair, their referencing
    /// column already took a better target, or the `max_new` budget ran
    /// out. Kept for reporting ("the system also noticed …").
    pub skipped: Vec<JoinCandidate>,
    /// How many of `skipped` were dropped *only* because the `max_new`
    /// budget was exhausted — the count that justifies telling the user
    /// to raise it.
    pub budget_skipped: usize,
}

/// Distinct-value fingerprint of one column.
struct ColumnSet {
    table: String,
    col: String,
    dtype: DataType,
    values: HashSet<u64>,
    rows: usize,
    truncated: bool,
}

fn fingerprint(col: &Column, rows: usize, cap: usize) -> (HashSet<u64>, bool) {
    let mut set = HashSet::with_capacity(rows.min(cap).min(4096));
    let mut truncated = false;
    for r in 0..rows {
        let h = match col.value(r) {
            cajade_storage::Value::Null => continue,
            cajade_storage::Value::Int(i) => i as u64 ^ 0x9E37_79B9_7F4A_7C15,
            cajade_storage::Value::Float(f) => f.to_bits(),
            cajade_storage::Value::Str(s) => (s.0 as u64) << 3 | 0b101,
        };
        if set.len() >= cap {
            truncated = true;
            break;
        }
        set.insert(h);
    }
    (set, truncated)
}

/// Scans the database and proposes join conditions, strongest first.
pub fn discover_joins(db: &Database, cfg: &DiscoveryConfig) -> Vec<JoinCandidate> {
    // Collect categorical-column fingerprints (joins in this model are
    // equi-joins on categorical attributes; Definition 2 allows only
    // equality conditions).
    let mut cols: Vec<ColumnSet> = Vec::new();
    for t in db.tables() {
        for (ci, f) in t.schema().fields.iter().enumerate() {
            if f.kind != AttrKind::Categorical {
                continue;
            }
            let (values, truncated) = fingerprint(t.column(ci), t.num_rows(), cfg.max_distinct);
            if values.len() < cfg.min_distinct {
                continue;
            }
            cols.push(ColumnSet {
                table: t.name().to_string(),
                col: f.name.clone(),
                dtype: f.dtype,
                values,
                rows: t.num_rows(),
                truncated,
            });
        }
    }

    let mut out = Vec::new();
    for a in &cols {
        for b in &cols {
            if a.table == b.table {
                continue;
            }
            if a.dtype != b.dtype {
                continue;
            }
            // Directional: a ⊆ b with b near-unique.
            let inter = a.values.intersection(&b.values).count();
            let containment = inter as f64 / a.values.len() as f64;
            if containment < cfg.min_containment {
                continue;
            }
            let to_uniqueness = if b.rows == 0 || b.truncated {
                0.0
            } else {
                b.values.len() as f64 / b.rows as f64
            };
            if to_uniqueness < cfg.min_to_uniqueness {
                continue;
            }
            let to_coverage = inter as f64 / b.values.len().max(1) as f64;
            if to_coverage < cfg.min_to_coverage {
                continue;
            }
            let name_bonus = if a.col == b.col {
                0.1
            } else if a.col.contains(&b.col) || b.col.contains(&a.col) {
                0.05
            } else {
                0.0
            };
            out.push(JoinCandidate {
                from_table: a.table.clone(),
                from_col: a.col.clone(),
                to_table: b.table.clone(),
                to_col: b.col.clone(),
                containment,
                to_uniqueness,
                to_coverage,
                score: containment * to_uniqueness + name_bonus,
            });
        }
    }
    // Strongest first: score, then target coverage (breaks the dense-
    // surrogate-key ties in favour of the fully-referenced key), then a
    // lexicographic tail for determinism.
    out.sort_by(|x, y| {
        y.score
            .total_cmp(&x.score)
            .then_with(|| y.to_coverage.total_cmp(&x.to_coverage))
            .then_with(|| {
                (
                    x.from_table.as_str(),
                    x.from_col.as_str(),
                    x.to_table.as_str(),
                    x.to_col.as_str(),
                )
                    .cmp(&(
                        y.from_table.as_str(),
                        y.from_col.as_str(),
                        y.to_table.as_str(),
                        y.to_col.as_str(),
                    ))
            })
    });
    out
}

/// Builds a schema graph from discovered joins (top `max_edges` candidates
/// after validation), usable when a database declares no foreign keys.
pub fn discovered_schema_graph(
    db: &Database,
    cfg: &DiscoveryConfig,
    max_edges: usize,
) -> Result<SchemaGraph> {
    Ok(extend_schema_graph(db, cfg, SchemaGraph::new(), max_edges)?.graph)
}

/// Extends a *pinned* base graph (manifest-declared or FK-derived joins)
/// with up to `max_new` discovered joins, keeping per-candidate
/// provenance. Three selection rules separate this from blindly taking
/// the strongest candidates:
///
/// * **pinned pairs are authoritative** — a candidate between a pair of
///   relations the base graph already connects is skipped rather than
///   second-guessed (the declared condition may be composite or
///   otherwise out of reach of single-column containment discovery, and
///   layering a weaker discovered variant next to it would distort
///   enumeration);
/// * **one target per referencing column** — a foreign key references
///   one relation, so each `(from_table, from_col)` keeps only its
///   best-ranked target (score, then [`JoinCandidate::to_coverage`]);
/// * **composite-consumed columns stay consumed** — a referencing column
///   already used on the referencing (a-)side of a pinned *composite*
///   condition proposes no single-column joins of its own: its
///   containments are transitive artifacts of the composite key (e.g.
///   `stats.home_id ⊆ team.team_id` follows from
///   `stats(game_date, home_id) → game → team`);
/// * **no duplicate conditions** — a candidate whose condition already
///   exists on the pair's edge (in either orientation, e.g. the reverse
///   direction of an already-accepted join) is skipped.
pub fn extend_schema_graph(
    db: &Database,
    cfg: &DiscoveryConfig,
    base: SchemaGraph,
    max_new: usize,
) -> Result<DiscoveredGraph> {
    let pinned_pairs: HashSet<(String, String)> = base
        .edges()
        .iter()
        .flat_map(|e| [(e.a.clone(), e.b.clone()), (e.b.clone(), e.a.clone())])
        .collect();
    let composite_consumed: HashSet<(String, String)> = base
        .edges()
        .iter()
        .flat_map(|e| {
            e.conds
                .iter()
                .filter(|c| c.pairs.len() > 1)
                .flat_map(|c| c.pairs.iter().map(|p| (e.a.clone(), p.left.clone())))
        })
        .collect();
    let mut graph = base;
    let mut accepted: Vec<JoinCandidate> = Vec::new();
    let mut skipped = Vec::new();
    let mut budget_skipped = 0usize;
    let mut from_cols_used: HashSet<(String, String)> = HashSet::new();
    for cand in discover_joins(db, cfg) {
        let from_coord = (cand.from_table.clone(), cand.from_col.clone());
        let covered = pinned_pairs.contains(&(cand.from_table.clone(), cand.to_table.clone()))
            || composite_consumed.contains(&from_coord);
        let from_col_taken = from_cols_used.contains(&from_coord);
        let cond = JoinCond::on(&[(cand.from_col.as_str(), cand.to_col.as_str())]);
        let duplicate = has_condition(&graph, &cand.from_table, &cand.to_table, &cond);
        if covered || from_col_taken || duplicate || accepted.len() >= max_new {
            if !(covered || from_col_taken || duplicate) {
                budget_skipped += 1;
            }
            skipped.push(cand);
            continue;
        }
        from_cols_used.insert((cand.from_table.clone(), cand.from_col.clone()));
        graph.add_condition(&cand.from_table, &cand.to_table, cond);
        accepted.push(cand);
    }
    graph.validate(db)?;
    Ok(DiscoveredGraph {
        graph,
        accepted,
        skipped,
        budget_skipped,
    })
}

/// True when `graph` already carries `cond` between `a` and `b` (in
/// either orientation).
fn has_condition(graph: &SchemaGraph, a: &str, b: &str, cond: &JoinCond) -> bool {
    graph.edges().iter().any(|e| {
        (e.a == a && e.b == b && e.conds.contains(cond))
            || (e.a == b && e.b == a && e.conds.contains(&cond.flipped()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_storage::{SchemaBuilder, Value};

    /// orders.customer_id ⊆ customers.id (a perfect FK, undeclared).
    fn undeclared_fk_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            SchemaBuilder::new("customers")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("name", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("orders")
                .column_pk("order_id", DataType::Int, AttrKind::Categorical)
                .column("customer_id", DataType::Int, AttrKind::Categorical)
                .column("amount", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        // Realistic surrogate keys: customer ids are sparse (not a dense
        // 0..n range), so they are NOT accidentally contained in the
        // order-id sequence — the classic inclusion-dependency false
        // positive this test would otherwise trip over.
        for i in 0..50i64 {
            let n = db.intern(&format!("c{i}"));
            db.table_mut("customers")
                .unwrap()
                .push_row(vec![Value::Int(i * 97 + 13), Value::Str(n)])
                .unwrap();
        }
        for o in 0..200i64 {
            db.table_mut("orders")
                .unwrap()
                .push_row(vec![
                    Value::Int(o),
                    Value::Int((o % 50) * 97 + 13),
                    Value::Int(o * 3),
                ])
                .unwrap();
        }
        db
    }

    #[test]
    fn discovers_undeclared_fk() {
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        let fk = cands.iter().find(|c| {
            c.from_table == "orders"
                && c.from_col == "customer_id"
                && c.to_table == "customers"
                && c.to_col == "id"
        });
        let fk = fk.expect("customer FK discovered");
        assert!((fk.containment - 1.0).abs() < 1e-9);
        assert!(fk.to_uniqueness > 0.99);
    }

    #[test]
    fn direction_matters() {
        // customers.id ⊄ orders.order_id — and even when contained by
        // accident, the uniqueness gate rejects non-key targets.
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(!cands.iter().any(|c| {
            c.from_table == "customers" && c.to_table == "orders" && c.to_col == "customer_id"
        }));
    }

    #[test]
    fn numeric_columns_are_not_join_candidates() {
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(cands
            .iter()
            .all(|c| c.from_col != "amount" && c.to_col != "amount"));
    }

    #[test]
    fn discovered_graph_validates_and_enumerates() {
        let db = undeclared_fk_db();
        let g = discovered_schema_graph(&db, &DiscoveryConfig::default(), 5).unwrap();
        assert!(!g.edges().is_empty());
        // The discovered edge carries the right condition.
        let e = &g.edges()[0];
        let pair = &e.conds[0].pairs[0];
        let names = [
            (e.a.as_str(), pair.left.as_str()),
            (e.b.as_str(), pair.right.as_str()),
        ];
        assert!(names.contains(&("orders", "customer_id")));
        assert!(names.contains(&("customers", "id")));
    }

    #[test]
    fn pinned_pairs_are_not_second_guessed() {
        let db = undeclared_fk_db();
        // Pin a (deliberately different) condition between orders and
        // customers: discovery must not layer its own variant on the pair.
        let mut base = SchemaGraph::new();
        base.add_condition("orders", "customers", JoinCond::on(&[("order_id", "id")]));
        let out = extend_schema_graph(&db, &DiscoveryConfig::default(), base, 8).unwrap();
        assert!(out.accepted.is_empty());
        assert!(out
            .skipped
            .iter()
            .any(|c| c.from_table == "orders" && c.to_table == "customers"));
        assert_eq!(out.graph.edges().len(), 1);
        assert_eq!(out.graph.edges()[0].conds.len(), 1);
    }

    #[test]
    fn extend_reports_provenance() {
        let db = undeclared_fk_db();
        let out =
            extend_schema_graph(&db, &DiscoveryConfig::default(), SchemaGraph::new(), 8).unwrap();
        assert!(!out.accepted.is_empty());
        let best = &out.accepted[0];
        assert_eq!(
            (best.from_table.as_str(), best.to_table.as_str()),
            ("orders", "customers")
        );
        assert!(best.render().contains("orders.customer_id → customers.id"));
        // Every accepted candidate has a matching graph condition.
        for c in &out.accepted {
            assert!(out.graph.edges().iter().any(|e| {
                (e.a == c.from_table && e.b == c.to_table)
                    || (e.a == c.to_table && e.b == c.from_table)
            }));
        }
    }

    #[test]
    fn low_containment_rejected() {
        let mut db = undeclared_fk_db();
        // A column with ids far outside the customer range.
        db.create_table(
            SchemaBuilder::new("misc")
                .column_pk("code", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        for i in 1000..1050i64 {
            db.table_mut("misc")
                .unwrap()
                .push_row(vec![Value::Int(i)])
                .unwrap();
        }
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(!cands
            .iter()
            .any(|c| c.from_table == "misc" || c.to_table == "misc"));
    }
}
