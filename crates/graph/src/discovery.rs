//! Data-driven join discovery — the paper's §8 future-work item
//! ("integrate context-based explanations with join discovery techniques
//! (e.g., [18, 53]) to automatically find datasets to be used as
//! context"), in the spirit of Aurum \[18\] and JOSIE \[53\].
//!
//! For every pair of join-compatible columns across relations we estimate
//! the **containment** `|vals(A) ∩ vals(B)| / |vals(A)|` over (sampled)
//! distinct values. A high-containment pair whose right side is
//! near-unique looks like a foreign-key → key relationship and becomes a
//! proposed join condition; name similarity breaks ties. The result can
//! seed or extend a [`SchemaGraph`] when no foreign keys are declared.

use std::collections::HashSet;

use cajade_storage::{AttrKind, Column, DataType, Database};

use crate::schema_graph::{JoinCond, SchemaGraph};
use crate::Result;

/// Discovery thresholds.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Minimum containment of the from-side values in the to-side values.
    pub min_containment: f64,
    /// Minimum uniqueness (ndv / rows) of the to-side column — FK targets
    /// are keys or near-keys.
    pub min_to_uniqueness: f64,
    /// Cap on distinct values collected per column (memory guard).
    pub max_distinct: usize,
    /// Require non-trivial value sets (columns with fewer distinct values
    /// than this are skipped — booleans/flags join everything).
    pub min_distinct: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            min_containment: 0.95,
            min_to_uniqueness: 0.9,
            max_distinct: 100_000,
            min_distinct: 3,
        }
    }
}

/// One proposed join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCandidate {
    /// Referencing relation (the fact side).
    pub from_table: String,
    /// Referencing attribute.
    pub from_col: String,
    /// Referenced relation (the key side).
    pub to_table: String,
    /// Referenced attribute.
    pub to_col: String,
    /// Fraction of from-side values contained in the to side.
    pub containment: f64,
    /// ndv/rows of the to-side column.
    pub to_uniqueness: f64,
    /// Combined ranking score (containment × uniqueness, +name bonus).
    pub score: f64,
}

/// Distinct-value fingerprint of one column.
struct ColumnSet {
    table: String,
    col: String,
    dtype: DataType,
    values: HashSet<u64>,
    rows: usize,
    truncated: bool,
}

fn fingerprint(col: &Column, rows: usize, cap: usize) -> (HashSet<u64>, bool) {
    let mut set = HashSet::with_capacity(rows.min(cap).min(4096));
    let mut truncated = false;
    for r in 0..rows {
        let h = match col.value(r) {
            cajade_storage::Value::Null => continue,
            cajade_storage::Value::Int(i) => i as u64 ^ 0x9E37_79B9_7F4A_7C15,
            cajade_storage::Value::Float(f) => f.to_bits(),
            cajade_storage::Value::Str(s) => (s.0 as u64) << 3 | 0b101,
        };
        if set.len() >= cap {
            truncated = true;
            break;
        }
        set.insert(h);
    }
    (set, truncated)
}

/// Scans the database and proposes join conditions, strongest first.
pub fn discover_joins(db: &Database, cfg: &DiscoveryConfig) -> Vec<JoinCandidate> {
    // Collect categorical-column fingerprints (joins in this model are
    // equi-joins on categorical attributes; Definition 2 allows only
    // equality conditions).
    let mut cols: Vec<ColumnSet> = Vec::new();
    for t in db.tables() {
        for (ci, f) in t.schema().fields.iter().enumerate() {
            if f.kind != AttrKind::Categorical {
                continue;
            }
            let (values, truncated) = fingerprint(t.column(ci), t.num_rows(), cfg.max_distinct);
            if values.len() < cfg.min_distinct {
                continue;
            }
            cols.push(ColumnSet {
                table: t.name().to_string(),
                col: f.name.clone(),
                dtype: f.dtype,
                values,
                rows: t.num_rows(),
                truncated,
            });
        }
    }

    let mut out = Vec::new();
    for a in &cols {
        for b in &cols {
            if a.table == b.table {
                continue;
            }
            if a.dtype != b.dtype {
                continue;
            }
            // Directional: a ⊆ b with b near-unique.
            let inter = a.values.intersection(&b.values).count();
            let containment = inter as f64 / a.values.len() as f64;
            if containment < cfg.min_containment {
                continue;
            }
            let to_uniqueness = if b.rows == 0 || b.truncated {
                0.0
            } else {
                b.values.len() as f64 / b.rows as f64
            };
            if to_uniqueness < cfg.min_to_uniqueness {
                continue;
            }
            let name_bonus = if a.col == b.col {
                0.1
            } else if a.col.contains(&b.col) || b.col.contains(&a.col) {
                0.05
            } else {
                0.0
            };
            out.push(JoinCandidate {
                from_table: a.table.clone(),
                from_col: a.col.clone(),
                to_table: b.table.clone(),
                to_col: b.col.clone(),
                containment,
                to_uniqueness,
                score: containment * to_uniqueness + name_bonus,
            });
        }
    }
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                (
                    x.from_table.as_str(),
                    x.from_col.as_str(),
                    x.to_table.as_str(),
                )
                    .cmp(&(
                        y.from_table.as_str(),
                        y.from_col.as_str(),
                        y.to_table.as_str(),
                    ))
            })
    });
    out
}

/// Builds a schema graph from discovered joins (top `max_edges` candidates
/// after validation), usable when a database declares no foreign keys.
pub fn discovered_schema_graph(
    db: &Database,
    cfg: &DiscoveryConfig,
    max_edges: usize,
) -> Result<SchemaGraph> {
    let mut g = SchemaGraph::new();
    for cand in discover_joins(db, cfg).into_iter().take(max_edges) {
        g.add_condition(
            &cand.from_table,
            &cand.to_table,
            JoinCond::on(&[(cand.from_col.as_str(), cand.to_col.as_str())]),
        );
    }
    g.validate(db)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_storage::{SchemaBuilder, Value};

    /// orders.customer_id ⊆ customers.id (a perfect FK, undeclared).
    fn undeclared_fk_db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            SchemaBuilder::new("customers")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("name", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("orders")
                .column_pk("order_id", DataType::Int, AttrKind::Categorical)
                .column("customer_id", DataType::Int, AttrKind::Categorical)
                .column("amount", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        // Realistic surrogate keys: customer ids are sparse (not a dense
        // 0..n range), so they are NOT accidentally contained in the
        // order-id sequence — the classic inclusion-dependency false
        // positive this test would otherwise trip over.
        for i in 0..50i64 {
            let n = db.intern(&format!("c{i}"));
            db.table_mut("customers")
                .unwrap()
                .push_row(vec![Value::Int(i * 97 + 13), Value::Str(n)])
                .unwrap();
        }
        for o in 0..200i64 {
            db.table_mut("orders")
                .unwrap()
                .push_row(vec![
                    Value::Int(o),
                    Value::Int((o % 50) * 97 + 13),
                    Value::Int(o * 3),
                ])
                .unwrap();
        }
        db
    }

    #[test]
    fn discovers_undeclared_fk() {
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        let fk = cands.iter().find(|c| {
            c.from_table == "orders"
                && c.from_col == "customer_id"
                && c.to_table == "customers"
                && c.to_col == "id"
        });
        let fk = fk.expect("customer FK discovered");
        assert!((fk.containment - 1.0).abs() < 1e-9);
        assert!(fk.to_uniqueness > 0.99);
    }

    #[test]
    fn direction_matters() {
        // customers.id ⊄ orders.order_id — and even when contained by
        // accident, the uniqueness gate rejects non-key targets.
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(!cands.iter().any(|c| {
            c.from_table == "customers" && c.to_table == "orders" && c.to_col == "customer_id"
        }));
    }

    #[test]
    fn numeric_columns_are_not_join_candidates() {
        let db = undeclared_fk_db();
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(cands
            .iter()
            .all(|c| c.from_col != "amount" && c.to_col != "amount"));
    }

    #[test]
    fn discovered_graph_validates_and_enumerates() {
        let db = undeclared_fk_db();
        let g = discovered_schema_graph(&db, &DiscoveryConfig::default(), 5).unwrap();
        assert!(!g.edges().is_empty());
        // The discovered edge carries the right condition.
        let e = &g.edges()[0];
        let pair = &e.conds[0].pairs[0];
        let names = [
            (e.a.as_str(), pair.left.as_str()),
            (e.b.as_str(), pair.right.as_str()),
        ];
        assert!(names.contains(&("orders", "customer_id")));
        assert!(names.contains(&("customers", "id")));
    }

    #[test]
    fn low_containment_rejected() {
        let mut db = undeclared_fk_db();
        // A column with ids far outside the customer range.
        db.create_table(
            SchemaBuilder::new("misc")
                .column_pk("code", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        for i in 1000..1050i64 {
            db.table_mut("misc")
                .unwrap()
                .push_row(vec![Value::Int(i)])
                .unwrap();
        }
        let cands = discover_joins(&db, &DiscoveryConfig::default());
        assert!(!cands
            .iter()
            .any(|c| c.from_table == "misc" || c.to_table == "misc"));
    }
}
