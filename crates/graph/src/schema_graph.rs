//! Schema graphs (paper Definition 2): which joins are permissible.

use cajade_storage::Database;

use crate::{GraphError, Result};

/// One attribute-equality inside a join condition: `left = right`, where
/// `left` belongs to the edge's `a` relation and `right` to its `b`
/// relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrPair {
    /// Attribute of the `a`-side relation.
    pub left: String,
    /// Attribute of the `b`-side relation.
    pub right: String,
}

impl AttrPair {
    /// Convenience constructor.
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Self {
        Self {
            left: left.into(),
            right: right.into(),
        }
    }
}

/// A join condition: a conjunction of attribute equalities (only equi-joins
/// are allowed per Definition 2's `Cond`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinCond {
    /// Conjunction of attribute equalities.
    pub pairs: Vec<AttrPair>,
}

impl JoinCond {
    /// A condition from `(left, right)` attribute-name pairs.
    pub fn on(pairs: &[(&str, &str)]) -> Self {
        Self {
            pairs: pairs.iter().map(|(l, r)| AttrPair::new(*l, *r)).collect(),
        }
    }

    /// The condition with sides swapped (for traversing an edge from its
    /// `b` endpoint).
    pub fn flipped(&self) -> JoinCond {
        JoinCond {
            pairs: self
                .pairs
                .iter()
                .map(|p| AttrPair::new(p.right.clone(), p.left.clone()))
                .collect(),
        }
    }

    /// Attribute names used on the `a` side.
    pub fn left_attrs(&self) -> Vec<&str> {
        self.pairs.iter().map(|p| p.left.as_str()).collect()
    }

    /// Attribute names used on the `b` side.
    pub fn right_attrs(&self) -> Vec<&str> {
        self.pairs.iter().map(|p| p.right.as_str()).collect()
    }

    /// Renders as `a.x = b.x ∧ a.y = b.y`.
    pub fn render(&self, a: &str, b: &str) -> String {
        self.pairs
            .iter()
            .map(|p| format!("{a}.{} = {b}.{}", p.left, p.right))
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

/// An undirected schema-graph edge between relations `a` and `b`, labelled
/// with a set of alternative join conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaEdge {
    /// First endpoint (relation name).
    pub a: String,
    /// Second endpoint (relation name; may equal `a` for self-joins like
    /// Fig. 3's `LineupPlayer–LineupPlayer` edge).
    pub b: String,
    /// Alternative join conditions for this edge.
    pub conds: Vec<JoinCond>,
}

/// The schema graph: permissible joins for a database (Definition 2).
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    edges: Vec<SchemaEdge>,
}

impl SchemaGraph {
    /// An empty schema graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the default schema graph from a database's foreign keys
    /// (paper §2.2: "our system can extract join conditions from the
    /// foreign key constraints"). Each FK becomes one edge with one
    /// condition; parallel FKs between the same pair of tables merge into
    /// one edge with several conditions.
    pub fn from_foreign_keys(db: &Database) -> Self {
        let mut g = SchemaGraph::new();
        for fk in db.foreign_keys() {
            let pairs: Vec<AttrPair> = fk
                .from_cols
                .iter()
                .zip(&fk.to_cols)
                .map(|(f, t)| AttrPair::new(f.clone(), t.clone()))
                .collect();
            g.add_condition(&fk.from_table, &fk.to_table, JoinCond { pairs });
        }
        g
    }

    /// Adds a join condition between `a` and `b`, merging into an existing
    /// edge when one exists (conditions are deduplicated).
    pub fn add_condition(&mut self, a: &str, b: &str, cond: JoinCond) {
        // Normalize orientation for storage: existing edge may be (b, a).
        for e in &mut self.edges {
            if e.a == a && e.b == b {
                if !e.conds.contains(&cond) {
                    e.conds.push(cond);
                }
                return;
            }
            if e.a == b && e.b == a {
                let fl = cond.flipped();
                if !e.conds.contains(&fl) {
                    e.conds.push(fl);
                }
                return;
            }
        }
        self.edges.push(SchemaEdge {
            a: a.to_string(),
            b: b.to_string(),
            conds: vec![cond],
        });
    }

    /// Validates every condition against the database schema: each
    /// referenced attribute must exist in its relation.
    pub fn validate(&self, db: &Database) -> Result<()> {
        for e in &self.edges {
            let ta = db.table(&e.a)?;
            let tb = db.table(&e.b)?;
            for c in &e.conds {
                for p in &c.pairs {
                    if ta.schema().field_index(&p.left).is_none() {
                        return Err(GraphError::BadCondition(format!(
                            "`{}` has no attribute `{}`",
                            e.a, p.left
                        )));
                    }
                    if tb.schema().field_index(&p.right).is_none() {
                        return Err(GraphError::BadCondition(format!(
                            "`{}` has no attribute `{}`",
                            e.b, p.right
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// All edges.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Total number of (edge, condition) combinations — the branching
    /// factor of join-graph enumeration.
    pub fn num_conditions(&self) -> usize {
        self.edges.iter().map(|e| e.conds.len()).sum()
    }

    /// Iterates over `(edge_index, cond_index, other_relation, condition
    /// oriented from `rel`)` for every way relation `rel` can join out.
    /// Self-loop edges yield a single traversal (the condition is symmetric
    /// modulo renaming).
    pub fn adjacent(&self, rel: &str) -> Vec<(usize, usize, &str, JoinCond)> {
        let mut out = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            if e.a == rel {
                for (ci, c) in e.conds.iter().enumerate() {
                    out.push((ei, ci, e.b.as_str(), c.clone()));
                }
            } else if e.b == rel {
                for (ci, c) in e.conds.iter().enumerate() {
                    out.push((ei, ci, e.a.as_str(), c.flipped()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_storage::{AttrKind, DataType, Database, ForeignKey, SchemaBuilder};

    fn fk_db() -> Database {
        let mut db = Database::new("t");
        db.create_table(
            SchemaBuilder::new("team")
                .column_pk("team_id", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column("winner_id", DataType::Int, AttrKind::Categorical)
                .column("home_id", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["winner_id".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        })
        .unwrap();
        db.add_foreign_key(ForeignKey {
            from_table: "game".into(),
            from_cols: vec!["home_id".into()],
            to_table: "team".into(),
            to_cols: vec!["team_id".into()],
        })
        .unwrap();
        db
    }

    #[test]
    fn fks_merge_into_one_edge_with_two_conditions() {
        let db = fk_db();
        let g = SchemaGraph::from_foreign_keys(&db);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].conds.len(), 2);
        assert_eq!(g.num_conditions(), 2);
        g.validate(&db).unwrap();
    }

    #[test]
    fn adjacent_flips_orientation() {
        let db = fk_db();
        let g = SchemaGraph::from_foreign_keys(&db);
        // From `game`, conditions read game.attr = team.attr.
        let adj = g.adjacent("game");
        assert_eq!(adj.len(), 2);
        assert!(adj.iter().all(|(_, _, other, _)| *other == "team"));
        assert_eq!(adj[0].3.pairs[0].left, "winner_id");
        // From `team`, the same edge reads team.team_id = game.winner_id.
        let adj = g.adjacent("team");
        assert_eq!(adj[0].3.pairs[0].left, "team_id");
    }

    #[test]
    fn duplicate_conditions_dedup() {
        let mut g = SchemaGraph::new();
        g.add_condition("a", "b", JoinCond::on(&[("x", "y")]));
        g.add_condition("b", "a", JoinCond::on(&[("y", "x")])); // same, flipped
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].conds.len(), 1);
    }

    #[test]
    fn validate_rejects_bad_attribute() {
        let db = fk_db();
        let mut g = SchemaGraph::new();
        g.add_condition("game", "team", JoinCond::on(&[("nope", "team_id")]));
        assert!(matches!(g.validate(&db), Err(GraphError::BadCondition(_))));
    }

    #[test]
    fn self_loop_edge() {
        let mut g = SchemaGraph::new();
        g.add_condition(
            "lineup_player",
            "lineup_player",
            JoinCond::on(&[("lineupid", "lineupid")]),
        );
        let adj = g.adjacent("lineup_player");
        // A self loop is traversable (a-side orientation only).
        assert_eq!(adj.len(), 1);
        assert_eq!(adj[0].2, "lineup_player");
    }

    #[test]
    fn render_condition() {
        let c = JoinCond::on(&[("year", "year"), ("home", "home")]);
        assert_eq!(c.render("PT", "P"), "PT.year = P.year ∧ PT.home = P.home");
    }
}
