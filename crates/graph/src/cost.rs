//! Cardinality-based cost estimation for join graphs (paper §4: "We use
//! the DBMS to estimate the cost of this query upfront. We skip pattern
//! mining for join graphs where the estimated cost … is above a threshold
//! λ_qcost").
//!
//! The original system asked Postgres' planner; we implement the same
//! textbook estimate the planner uses for equi-joins:
//! `|R ⋈_{a=b} S| ≈ |R|·|S| / max(ndv(R.a), ndv(S.b))`, multiplying
//! selectivities across all condition pairs and all edges.

use std::collections::HashMap;

use cajade_query::Query;
use cajade_storage::Database;

use crate::join_graph::{JoinGraph, NodeLabel};
use crate::schema_graph::SchemaGraph;
use crate::Result;

/// Precomputed statistics: table cardinalities and per-attribute distinct
/// counts for every attribute mentioned in the schema graph (computing NDV
/// for *all* columns would scan the rich stats tables needlessly).
#[derive(Debug, Clone)]
pub struct CostEstimator {
    table_rows: HashMap<String, f64>,
    ndv: HashMap<(String, String), f64>,
}

impl CostEstimator {
    /// Builds statistics for `db`, covering the attributes referenced by
    /// `schema` conditions.
    pub fn new(db: &Database, schema: &SchemaGraph) -> Result<Self> {
        let mut table_rows = HashMap::new();
        for t in db.tables() {
            table_rows.insert(t.name().to_string(), t.num_rows() as f64);
        }
        let mut ndv = HashMap::new();
        for e in schema.edges() {
            for c in &e.conds {
                for p in &c.pairs {
                    for (rel, attr) in [(&e.a, &p.left), (&e.b, &p.right)] {
                        let key = (rel.clone(), attr.clone());
                        if ndv.contains_key(&key) {
                            continue;
                        }
                        let t = db.table(rel)?;
                        let col = t.column_by_name(attr)?;
                        ndv.insert(key, col.distinct_count().max(1) as f64);
                    }
                }
            }
        }
        Ok(Self { table_rows, ndv })
    }

    /// Distinct-value count for `rel.attr` (1.0 when unknown — i.e. a
    /// join on an unanalyzed attribute is assumed non-selective, erring
    /// toward skipping expensive graphs).
    pub fn ndv(&self, rel: &str, attr: &str) -> f64 {
        self.ndv
            .get(&(rel.to_string(), attr.to_string()))
            .copied()
            .unwrap_or(1.0)
    }

    /// Cardinality of a base relation (0 when unknown).
    pub fn table_rows(&self, rel: &str) -> f64 {
        self.table_rows.get(rel).copied().unwrap_or(0.0)
    }

    /// Estimated APT row count for `graph` hung off a provenance table of
    /// `pt_rows` rows produced by `query`.
    pub fn estimate_apt_rows(&self, pt_rows: usize, graph: &JoinGraph, query: &Query) -> f64 {
        let mut rows = pt_rows as f64;
        for node in &graph.nodes[1..] {
            if let NodeLabel::Rel(r) = &node.label {
                rows *= self.table_rows(r).max(1.0);
            }
        }
        for e in &graph.edges {
            for p in &e.cond.pairs {
                let ndv_from = self.side_ndv(graph, query, e.from, &p.left, e.pt_from_idx);
                let ndv_to = self.side_ndv(graph, query, e.to, &p.right, e.pt_from_idx);
                rows /= ndv_from.max(ndv_to).max(1.0);
            }
        }
        rows
    }

    fn side_ndv(
        &self,
        graph: &JoinGraph,
        query: &Query,
        node: usize,
        attr: &str,
        pt_from_idx: Option<usize>,
    ) -> f64 {
        match &graph.nodes[node].label {
            NodeLabel::Pt => {
                // The PT-side attribute lives in one of the accessed
                // relations; approximate its NDV by the base relation's.
                let rel = pt_from_idx
                    .and_then(|i| query.from.get(i))
                    .map(|t| t.table.as_str())
                    .unwrap_or("");
                self.ndv(rel, attr)
            }
            NodeLabel::Rel(r) => self.ndv(r, attr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{JgEdge, JgNode};
    use crate::schema_graph::JoinCond;
    use cajade_query::parse_sql;
    use cajade_storage::{AttrKind, DataType, SchemaBuilder, Value};

    fn setup() -> (Database, SchemaGraph, Query) {
        let mut db = Database::new("t");
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column("team_id", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("stats")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        // 100 games, 100 stats rows keyed by game.
        for i in 0..100 {
            db.table_mut("game")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Int(i % 10)])
                .unwrap();
            db.table_mut("stats")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Int(i * 2)])
                .unwrap();
        }
        let mut schema = SchemaGraph::new();
        schema.add_condition("game", "stats", JoinCond::on(&[("game_id", "game_id")]));
        let query = parse_sql("SELECT count(*) AS c, team_id FROM game GROUP BY team_id").unwrap();
        (db, schema, query)
    }

    #[test]
    fn key_join_estimate_is_linear() {
        let (db, schema, query) = setup();
        let est = CostEstimator::new(&db, &schema).unwrap();
        let mut g = JoinGraph::pt_only();
        g.nodes.push(JgNode {
            label: NodeLabel::Rel("stats".into()),
        });
        g.edges.push(JgEdge {
            from: 0,
            to: 1,
            cond: JoinCond::on(&[("game_id", "game_id")]),
            schema_edge: 0,
            cond_idx: 0,
            pt_from_idx: Some(0),
        });
        // PT has 100 rows; key-key join keeps ~100 rows.
        let rows = est.estimate_apt_rows(100, &g, &query);
        assert!((rows - 100.0).abs() < 1e-9, "estimated {rows}");
    }

    #[test]
    fn pt_only_costs_pt_rows() {
        let (db, schema, query) = setup();
        let est = CostEstimator::new(&db, &schema).unwrap();
        let g = JoinGraph::pt_only();
        assert_eq!(est.estimate_apt_rows(42, &g, &query), 42.0);
    }

    #[test]
    fn ndv_only_computed_for_condition_attrs() {
        let (db, schema, _) = setup();
        let est = CostEstimator::new(&db, &schema).unwrap();
        assert_eq!(est.ndv("game", "game_id"), 100.0);
        // `pts` is not in any condition → fallback 1.0.
        assert_eq!(est.ndv("stats", "pts"), 1.0);
    }
}
