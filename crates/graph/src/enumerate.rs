//! Join-graph enumeration — paper Algorithm 2.
//!
//! `EnumerateJoinGraphs` grows join graphs by one edge per iteration up to
//! λ#edges, using two extension types per `AddEdge`: (i) attach a *new*
//! node via a schema-graph condition, (ii) add a parallel/closing edge
//! between *existing* nodes. Graphs failing `isValid` (primary-key
//! coverage or estimated cost > λ_qcost) are excluded from mining but —
//! exactly as in the pseudo-code — still extended in later iterations.
//!
//! One deviation from the letter of the pseudo-code, following the paper's
//! evaluation: the PT-only graph Ω₀ is also reported (the case-study
//! tables contain provenance-only patterns such as the `A_1` rows of the
//! appendix), and structurally identical graphs reached along different
//! extension paths are deduplicated via [`JoinGraph::canonical_key`].

use std::collections::HashSet;

use cajade_query::Query;
use cajade_storage::Database;

use crate::cost::CostEstimator;
use crate::join_graph::{JgEdge, JgNode, JoinGraph, NodeLabel};
use crate::schema_graph::SchemaGraph;
use crate::Result;

/// Enumeration parameters (the λ's of paper §4).
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// λ#edges: maximum number of join-graph edges (Table 1 default: 3).
    pub max_edges: usize,
    /// λ_qcost: maximum estimated APT row count before a graph is skipped.
    pub max_cost: f64,
    /// Enable the primary-key-coverage validity check (§4).
    pub check_pk_coverage: bool,
    /// Report the PT-only graph Ω₀ as a mineable graph.
    pub include_pt_only: bool,
}

impl Default for EnumConfig {
    fn default() -> Self {
        Self {
            max_edges: 3,
            max_cost: 5_000_000.0,
            check_pk_coverage: true,
            include_pt_only: true,
        }
    }
}

/// One enumerated join graph with its validity verdict.
#[derive(Debug, Clone)]
pub struct EnumeratedGraph {
    /// The graph.
    pub graph: JoinGraph,
    /// True iff the graph passed `isValid` and should be mined.
    pub valid: bool,
    /// Estimated APT cardinality.
    pub est_rows: f64,
}

/// Algorithm 2's main entry point.
pub fn enumerate_join_graphs(
    schema: &SchemaGraph,
    db: &Database,
    query: &Query,
    pt_rows: usize,
    cfg: &EnumConfig,
) -> Result<Vec<EnumeratedGraph>> {
    let estimator = CostEstimator::new(db, schema)?;
    let mut seen: HashSet<String> = HashSet::new();
    let mut out: Vec<EnumeratedGraph> = Vec::new();

    let omega0 = JoinGraph::pt_only();
    seen.insert(omega0.canonical_key());
    if cfg.include_pt_only {
        out.push(EnumeratedGraph {
            graph: omega0.clone(),
            valid: true,
            est_rows: pt_rows as f64,
        });
    }

    let mut prev: Vec<JoinGraph> = vec![omega0];
    for _size in 1..=cfg.max_edges {
        let mut new_graphs: Vec<JoinGraph> = Vec::new();
        for omega in &prev {
            for ext in extend_jg(schema, query, omega) {
                if seen.insert(ext.canonical_key()) {
                    new_graphs.push(ext);
                }
            }
        }
        for g in &new_graphs {
            let est_rows = estimator.estimate_apt_rows(pt_rows, g, query);
            let valid = is_valid(db, g, est_rows, cfg)?;
            out.push(EnumeratedGraph {
                graph: g.clone(),
                valid,
                est_rows,
            });
        }
        prev = new_graphs;
        if prev.is_empty() {
            break;
        }
    }
    Ok(out)
}

/// Algorithm 2's `ExtendJG`: all one-edge extensions of `omega`.
pub(crate) fn extend_jg(schema: &SchemaGraph, query: &Query, omega: &JoinGraph) -> Vec<JoinGraph> {
    let mut out = Vec::new();
    for v in 0..omega.nodes.len() {
        // Relations represented by v: all accessed relations for PT,
        // otherwise the node's own relation.
        let rels: Vec<(String, Option<usize>)> = match &omega.nodes[v].label {
            NodeLabel::Pt => {
                // One entry per FROM-list position (a relation aliased
                // twice yields parallel-edge candidates, paper §2.2's
                // disambiguation case (2)).
                query
                    .from
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.table.clone(), Some(i)))
                    .collect()
            }
            NodeLabel::Rel(r) => vec![(r.clone(), None)],
        };
        for (rel, pt_from_idx) in rels {
            for (schema_edge, cond_idx, other_rel, cond) in schema.adjacent(&rel) {
                add_edge(
                    omega,
                    v,
                    other_rel,
                    schema_edge,
                    cond_idx,
                    &cond,
                    pt_from_idx,
                    &mut out,
                );
            }
        }
    }
    out
}

/// Algorithm 2's `AddEdge`: connect `v` to a *new* node labelled
/// `end_rel`, and to every *existing* node labelled `end_rel` not already
/// connected by the same condition.
#[allow(clippy::too_many_arguments)]
fn add_edge(
    omega: &JoinGraph,
    v: usize,
    end_rel: &str,
    schema_edge: usize,
    cond_idx: usize,
    cond: &crate::schema_graph::JoinCond,
    pt_from_idx: Option<usize>,
    out: &mut Vec<JoinGraph>,
) {
    // (i) Fresh node.
    {
        let mut g = omega.clone();
        let new_node = g.nodes.len();
        g.nodes.push(JgNode {
            label: NodeLabel::Rel(end_rel.to_string()),
        });
        g.edges.push(JgEdge {
            from: v,
            to: new_node,
            cond: cond.clone(),
            schema_edge,
            cond_idx,
            pt_from_idx,
        });
        out.push(g);
    }

    // (ii) Existing nodes with the right label (never PT, never v itself —
    // Definition 3 forbids PT self-edges, and a genuine self-edge on a
    // context node adds a tautology).
    for v2 in 0..omega.nodes.len() {
        if v2 == v {
            continue;
        }
        let matches = matches!(&omega.nodes[v2].label, NodeLabel::Rel(r) if r == end_rel);
        if !matches {
            continue;
        }
        let duplicate = omega.edges.iter().any(|e| {
            let same_pair = (e.from == v && e.to == v2) || (e.from == v2 && e.to == v);
            same_pair
                && e.schema_edge == schema_edge
                && e.cond_idx == cond_idx
                && e.pt_from_idx == pt_from_idx
        });
        if duplicate {
            continue;
        }
        let mut g = omega.clone();
        g.edges.push(JgEdge {
            from: v,
            to: v2,
            cond: cond.clone(),
            schema_edge,
            cond_idx,
            pt_from_idx,
        });
        out.push(g);
    }
}

/// Algorithm 2's `isValid`: primary-key coverage + cost threshold.
///
/// PK coverage (§4): for every non-PT node, each primary-key attribute of
/// its relation must be referenced by at least one incident edge's
/// condition on that node's side — otherwise the APT blows up with
/// redundant rows (the `PlayerGameScoring` example of §4).
fn is_valid(db: &Database, g: &JoinGraph, est_rows: f64, cfg: &EnumConfig) -> Result<bool> {
    if cfg.check_pk_coverage {
        for (idx, node) in g.nodes.iter().enumerate() {
            let NodeLabel::Rel(rel) = &node.label else {
                continue;
            };
            let table = db.table(rel)?;
            for pk_attr in table.schema().primary_key() {
                let covered = g.edges.iter().any(|e| {
                    (e.from == idx && e.cond.left_attrs().contains(&pk_attr))
                        || (e.to == idx && e.cond.right_attrs().contains(&pk_attr))
                });
                if !covered {
                    return Ok(false);
                }
            }
        }
    }
    Ok(est_rows <= cfg.max_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_graph::JoinCond;
    use cajade_query::parse_sql;
    use cajade_storage::{AttrKind, DataType, SchemaBuilder, Value};

    /// game(game_id) ← stats(game_id, pts); stats has a composite key
    /// (game_id, player) so joining on game_id alone fails PK coverage.
    fn setup() -> (Database, SchemaGraph, Query) {
        let mut db = Database::new("t");
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column("team", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("stats")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column_pk("player", DataType::Str, AttrKind::Categorical)
                .column("pts", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("player")
                .column_pk("player", DataType::Str, AttrKind::Categorical)
                .column("age", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let alice = db.intern("alice");
        for i in 0..20 {
            db.table_mut("game")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Str(alice)])
                .unwrap();
            db.table_mut("stats")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Str(alice), Value::Int(i)])
                .unwrap();
        }
        db.table_mut("player")
            .unwrap()
            .push_row(vec![Value::Str(alice), Value::Int(30)])
            .unwrap();

        let mut schema = SchemaGraph::new();
        schema.add_condition("game", "stats", JoinCond::on(&[("game_id", "game_id")]));
        schema.add_condition("stats", "player", JoinCond::on(&[("player", "player")]));
        let query = parse_sql("SELECT count(*) AS c, team FROM game GROUP BY team").unwrap();
        (db, schema, query)
    }

    #[test]
    fn enumerates_expected_graphs_at_depth_two() {
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 2,
            ..Default::default()
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        // Depth 0: PT. Depth 1: PT-stats. Depth 2: PT-stats-player and
        // PT-stats + a second parallel PT-stats… (dedup removes repeats).
        let structures: Vec<String> = graphs.iter().map(|g| g.graph.structure_string()).collect();
        assert!(structures.contains(&"PT".to_string()));
        assert!(structures.contains(&"PT - stats".to_string()));
        assert!(structures.iter().any(|s| s.contains("player")));
    }

    #[test]
    fn pk_coverage_invalidates_partial_key_join() {
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 1,
            ..Default::default()
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        // PT - stats joins only on game_id but stats' PK is (game_id,
        // player): invalid at depth 1.
        let pt_stats = graphs
            .iter()
            .find(|g| g.graph.structure_string() == "PT - stats")
            .expect("PT - stats enumerated");
        assert!(!pt_stats.valid, "partial-key join must fail PK coverage");
    }

    #[test]
    fn closing_edge_fixes_pk_coverage() {
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 2,
            ..Default::default()
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        // PT - stats - player covers stats' full PK (game_id via PT,
        // player via player) — wait: player node's PK is `player`, covered
        // by the stats-player edge; stats covers game_id + player. Valid.
        let valid_deep = graphs
            .iter()
            .find(|g| g.graph.nodes.len() == 3 && g.valid)
            .map(|g| g.graph.structure_string());
        assert_eq!(valid_deep.as_deref(), Some("PT - stats - player"));
    }

    #[test]
    fn cost_threshold_invalidates_expensive_graphs() {
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 1,
            max_cost: 0.5, // everything is too expensive
            check_pk_coverage: false,
            include_pt_only: true,
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        assert!(graphs.iter().skip(1).all(|g| !g.valid));
    }

    #[test]
    fn dedup_keeps_enumeration_small() {
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 3,
            ..Default::default()
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        let mut keys: Vec<String> = graphs.iter().map(|g| g.graph.canonical_key()).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "no duplicate graphs in output");
    }

    #[test]
    fn invalid_graphs_still_extended() {
        // PT - stats is invalid at depth 1 (PK), but its extension
        // PT - stats - player appears at depth 2 — matching the paper's
        // loop structure where Ω_new feeds Ω_prev regardless of validity.
        let (db, schema, query) = setup();
        let cfg = EnumConfig {
            max_edges: 2,
            ..Default::default()
        };
        let graphs = enumerate_join_graphs(&schema, &db, &query, 20, &cfg).unwrap();
        assert!(graphs
            .iter()
            .any(|g| g.graph.structure_string() == "PT - stats - player"));
    }
}
