use std::fmt;

use cajade_query::QueryError;
use cajade_storage::StorageError;

/// Errors from join-graph construction or APT materialization.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query error.
    Query(QueryError),
    /// A join condition referenced an attribute missing from its relation.
    BadCondition(String),
    /// Join graph is malformed (disconnected, bad node ids, …).
    Malformed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Storage(e) => write!(f, "storage error: {e}"),
            GraphError::Query(e) => write!(f, "query error: {e}"),
            GraphError::BadCondition(msg) => write!(f, "bad join condition: {msg}"),
            GraphError::Malformed(msg) => write!(f, "malformed join graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<StorageError> for GraphError {
    fn from(e: StorageError) -> Self {
        GraphError::Storage(e)
    }
}

impl From<QueryError> for GraphError {
    fn from(e: QueryError) -> Self {
        GraphError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: GraphError = StorageError::NoSuchTable("x".into()).into();
        assert!(e.to_string().contains("x"));
        let e: GraphError = QueryError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("c"));
    }
}
