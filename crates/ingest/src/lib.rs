//! # cajade-ingest
//!
//! The dataset ingestion subsystem: point CaJaDE at a **directory of CSV
//! files** and get back a registered, explanation-ready database with
//! zero hand-written schema — the paper's §8 future-work direction of
//! using *arbitrary* datasets as context, made a front door.
//!
//! One table per file (the file stem names the relation). Ingestion runs
//! four stages, each timed in the returned [`IngestReport`]:
//!
//! 1. **scan** — list `*.csv` files, parse an optional `dataset.toml`
//!    [`Manifest`] (pinned kinds/keys/joins beat everything inferred);
//! 2. **infer** — stream every file through a sampling type-inference
//!    pass ([`infer`]): `Int ⊑ Float ⊑ Str` lattice with null detection,
//!    capped distinct sketches, single-column key detection, and the
//!    categorical/numeric kind heuristic of Definition 5;
//! 3. **load** — second streaming pass parses cells under the inferred
//!    schema into columnar [`cajade_storage::Table`]s (lenient by
//!    default: post-sample type contradictions coerce to NULL and are
//!    counted; [`IngestOptions::strict_types`] turns them into errors),
//!    then certifies composite keys the single-column pass missed;
//! 4. **discover** — containment-based join discovery
//!    ([`cajade_graph::extend_schema_graph`]) extends the manifest's
//!    pinned joins into a full [`cajade_graph::SchemaGraph`], with
//!    per-join provenance in the report.
//!
//! The result plugs straight into
//! `ExplanationService::register_database` (the service's
//! `register_csv_dir` does exactly that) or a one-shot
//! [`cajade_core::ExplanationSession`]; the `cajade-ingest` binary is
//! the command-line wrapper.

#![warn(missing_docs)]

pub mod export;
pub mod infer;
pub mod manifest;
pub mod report;

use std::collections::HashSet;
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Instant;

use cajade_graph::{extend_schema_graph, DiscoveryConfig, SchemaGraph};
use cajade_graph::{GraphError, JoinCond};
use cajade_storage::{
    parse_typed_cell, rowkey, CsvReader, DataType, Database, Schema, StorageError, Table,
};

pub use export::{export_csv_dir, ExportOptions};
pub use infer::{InferConfig, TableProfile};
pub use manifest::{Manifest, ManifestJoin, TableManifest};
pub use report::{IngestReport, IngestTimings, JoinOrigin, JoinReport, TableReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IngestError>;

/// Ingestion failures.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// Filesystem failure (listing the directory, opening a file).
    Io {
        /// Offending path.
        path: PathBuf,
        /// Rendered OS error.
        msg: String,
    },
    /// The directory holds no loadable `*.csv` file.
    EmptyDirectory(PathBuf),
    /// A storage-layer failure while reading or loading one table.
    Storage {
        /// Table (file stem) being loaded.
        table: String,
        /// Underlying error (CSV structure, type clash, …).
        source: StorageError,
    },
    /// Malformed `dataset.toml` (line 0 = structural, post-parse).
    Manifest {
        /// 1-based manifest line (0 when not line-attributable).
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Schema-graph assembly or validation failed (e.g. a pinned join
    /// names a missing table or column).
    Graph(GraphError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, msg } => write!(f, "{}: {msg}", path.display()),
            IngestError::EmptyDirectory(p) => {
                write!(f, "no *.csv files found in {}", p.display())
            }
            IngestError::Storage { table, source } => {
                write!(f, "table `{table}`: {source}")
            }
            IngestError::Manifest { line, msg } => {
                if *line == 0 {
                    write!(f, "dataset.toml: {msg}")
                } else {
                    write!(f, "dataset.toml line {line}: {msg}")
                }
            }
            IngestError::Graph(e) => write!(f, "schema graph: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<GraphError> for IngestError {
    fn from(e: GraphError) -> Self {
        IngestError::Graph(e)
    }
}

/// Ingestion tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Database name override (else `dataset.toml`, else the directory
    /// stem).
    pub name: Option<String>,
    /// Type/key inference configuration.
    pub infer: InferConfig,
    /// Error on cells that contradict the inferred type after the
    /// sampling window instead of coercing them to NULL. Also controls
    /// per-file failure handling: in the default lenient mode an
    /// unreadable or mid-file-corrupt CSV is skipped with a warning in
    /// [`IngestReport::warnings`]; in strict mode it aborts the whole
    /// ingestion.
    pub strict_types: bool,
    /// Containment-discovery thresholds (manifest `[discovery]` keys
    /// override individual fields).
    pub discovery: DiscoveryConfig,
    /// Cap on accepted discovered joins. `Some` is an *explicit* request
    /// (CLI flag, protocol field) and beats the manifest; `None` falls
    /// back to the manifest's `max_joins`, then
    /// [`DEFAULT_MAX_DISCOVERED_JOINS`].
    pub max_discovered_joins: Option<usize>,
    /// Widest composite primary key the post-load check certifies.
    pub max_pk_width: usize,
}

/// Discovered-join budget when neither the caller nor the manifest
/// picks one.
pub const DEFAULT_MAX_DISCOVERED_JOINS: usize = 24;

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            name: None,
            infer: InferConfig::default(),
            strict_types: false,
            discovery: DiscoveryConfig::default(),
            max_discovered_joins: None,
            max_pk_width: 3,
        }
    }
}

/// An ingested dataset: ready to register or explain against.
#[derive(Debug, Clone)]
pub struct IngestedDataset {
    /// The loaded database.
    pub db: Database,
    /// Pinned + discovered schema graph.
    pub schema_graph: SchemaGraph,
    /// What happened, per stage.
    pub report: IngestReport,
}

/// Ingests a directory of CSV files (see the crate docs for the stage
/// pipeline). Files are loaded in name order so ingestion is
/// deterministic; non-CSV files other than `dataset.toml` are skipped
/// with a warning.
pub fn ingest_dir(dir: impl AsRef<Path>, options: &IngestOptions) -> Result<IngestedDataset> {
    let dir = dir.as_ref();
    let mut warnings = Vec::new();
    let mut timings = IngestTimings::default();

    // ---- Stage 1: scan -------------------------------------------------
    let t0 = Instant::now();
    let scan_span = cajade_obs::span_detail("ingest_scan");
    let scan_mem = cajade_obs::AllocScope::enter("ingest_scan");
    let (csv_files, manifest) = scan_dir(dir, &mut warnings)?;
    if csv_files.is_empty() {
        return Err(IngestError::EmptyDirectory(dir.to_path_buf()));
    }
    let dataset_name = options
        .name
        .clone()
        .or_else(|| manifest.name.clone())
        .or_else(|| dir.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "dataset".to_string());
    timings.scan = t0.elapsed();
    drop(scan_span);
    drop(scan_mem);

    // ---- Stage 2: infer ------------------------------------------------
    let t0 = Instant::now();
    let infer_span = cajade_obs::span_detail("ingest_infer");
    let infer_mem = cajade_obs::AllocScope::enter("ingest_infer");
    let mut profiles: Vec<(PathBuf, TableProfile)> = Vec::with_capacity(csv_files.len());
    for path in &csv_files {
        let table = file_stem(path);
        let profiled = cajade_obs::faults::failpoint("ingest.profile")
            .map_err(|msg| IngestError::Io {
                path: path.clone(),
                msg,
            })
            .and_then(|()| profile_file(path, &table, &options.infer));
        match profiled {
            Ok(Some(profile)) => profiles.push((path.clone(), profile)),
            Ok(None) => warnings.push(format!("{}: empty file, skipped", path.display())),
            Err(e) if !options.strict_types => {
                warnings.push(format!("{}: file skipped ({e})", path.display()));
            }
            Err(e) => return Err(e),
        }
    }
    if profiles.is_empty() {
        return Err(IngestError::EmptyDirectory(dir.to_path_buf()));
    }
    validate_manifest_pins(&manifest, &profiles, &mut warnings)?;
    timings.infer = t0.elapsed();
    drop(infer_span);
    drop(infer_mem);

    // ---- Stage 3: load -------------------------------------------------
    let t0 = Instant::now();
    let load_span = cajade_obs::span_detail("ingest_load");
    let load_mem = cajade_obs::AllocScope::enter("ingest_load");
    let mut db = Database::new(dataset_name.clone());
    let mut tables = Vec::with_capacity(profiles.len());
    for (path, profile) in &profiles {
        let schema = profile.into_schema(&manifest);
        warn_all_null_columns(profile, &schema, &mut warnings);
        // `load_file` only inserts the table into `db` once the whole file
        // parsed, so a lenient skip here leaves no partial table behind.
        let loaded = cajade_obs::faults::failpoint("ingest.load")
            .map_err(|msg| IngestError::Io {
                path: path.clone(),
                msg,
            })
            .and_then(|()| load_file(path, profile, schema, &mut db, options, &manifest));
        let report = match loaded {
            Ok(report) => report,
            Err(e) if !options.strict_types => {
                warnings.push(format!("{}: table skipped ({e})", path.display()));
                continue;
            }
            Err(e) => return Err(e),
        };
        if report.ragged_rows > 0 {
            warnings.push(format!(
                "table `{}`: {} ragged record(s) padded/truncated to the header arity",
                report.name, report.ragged_rows
            ));
        }
        if report.coerced_nulls > 0 {
            warnings.push(format!(
                "table `{}`: {} cell(s) contradicted the inferred type after the sampling \
                 window and were coerced to NULL",
                report.name, report.coerced_nulls
            ));
        }
        if !report.key_pinned && profile.columns.iter().any(|c| c.distinct_truncated) {
            warnings.push(format!(
                "table `{}`: distinct tracking capped at {} values, so key inference may \
                 have missed a unique column — pin a key in dataset.toml if [{}] is wrong",
                report.name,
                options.infer.max_distinct,
                report.key.join(", ")
            ));
        }
        tables.push(report);
    }
    if tables.is_empty() {
        // Every table was skipped leniently; an empty database is useless,
        // so surface that the directory yielded nothing loadable.
        return Err(IngestError::EmptyDirectory(dir.to_path_buf()));
    }
    timings.load = t0.elapsed();
    drop(load_span);
    drop(load_mem);

    // ---- Stage 4: discover ---------------------------------------------
    let t0 = Instant::now();
    let discover_span = cajade_obs::span_detail("ingest_discover");
    let discover_mem = cajade_obs::AllocScope::enter("ingest_discover");
    let (schema_graph, joins) = assemble_graph(&db, &manifest, options, &mut warnings)?;
    timings.discover = t0.elapsed();
    drop(discover_span);
    drop(discover_mem);

    Ok(IngestedDataset {
        db,
        schema_graph,
        report: IngestReport {
            dataset: dataset_name,
            manifest_used: manifest != Manifest::default(),
            tables,
            joins,
            warnings,
            timings,
        },
    })
}

/// Lists `*.csv` files (name-sorted) and parses `dataset.toml` if present.
fn scan_dir(dir: &Path, warnings: &mut Vec<String>) -> Result<(Vec<PathBuf>, Manifest)> {
    let entries = std::fs::read_dir(dir).map_err(|e| IngestError::Io {
        path: dir.to_path_buf(),
        msg: e.to_string(),
    })?;
    let mut csv_files = Vec::new();
    let mut manifest = Manifest::default();
    for entry in entries {
        let entry = entry.map_err(|e| IngestError::Io {
            path: dir.to_path_buf(),
            msg: e.to_string(),
        })?;
        let path = entry.path();
        if path.is_dir() {
            continue;
        }
        let ext = path
            .extension()
            .map(|e| e.to_string_lossy().to_ascii_lowercase());
        match ext.as_deref() {
            Some("csv") => csv_files.push(path),
            _ if path.file_name().is_some_and(|n| n == "dataset.toml") => {
                let text = std::fs::read_to_string(&path).map_err(|e| IngestError::Io {
                    path: path.clone(),
                    msg: e.to_string(),
                })?;
                manifest = Manifest::parse(&text)?;
                manifest.validate()?;
            }
            _ => warnings.push(format!("{}: not a CSV file, skipped", path.display())),
        }
    }
    csv_files.sort();
    Ok((csv_files, manifest))
}

fn file_stem(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string())
}

fn open(path: &Path) -> Result<BufReader<File>> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| IngestError::Io {
            path: path.to_path_buf(),
            msg: e.to_string(),
        })
}

fn storage_err(table: &str, source: StorageError) -> IngestError {
    IngestError::Storage {
        table: table.to_string(),
        source,
    }
}

/// Pass 1 over one file. Returns `None` for files without a header row.
fn profile_file(path: &Path, table: &str, cfg: &InferConfig) -> Result<Option<TableProfile>> {
    let mut rows = CsvReader::new(open(path)?);
    let Some(header) = rows.next_row().map_err(|e| storage_err(table, e))? else {
        return Ok(None);
    };
    check_header(table, &header)?;
    let mut profile = TableProfile::new(table, &header, cfg.clone());
    while let Some(row) = rows.next_row().map_err(|e| storage_err(table, e))? {
        profile.observe_row(&row);
    }
    Ok(Some(profile))
}

fn check_header(table: &str, header: &[String]) -> Result<()> {
    let mut seen = HashSet::new();
    for name in header {
        if name.trim().is_empty() {
            return Err(storage_err(
                table,
                StorageError::Csv {
                    line: 1,
                    msg: "empty column name in header".into(),
                },
            ));
        }
        if !seen.insert(name.as_str()) {
            return Err(storage_err(
                table,
                StorageError::Csv {
                    line: 1,
                    msg: format!("duplicate column name `{name}` in header"),
                },
            ));
        }
    }
    Ok(())
}

/// Every per-table manifest pin must name a real column — a typo'd pin
/// that silently does nothing (a keyless table claiming `key_pinned`)
/// is worse than an error. Pins for tables without a CSV file only
/// warn: a shared manifest may cover more files than one directory.
fn validate_manifest_pins(
    manifest: &Manifest,
    profiles: &[(PathBuf, TableProfile)],
    warnings: &mut Vec<String>,
) -> Result<()> {
    for (table, pins) in &manifest.tables {
        let Some((_, profile)) = profiles.iter().find(|(_, p)| &p.table == table) else {
            warnings.push(format!(
                "dataset.toml pins table `{table}`, but no `{table}.csv` was loaded"
            ));
            continue;
        };
        let check = |cols: &[String], what: &str| -> Result<()> {
            for c in cols {
                if !profile.columns.iter().any(|p| &p.name == c) {
                    return Err(IngestError::Manifest {
                        line: 0,
                        msg: format!(
                            "[tables.{table}] {what} pins unknown column `{c}` \
                             (file has: {})",
                            profile
                                .columns
                                .iter()
                                .map(|p| p.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
            }
            Ok(())
        };
        if let Some(key) = &pins.key {
            check(key, "key")?;
        }
        check(&pins.categorical, "categorical")?;
        check(&pins.numeric, "numeric")?;
    }
    Ok(())
}

fn warn_all_null_columns(profile: &TableProfile, schema: &Schema, warnings: &mut Vec<String>) {
    for (c, f) in profile.columns.iter().zip(&schema.fields) {
        if c.non_nulls == 0 && profile.rows > 0 {
            warnings.push(format!(
                "table `{}`: column `{}` is entirely NULL; typed as Str",
                profile.table, f.name
            ));
        }
    }
}

/// Pass 2 over one file: typed load under the synthesized schema, then
/// composite-key certification when single-column detection came up dry.
fn load_file(
    path: &Path,
    profile: &TableProfile,
    schema: Schema,
    db: &mut Database,
    options: &IngestOptions,
    manifest: &Manifest,
) -> Result<TableReport> {
    let table_name = schema.name.clone();
    let key_pinned = manifest
        .tables
        .get(&table_name)
        .is_some_and(|t| t.key.is_some());
    let arity = schema.arity();
    let dtypes: Vec<DataType> = schema.fields.iter().map(|f| f.dtype).collect();
    let mut table = Table::with_capacity(schema, profile.rows);
    let mut rows = CsvReader::new(open(path)?);
    rows.next_row().map_err(|e| storage_err(&table_name, e))?; // header
    let mut coerced_nulls = 0usize;
    let mut ragged_rows = 0usize;
    while let Some(row) = rows.next_row().map_err(|e| storage_err(&table_name, e))? {
        if row.len() != arity {
            ragged_rows += 1;
        }
        let mut values = Vec::with_capacity(arity);
        for (i, &dtype) in dtypes.iter().enumerate() {
            let raw = row.get(i).map(String::as_str).unwrap_or("");
            match parse_typed_cell(raw, dtype, db.pool_mut()) {
                Some(v) => values.push(v),
                None if options.strict_types => {
                    return Err(storage_err(
                        &table_name,
                        StorageError::TypeInference {
                            column: table.schema().fields[i].name.clone(),
                            msg: format!(
                                "line {}: `{raw}` does not parse as {} (inferred from the \
                                 first {} rows)",
                                rows.record_line(),
                                dtype.name(),
                                options.infer.sample_rows
                            ),
                        },
                    ));
                }
                None => {
                    coerced_nulls += 1;
                    values.push(cajade_storage::Value::Null);
                }
            }
        }
        table
            .push_row(values)
            .map_err(|e| storage_err(&table_name, e))?;
    }

    if table.schema().primary_key().is_empty() && !key_pinned {
        if let Some(key) = composite_key(&table, options.max_pk_width) {
            table
                .set_primary_key(&key)
                .map_err(|e| storage_err(&table_name, e))?;
        }
    }
    let report = TableReport {
        name: table_name.clone(),
        rows: table.num_rows(),
        columns: table.num_columns(),
        key: table
            .schema()
            .primary_key()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        key_pinned,
        ragged_rows,
        coerced_nulls,
    };
    db.insert_table(table)
        .map_err(|e| storage_err(&table_name, e))?;
    Ok(report)
}

/// Certifies the shortest leading column prefix (≤ `max_width`, no
/// floats, no NULLs) whose value combinations are row-unique. Leading
/// prefixes only: real-world CSVs overwhelmingly put key columns first,
/// and the full subset lattice is exponential.
fn composite_key(table: &Table, max_width: usize) -> Option<Vec<String>> {
    let arity = table.num_columns();
    if table.num_rows() == 0 || arity < 2 {
        return None;
    }
    'width: for width in 2..=max_width.min(arity) {
        let fields = &table.schema().fields[..width];
        if fields.iter().any(|f| f.dtype == DataType::Float) {
            return None; // float keys are asking for trouble
        }
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(table.num_rows());
        for r in 0..table.num_rows() {
            let values: Vec<cajade_storage::Value> =
                (0..width).map(|c| table.value(r, c)).collect();
            match rowkey::encode_key(&values) {
                Some(key) => {
                    if !seen.insert(key) {
                        continue 'width; // duplicate — try a wider prefix
                    }
                }
                None => return None, // NULL in a key column
            }
        }
        return Some(fields.iter().map(|f| f.name.clone()).collect());
    }
    None
}

/// Builds the schema graph: manifest-pinned joins first (validated), then
/// containment discovery extends around them.
fn assemble_graph(
    db: &Database,
    manifest: &Manifest,
    options: &IngestOptions,
    warnings: &mut Vec<String>,
) -> Result<(SchemaGraph, Vec<JoinReport>)> {
    let mut base = SchemaGraph::new();
    let mut joins = Vec::new();
    for j in &manifest.joins {
        let pairs: Vec<(&str, &str)> = j
            .from_columns
            .iter()
            .zip(&j.to_columns)
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let cond = JoinCond::on(&pairs);
        joins.push(JoinReport {
            condition: cond.render(&j.from_table, &j.to_table),
            origin: JoinOrigin::Pinned,
            evidence: None,
        });
        base.add_condition(&j.from_table, &j.to_table, cond);
    }
    base.validate(db)?;

    let enabled = manifest.discovery_enabled.unwrap_or(true);
    if !enabled {
        return Ok((base, joins));
    }
    let mut cfg = options.discovery.clone();
    if let Some(v) = manifest.min_containment {
        cfg.min_containment = v;
    }
    if let Some(v) = manifest.min_to_uniqueness {
        cfg.min_to_uniqueness = v;
    }
    if let Some(v) = manifest.min_to_coverage {
        cfg.min_to_coverage = v;
    }
    // Explicit caller option > manifest > default: a user told to "rerun
    // with a higher max_joins" must actually be able to.
    let max_joins = options
        .max_discovered_joins
        .or(manifest.max_joins)
        .unwrap_or(DEFAULT_MAX_DISCOVERED_JOINS);
    let discovered = extend_schema_graph(db, &cfg, base, max_joins)?;
    for cand in &discovered.accepted {
        joins.push(JoinReport {
            condition: format!(
                "{}.{} = {}.{}",
                cand.from_table, cand.from_col, cand.to_table, cand.to_col
            ),
            origin: JoinOrigin::Discovered,
            evidence: Some(cand.clone()),
        });
    }
    if discovered.budget_skipped > 0 {
        warnings.push(format!(
            "join discovery budget ({max_joins}) exhausted with {} viable candidate(s) \
             left over; rerun with a higher max_joins or pin the joins you care about",
            discovered.budget_skipped
        ));
    }
    Ok((discovered.graph, joins))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_key_certifies_leading_prefix() {
        use cajade_storage::{AttrKind, SchemaBuilder, Value};
        let schema = SchemaBuilder::new("g")
            .column("date", DataType::Str, AttrKind::Categorical)
            .column("home", DataType::Int, AttrKind::Categorical)
            .column("pts", DataType::Int, AttrKind::Numeric)
            .build();
        let mut pool = cajade_storage::StringPool::new();
        let d1 = pool.intern("d1");
        let d2 = pool.intern("d2");
        let mut t = Table::new(schema);
        for (d, h, p) in [(d1, 1, 9), (d1, 2, 9), (d2, 1, 9)] {
            t.push_row(vec![Value::Str(d), Value::Int(h), Value::Int(p)])
                .unwrap();
        }
        assert_eq!(
            composite_key(&t, 3),
            Some(vec!["date".to_string(), "home".to_string()])
        );
        // Width 1 is the single-column pass's job; width 2 here suffices,
        // so `pts` never joins the key.
    }

    #[test]
    fn composite_key_gives_up_on_duplicates_and_nulls() {
        use cajade_storage::{AttrKind, SchemaBuilder, Value};
        let schema = SchemaBuilder::new("g")
            .column("a", DataType::Int, AttrKind::Categorical)
            .column("b", DataType::Int, AttrKind::Categorical)
            .build();
        let mut dup = Table::new(schema.clone());
        for (a, b) in [(1, 1), (1, 1)] {
            dup.push_row(vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        assert_eq!(composite_key(&dup, 3), None);

        let mut nullish = Table::new(schema);
        nullish.push_row(vec![Value::Int(1), Value::Null]).unwrap();
        assert_eq!(composite_key(&nullish, 3), None);
    }
}
