//! The optional `dataset.toml` manifest: user-declared facts that
//! override (or complete) what inference and discovery would conclude
//! from the raw CSV files.
//!
//! The format is a small TOML subset — sections, string/number/bool
//! scalars, and string arrays — parsed by hand because the build
//! environment vendors no TOML crate. Everything is optional; an absent
//! manifest means "infer everything".
//!
//! ```toml
//! [dataset]
//! name = "retail"
//!
//! [discovery]                      # containment-discovery thresholds
//! enabled = true
//! min_containment = 0.95
//! min_to_uniqueness = 0.9
//! min_to_coverage = 0.5
//! max_joins = 16
//!
//! [tables.stores]
//! key = ["store_id"]               # pins the primary key
//! categorical = ["zip"]            # pins attribute kinds (Definition 5)
//! numeric = ["capacity"]
//!
//! [[joins]]                        # pins a join condition
//! from_table = "sales"
//! from_columns = ["store_id"]
//! to_table = "stores"
//! to_columns = ["store_id"]
//! ```
//!
//! Pinned joins become schema-graph edges verbatim (composite conditions
//! and self-joins included — shapes containment discovery cannot
//! propose); pinned keys and kinds beat inference.

use std::collections::BTreeMap;

use crate::{IngestError, Result};

/// Parsed `dataset.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// `[dataset] name` — overrides the directory-derived database name.
    pub name: Option<String>,
    /// `[discovery] enabled` — `false` turns containment discovery off
    /// (pinned joins only).
    pub discovery_enabled: Option<bool>,
    /// `[discovery] min_containment` threshold override.
    pub min_containment: Option<f64>,
    /// `[discovery] min_to_uniqueness` threshold override.
    pub min_to_uniqueness: Option<f64>,
    /// `[discovery] min_to_coverage` threshold override.
    pub min_to_coverage: Option<f64>,
    /// `[discovery] max_joins` — cap on accepted discovered joins.
    pub max_joins: Option<usize>,
    /// Per-table pins, keyed by table (= file stem) name.
    pub tables: BTreeMap<String, TableManifest>,
    /// Pinned join conditions.
    pub joins: Vec<ManifestJoin>,
}

/// Per-table manifest section (`[tables.<name>]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableManifest {
    /// Pinned primary-key columns (in key order).
    pub key: Option<Vec<String>>,
    /// Columns pinned to the categorical kind.
    pub categorical: Vec<String>,
    /// Columns pinned to the numeric kind.
    pub numeric: Vec<String>,
}

/// One pinned join condition (`[[joins]]`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManifestJoin {
    /// Referencing relation.
    pub from_table: String,
    /// Referencing attributes.
    pub from_columns: Vec<String>,
    /// Referenced relation (may equal `from_table` for self-joins).
    pub to_table: String,
    /// Referenced attributes (pairs with `from_columns` positionally).
    pub to_columns: Vec<String>,
}

/// Which manifest section a parsed line belongs to.
#[derive(Debug, Clone, PartialEq)]
enum Section {
    None,
    Dataset,
    Discovery,
    Table(String),
    Join,
    /// A recognized-but-unknown section; keys are ignored (forward
    /// compatibility) rather than rejected.
    Unknown,
}

impl Manifest {
    /// Parses manifest text. Unknown sections and keys are ignored;
    /// structurally malformed lines are errors with their line number.
    pub fn parse(text: &str) -> Result<Manifest> {
        let mut m = Manifest::default();
        let mut section = Section::None;
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[") {
                let name = header.trim_end_matches("]]").trim();
                if name.len() + 4 != line.len() {
                    return err(lineno, "malformed [[section]] header");
                }
                section = match name {
                    "joins" => {
                        m.joins.push(ManifestJoin::default());
                        Section::Join
                    }
                    _ => Section::Unknown,
                };
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header.trim_end_matches(']').trim();
                if name.len() + 2 != line.len() {
                    return err(lineno, "malformed [section] header");
                }
                section = match name.split_once('.') {
                    None if name == "dataset" => Section::Dataset,
                    None if name == "discovery" => Section::Discovery,
                    Some(("tables", table)) if !table.is_empty() => {
                        Section::Table(table.to_string())
                    }
                    _ => Section::Unknown,
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, "expected `key = value` or a [section] header");
            };
            let key = key.trim();
            let value = Value::parse(value.trim(), lineno)?;
            m.apply(&section, key, value, lineno)?;
        }
        Ok(m)
    }

    fn apply(&mut self, section: &Section, key: &str, value: Value, lineno: usize) -> Result<()> {
        match section {
            Section::Dataset => {
                if key == "name" {
                    self.name = Some(value.into_str(lineno)?);
                }
            }
            Section::Discovery => match key {
                "enabled" => self.discovery_enabled = Some(value.into_bool(lineno)?),
                "min_containment" => self.min_containment = Some(value.into_f64(lineno)?),
                "min_to_uniqueness" => self.min_to_uniqueness = Some(value.into_f64(lineno)?),
                "min_to_coverage" => self.min_to_coverage = Some(value.into_f64(lineno)?),
                "max_joins" => self.max_joins = Some(value.into_f64(lineno)? as usize),
                _ => {}
            },
            Section::Table(table) => {
                let t = self.tables.entry(table.clone()).or_default();
                match key {
                    "key" => t.key = Some(value.into_str_array(lineno)?),
                    "categorical" => t.categorical = value.into_str_array(lineno)?,
                    "numeric" => t.numeric = value.into_str_array(lineno)?,
                    _ => {}
                }
            }
            Section::Join => {
                let j = self
                    .joins
                    .last_mut()
                    .expect("Section::Join implies a pushed join");
                match key {
                    "from_table" => j.from_table = value.into_str(lineno)?,
                    "to_table" => j.to_table = value.into_str(lineno)?,
                    "from_columns" => j.from_columns = value.into_str_array(lineno)?,
                    "to_columns" => j.to_columns = value.into_str_array(lineno)?,
                    _ => {}
                }
            }
            Section::None => {
                return err(lineno, "key outside of any [section]");
            }
            Section::Unknown => {}
        }
        Ok(())
    }

    /// Structural validation of the pinned joins (columns pair up,
    /// tables named). Existence against the loaded schemas is checked
    /// later by schema-graph validation.
    pub fn validate(&self) -> Result<()> {
        for (i, j) in self.joins.iter().enumerate() {
            if j.from_table.is_empty() || j.to_table.is_empty() {
                return err(0, &format!("[[joins]] #{}: missing table name", i + 1));
            }
            if j.from_columns.is_empty() || j.from_columns.len() != j.to_columns.len() {
                return err(
                    0,
                    &format!(
                        "[[joins]] #{} ({} → {}): from_columns and to_columns must be \
                         equal-length and non-empty",
                        i + 1,
                        j.from_table,
                        j.to_table
                    ),
                );
            }
        }
        Ok(())
    }

    /// The pinned kind for `table.column`, if any.
    pub fn pinned_kind(&self, table: &str, column: &str) -> Option<cajade_storage::AttrKind> {
        let t = self.tables.get(table)?;
        if t.categorical.iter().any(|c| c == column) {
            Some(cajade_storage::AttrKind::Categorical)
        } else if t.numeric.iter().any(|c| c == column) {
            Some(cajade_storage::AttrKind::Numeric)
        } else {
            None
        }
    }
}

fn err<T>(line: usize, msg: &str) -> Result<T> {
    Err(IngestError::Manifest {
        line,
        msg: msg.to_string(),
    })
}

/// Strips a `#` comment, honouring quoted strings (with `\"` escapes).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits an array body on top-level commas, honouring quoted strings
/// (with `\"` escapes) so a comma inside a name does not split an item.
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut in_quotes = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

/// Undoes [`crate::export`]'s string escaping (`\"` and `\\`).
fn unescape(s: &str, lineno: usize) -> Result<String> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => {
                return err(
                    lineno,
                    &format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                )
            }
        }
    }
    Ok(out)
}

/// A scalar or string-array manifest value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl Value {
    fn parse(text: &str, lineno: usize) -> Result<Value> {
        if let Some(body) = text.strip_prefix('[') {
            let body = body
                .strip_suffix(']')
                .ok_or_else(|| IngestError::Manifest {
                    line: lineno,
                    msg: "unterminated array".into(),
                })?
                .trim();
            let mut items = Vec::new();
            if !body.is_empty() {
                for item in split_array_items(body) {
                    let item = item.trim();
                    if item.is_empty() {
                        continue; // trailing comma
                    }
                    match Value::parse(item, lineno)? {
                        Value::Str(s) => items.push(s),
                        _ => {
                            return err(lineno, "arrays may contain only quoted strings");
                        }
                    }
                }
            }
            return Ok(Value::StrArray(items));
        }
        if let Some(body) = text.strip_prefix('"') {
            let body = body
                .strip_suffix('"')
                .ok_or_else(|| IngestError::Manifest {
                    line: lineno,
                    msg: "unterminated string".into(),
                })?;
            return Ok(Value::Str(unescape(body, lineno)?));
        }
        match text {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| IngestError::Manifest {
                line: lineno,
                msg: format!("unrecognized value `{text}`"),
            })
    }

    fn into_str(self, lineno: usize) -> Result<String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => err(lineno, "expected a quoted string"),
        }
    }

    fn into_f64(self, lineno: usize) -> Result<f64> {
        match self {
            Value::Num(n) => Ok(n),
            _ => err(lineno, "expected a number"),
        }
    }

    fn into_bool(self, lineno: usize) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => err(lineno, "expected true or false"),
        }
    }

    fn into_str_array(self, lineno: usize) -> Result<Vec<String>> {
        match self {
            Value::StrArray(items) => Ok(items),
            _ => err(lineno, "expected an array of quoted strings"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_manifest_round_trip() {
        let text = r#"
# retail demo
[dataset]
name = "retail"

[discovery]
enabled = true
min_containment = 0.9   # relaxed
max_joins = 8

[tables.stores]
key = ["store_id"]
categorical = ["zip"]

[tables.sales]
numeric = ["amount"]

[[joins]]
from_table = "sales"
from_columns = ["store_id"]
to_table = "stores"
to_columns = ["store_id"]

[[joins]]
from_table = "stats"
from_columns = ["game_date", "home_id"]
to_table = "game"
to_columns = ["game_date", "home_id"]
"#;
        let m = Manifest::parse(text).unwrap();
        m.validate().unwrap();
        assert_eq!(m.name.as_deref(), Some("retail"));
        assert_eq!(m.discovery_enabled, Some(true));
        assert_eq!(m.min_containment, Some(0.9));
        assert_eq!(m.max_joins, Some(8));
        assert_eq!(
            m.tables["stores"].key.as_deref(),
            Some(&["store_id".to_string()][..])
        );
        assert_eq!(
            m.pinned_kind("stores", "zip"),
            Some(cajade_storage::AttrKind::Categorical)
        );
        assert_eq!(
            m.pinned_kind("sales", "amount"),
            Some(cajade_storage::AttrKind::Numeric)
        );
        assert_eq!(m.pinned_kind("sales", "channel"), None);
        assert_eq!(m.joins.len(), 2);
        assert_eq!(m.joins[1].from_columns.len(), 2);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let cases = [
            ("[dataset]\nname = ", 2),
            ("stray = 1", 1),
            ("[dataset]\nname = \"unterminated", 2),
            ("[tables.t]\nkey = [\"a\"", 2),
            ("[tables.t]\nkey = [1, 2]", 2),
            ("[discovery]\nenabled = \"yes\"", 2),
        ];
        for (text, want_line) in cases {
            match Manifest::parse(text) {
                Err(IngestError::Manifest { line, .. }) => {
                    assert_eq!(line, want_line, "{text:?}")
                }
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn escaped_quotes_and_commas_round_trip() {
        let text = "[dataset]\nname = \"my \\\"prod\\\" data\"\n[tables.t]\nkey = [\"a,b\", \"c\\\\d\"]  # comment with \" quote\n";
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.name.as_deref(), Some("my \"prod\" data"));
        assert_eq!(
            m.tables["t"].key.as_deref(),
            Some(&["a,b".to_string(), "c\\d".to_string()][..])
        );
    }

    #[test]
    fn discovery_coverage_override_parses() {
        let m = Manifest::parse("[discovery]\nmin_to_coverage = 0.2\n").unwrap();
        assert_eq!(m.min_to_coverage, Some(0.2));
    }

    #[test]
    fn unknown_sections_and_keys_are_ignored() {
        let m = Manifest::parse("[future]\nshiny = true\n[dataset]\nbogus = 1\nname = \"x\"\n")
            .unwrap();
        assert_eq!(m.name.as_deref(), Some("x"));
    }

    #[test]
    fn join_validation_catches_arity_mismatch() {
        let text = "[[joins]]\nfrom_table = \"a\"\nto_table = \"b\"\nfrom_columns = [\"x\"]\nto_columns = []\n";
        let m = Manifest::parse(text).unwrap();
        assert!(m.validate().is_err());
    }
}
