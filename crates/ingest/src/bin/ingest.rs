//! `cajade-ingest` — one-shot command line for the ingestion subsystem:
//! point it at a CSV directory, get the inferred schema, discovered
//! joins, and (optionally) ranked explanations for a question.
//!
//! ```text
//! cajade-ingest <dir>                          # ingest + report
//! cajade-ingest <dir> --sql "SELECT ..."       # + run the query
//! cajade-ingest <dir> --sql "..." \
//!     --t1 channel=online --t2 channel=in_person   # + explain
//! ```
//!
//! Flags: `--strict` (error on post-sample type contradictions instead
//! of coercing to NULL), `--max-joins <n>`, `--name <db>`, `--top <k>`.

use std::process::ExitCode;

use cajade_core::{ExplanationSession, Params, UserQuestion};

// Heap attribution for the ingest stages (scan/infer/load/discover get
// per-scope byte ledgers); see docs/OBSERVABILITY.md § Memory attribution.
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;
use cajade_ingest::{ingest_dir, IngestOptions};
use cajade_query::parse_sql;

struct Args {
    dir: String,
    sql: Option<String>,
    t1: Vec<(String, String)>,
    t2: Vec<(String, String)>,
    top: usize,
    options: IngestOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: cajade-ingest <csv-dir> [--sql <query>] [--t1 col=value ...] \
         [--t2 col=value ...] [--top <k>] [--name <db>] [--max-joins <n>] [--strict]"
    );
    std::process::exit(2);
}

fn parse_pair(spec: &str) -> (String, String) {
    match spec.split_once('=') {
        Some((c, v)) if !c.is_empty() => (c.to_string(), v.to_string()),
        _ => {
            eprintln!("bad tuple spec `{spec}` (expected col=value)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        sql: None,
        t1: Vec::new(),
        t2: Vec::new(),
        top: 5,
        options: IngestOptions::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--sql" => args.sql = Some(value()),
            "--t1" => args.t1.push(parse_pair(&value())),
            "--t2" => args.t2.push(parse_pair(&value())),
            "--top" => args.top = value().parse().unwrap_or_else(|_| usage()),
            "--name" => args.options.name = Some(value()),
            "--max-joins" => {
                args.options.max_discovered_joins =
                    Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--strict" => args.options.strict_types = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other if args.dir.is_empty() => args.dir = other.to_string(),
            _ => usage(),
        }
    }
    if args.dir.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let ingested = match ingest_dir(&args.dir, &args.options) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("ingest failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", ingested.report.render());

    let Some(sql) = &args.sql else {
        return ExitCode::SUCCESS;
    };
    let query = match parse_sql(sql) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cajade_query::execute(&ingested.db, &query) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("query failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\n{}", result.render(&ingested.db));

    if args.t1.is_empty() && args.t2.is_empty() {
        return ExitCode::SUCCESS;
    }
    let question = match UserQuestion::from_specs(&args.t1, &args.t2) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let session = ExplanationSession::new(&ingested.db, &ingested.schema_graph, Params::fast());
    let outcome = match session.explain(&query, &question) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("explanation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("top explanations:");
    for (i, e) in outcome.explanations.iter().take(args.top).enumerate() {
        println!("  {:>2}. {}", i + 1, e.render_line());
    }
    println!("\n{}", outcome.timings.render());
    ExitCode::SUCCESS
}
