//! Per-stage ingestion reports: what was loaded, what was inferred,
//! which joins were proposed, and how long each stage took.

use std::time::Duration;

use cajade_graph::JoinCandidate;

/// Wall-clock breakdown of one ingestion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestTimings {
    /// Directory scan + manifest parse.
    pub scan: Duration,
    /// Pass 1: streaming type/key inference over every file.
    pub infer: Duration,
    /// Pass 2: typed load into columnar tables (+ composite-key check).
    pub load: Duration,
    /// Containment-based join discovery + schema-graph assembly.
    pub discover: Duration,
}

impl IngestTimings {
    /// Total ingestion wall clock.
    pub fn total(&self) -> Duration {
        self.scan + self.infer + self.load + self.discover
    }

    /// Four `(stage, duration)` rows in pipeline order.
    pub fn rows(&self) -> [(&'static str, Duration); 4] {
        [
            ("scan", self.scan),
            ("infer", self.infer),
            ("load", self.load),
            ("discover", self.discover),
        ]
    }

    /// Renders the stage table, one `name: 12.34 ms` line per stage.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, d) in self.rows() {
            out.push_str(&format!("{name:>10}: {:>9.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out.push_str(&format!(
            "{:>10}: {:>9.3} ms\n",
            "total",
            self.total().as_secs_f64() * 1e3
        ));
        out
    }
}

/// How one table's load went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableReport {
    /// Table (file stem) name.
    pub name: String,
    /// Rows loaded.
    pub rows: usize,
    /// Columns loaded.
    pub columns: usize,
    /// Primary-key columns (inferred or pinned), in key order.
    pub key: Vec<String>,
    /// True when the key came from the manifest rather than inference.
    pub key_pinned: bool,
    /// Records whose field count differed from the header's.
    pub ragged_rows: usize,
    /// Cells that contradicted the inferred type after the sampling
    /// window and were coerced to NULL (lenient mode only).
    pub coerced_nulls: usize,
}

/// Where a schema-graph join came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrigin {
    /// Pinned by the `dataset.toml` manifest.
    Pinned,
    /// Proposed by containment-based discovery.
    Discovered,
}

impl JoinOrigin {
    /// Lowercase label used in reports and the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            JoinOrigin::Pinned => "pinned",
            JoinOrigin::Discovered => "discovered",
        }
    }
}

/// One join condition in the assembled schema graph, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// Rendered condition, e.g. `sales.store_id = stores.store_id`.
    pub condition: String,
    /// Pinned vs discovered.
    pub origin: JoinOrigin,
    /// Discovery evidence (absent for pinned joins).
    pub evidence: Option<JoinCandidate>,
}

/// The full ingestion report returned alongside the database.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Database name (manifest, option, or directory stem).
    pub dataset: String,
    /// Whether a `dataset.toml` manifest was found and honoured.
    pub manifest_used: bool,
    /// Per-table load reports, in load (file-name) order.
    pub tables: Vec<TableReport>,
    /// Every join in the assembled schema graph, pinned first.
    pub joins: Vec<JoinReport>,
    /// Non-fatal oddities worth surfacing (ragged rows, coerced cells,
    /// all-null columns, skipped non-CSV files…).
    pub warnings: Vec<String>,
    /// Per-stage wall clock.
    pub timings: IngestTimings,
}

impl IngestReport {
    /// Total rows loaded across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Joins proposed by discovery (vs pinned by the manifest).
    pub fn discovered_join_count(&self) -> usize {
        self.joins
            .iter()
            .filter(|j| j.origin == JoinOrigin::Discovered)
            .count()
    }

    /// Human-readable multi-line summary (the CLI's output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "dataset `{}`: {} tables, {} rows{}\n",
            self.dataset,
            self.tables.len(),
            self.total_rows(),
            if self.manifest_used {
                " (dataset.toml honoured)"
            } else {
                ""
            }
        );
        for t in &self.tables {
            out.push_str(&format!(
                "  {:<24} {:>8} rows × {:<2} cols  key [{}]{}{}\n",
                t.name,
                t.rows,
                t.columns,
                t.key.join(", "),
                if t.key_pinned { " (pinned)" } else { "" },
                if t.ragged_rows + t.coerced_nulls > 0 {
                    format!("  ({} ragged, {} coerced)", t.ragged_rows, t.coerced_nulls)
                } else {
                    String::new()
                },
            ));
        }
        out.push_str(&format!(
            "joins: {} pinned, {} discovered\n",
            self.joins.len() - self.discovered_join_count(),
            self.discovered_join_count()
        ));
        for j in &self.joins {
            out.push_str(&format!("  [{:^10}] {}\n", j.origin.label(), j.condition));
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        out.push_str(&self.timings.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total_and_render() {
        let t = IngestTimings {
            scan: Duration::from_millis(1),
            infer: Duration::from_millis(2),
            load: Duration::from_millis(3),
            discover: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        let s = t.render();
        assert!(s.contains("scan"));
        assert!(s.contains("discover"));
        assert!(s.contains("total"));
    }

    #[test]
    fn report_render_counts_origins() {
        let r = IngestReport {
            dataset: "d".into(),
            manifest_used: true,
            tables: vec![TableReport {
                name: "t".into(),
                rows: 5,
                columns: 2,
                key: vec!["id".into()],
                key_pinned: false,
                ragged_rows: 1,
                coerced_nulls: 0,
            }],
            joins: vec![
                JoinReport {
                    condition: "a.x = b.x".into(),
                    origin: JoinOrigin::Pinned,
                    evidence: None,
                },
                JoinReport {
                    condition: "a.y = c.y".into(),
                    origin: JoinOrigin::Discovered,
                    evidence: None,
                },
            ],
            warnings: vec!["one oddity".into()],
            timings: IngestTimings::default(),
        };
        assert_eq!(r.total_rows(), 5);
        assert_eq!(r.discovered_join_count(), 1);
        let s = r.render();
        assert!(s.contains("1 pinned, 1 discovered"));
        assert!(s.contains("one oddity"));
        assert!(s.contains("ragged"));
    }
}
