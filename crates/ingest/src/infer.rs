//! Column type, kind, and key inference over streamed CSV rows.
//!
//! Pass 1 of the two-pass load: every record flows through a
//! [`TableProfile`] that accumulates, per column,
//!
//! * a **type lattice** position (`Int ⊑ Float ⊑ Str`): a cell that
//!   fails integer parsing promotes the column to `Float`, a cell that
//!   fails float parsing promotes it to `Str` — but only within the
//!   sampling window ([`InferConfig::sample_rows`]); later rows still
//!   count nulls/distincts but no longer refine the type (the paper-\
//!   scale corpora are far too large for full-scan inference),
//! * **null statistics** (empty cells are NULL for numeric columns),
//! * a capped **distinct-value sketch** driving key detection and the
//!   categorical/numeric kind heuristic.
//!
//! [`TableProfile::into_schema`] then synthesizes a [`Schema`]:
//! single-column unique keys are marked primary, integer columns with
//! id-like names or key status stay categorical (equality-only in the
//! pattern language), and everything a `dataset.toml` manifest pins
//! overrides the inference.

use std::collections::HashSet;

use cajade_storage::{AttrKind, DataType, Field, Schema};

use crate::manifest::Manifest;

/// Inference tuning knobs (subset of [`crate::IngestOptions`]).
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// Rows examined for *type* decisions; rows beyond the window update
    /// null/distinct statistics only.
    pub sample_rows: usize,
    /// Cap on tracked distinct values per column (memory guard). A
    /// column that overflows the cap is treated as "many distinct" —
    /// fine for keys, which is what the sketch is for.
    pub max_distinct: usize,
    /// Integer columns with at most this many distinct values are
    /// treated as categorical codes (flags, enumerations) rather than
    /// measures.
    pub small_int_domain: usize,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self {
            sample_rows: 100_000,
            // ~8 MB/column worst case; key detection degrades (with a
            // warning) rather than erring on tables beyond this.
            max_distinct: 1 << 20,
            small_int_domain: 12,
        }
    }
}

/// What a cell's text parses as (cheapest check first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellClass {
    Empty,
    Int,
    Float,
    Str,
}

fn classify(raw: &str) -> CellClass {
    let t = raw.trim();
    if t.is_empty() {
        // Whitespace-only cells are as empty as empty ones; a space-padded
        // gap must not demote a numeric column to Str.
        return CellClass::Empty;
    }
    if t.parse::<i64>().is_ok() {
        CellClass::Int
    } else if t.parse::<f64>().is_ok() {
        CellClass::Float
    } else {
        CellClass::Str
    }
}

/// Per-column accumulator.
#[derive(Debug)]
pub struct ColumnProfile {
    /// Column (header) name.
    pub name: String,
    /// Current type-lattice position (valid for the sampled window).
    dtype: DataType,
    /// True until the first non-empty cell fixes an initial type.
    untyped: bool,
    /// Empty cells seen.
    pub nulls: usize,
    /// Non-empty cells seen.
    pub non_nulls: usize,
    /// Capped distinct sketch (FNV-hashed cell text).
    distinct: HashSet<u64>,
    /// True once the sketch hit its cap.
    pub distinct_truncated: bool,
}

impl ColumnProfile {
    fn new(name: String) -> Self {
        Self {
            name,
            dtype: DataType::Str,
            untyped: true,
            nulls: 0,
            non_nulls: 0,
            distinct: HashSet::new(),
            distinct_truncated: false,
        }
    }

    /// Distinct values seen (lower bound once truncated).
    pub fn distinct_count(&self) -> usize {
        self.distinct.len()
    }

    /// True iff every cell was non-null and distinct — a single-column
    /// unique key over the scanned rows.
    pub fn is_unique_key(&self) -> bool {
        self.nulls == 0
            && !self.distinct_truncated
            && self.non_nulls > 0
            && self.distinct.len() == self.non_nulls
    }

    /// The inferred physical type. All-null columns fall back to `Str`.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    fn observe(&mut self, raw: &str, in_sample: bool, cfg: &InferConfig) {
        let class = classify(raw);
        if class == CellClass::Empty {
            self.nulls += 1;
            return;
        }
        self.non_nulls += 1;
        if in_sample {
            let cell_type = match class {
                CellClass::Int => DataType::Int,
                CellClass::Float => DataType::Float,
                CellClass::Str | CellClass::Empty => DataType::Str,
            };
            self.dtype = if self.untyped {
                self.untyped = false;
                cell_type
            } else {
                promote(self.dtype, cell_type)
            };
        }
        if self.distinct.len() < cfg.max_distinct {
            self.distinct.insert(fnv1a(raw.trim().as_bytes()));
        } else if !self.distinct.contains(&fnv1a(raw.trim().as_bytes())) {
            self.distinct_truncated = true;
        }
    }
}

/// Least upper bound in the `Int ⊑ Float ⊑ Str` lattice.
fn promote(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (Str, _) | (_, Str) => Str,
        (Float, _) | (_, Float) => Float,
        (Int, Int) => Int,
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // the FNV-64 prime
    }
    h
}

/// Streaming profile of one CSV table (pass 1 of the two-pass load).
#[derive(Debug)]
pub struct TableProfile {
    /// Table name (file stem).
    pub table: String,
    /// Per-column accumulators, in header order.
    pub columns: Vec<ColumnProfile>,
    /// Data rows observed.
    pub rows: usize,
    /// Rows whose field count differed from the header's.
    pub ragged_rows: usize,
    cfg: InferConfig,
}

impl TableProfile {
    /// Starts a profile for `table` with the given header.
    pub fn new(table: impl Into<String>, header: &[String], cfg: InferConfig) -> Self {
        Self {
            table: table.into(),
            columns: header
                .iter()
                .map(|name| ColumnProfile::new(name.clone()))
                .collect(),
            rows: 0,
            ragged_rows: 0,
            cfg,
        }
    }

    /// Feeds one record. Short records count missing fields as nulls;
    /// long records' extra fields are ignored; both are tallied as
    /// ragged.
    pub fn observe_row(&mut self, fields: &[String]) {
        if fields.len() != self.columns.len() {
            self.ragged_rows += 1;
        }
        let in_sample = self.rows < self.cfg.sample_rows;
        let cfg = self.cfg.clone();
        for (i, col) in self.columns.iter_mut().enumerate() {
            let raw = fields.get(i).map(String::as_str).unwrap_or("");
            col.observe(raw, in_sample, &cfg);
        }
        self.rows += 1;
    }

    /// Synthesizes the schema: inferred types, kind heuristic, and
    /// single-column key detection, with `manifest` pins overriding all
    /// of it. Composite keys (no single column unique) are detected
    /// post-load by [`crate::ingest_dir`], which sees full rows.
    pub fn into_schema(&self, manifest: &Manifest) -> Schema {
        let pinned = manifest.tables.get(&self.table);
        let pinned_key: Option<&[String]> = pinned.and_then(|t| t.key.as_deref());
        // Default single-column key: the first unique column, preferring
        // id-named ones (a file with both a surrogate id and a unique
        // name column should key on the id).
        let inferred_key: Option<&str> = self
            .columns
            .iter()
            .filter(|c| c.is_unique_key())
            .min_by_key(|c| (!id_like(&c.name), position(&self.columns, &c.name)))
            .map(|c| c.name.as_str());
        let fields = self
            .columns
            .iter()
            .map(|c| {
                let is_pk = match pinned_key {
                    Some(key) => key.iter().any(|k| k == &c.name),
                    None => inferred_key == Some(c.name.as_str()),
                };
                let kind = manifest
                    .pinned_kind(&self.table, &c.name)
                    .unwrap_or_else(|| infer_kind(c, is_pk, &self.cfg));
                Field {
                    name: c.name.clone(),
                    dtype: c.dtype(),
                    kind,
                    is_pk,
                }
            })
            .collect();
        Schema {
            name: self.table.clone(),
            fields,
        }
    }
}

fn position(cols: &[ColumnProfile], name: &str) -> usize {
    cols.iter().position(|c| c.name == name).unwrap_or(0)
}

/// Kind heuristic (paper Definition 5: categorical attributes admit only
/// `=` predicates, numeric ones also `≤`/`≥`):
///
/// * strings are categorical, floats are numeric;
/// * integers are categorical when they behave like identifiers — an
///   id-like name, key status, or a tiny domain (flags/codes) — and
///   numeric otherwise (measures like points or amounts).
fn infer_kind(col: &ColumnProfile, is_pk: bool, cfg: &InferConfig) -> AttrKind {
    match col.dtype() {
        DataType::Str => AttrKind::Categorical,
        DataType::Float => AttrKind::Numeric,
        DataType::Int => {
            if is_pk
                || id_like(&col.name)
                || col.is_unique_key()
                || (!col.distinct_truncated && col.distinct_count() <= cfg.small_int_domain)
            {
                AttrKind::Categorical
            } else {
                AttrKind::Numeric
            }
        }
    }
}

/// Name-based identifier detection: `id`, `*_id`, `*_key`, `*_code`,
/// `*_date` (case-insensitive) and their camel variants.
fn id_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "id"
        || lower == "key"
        || lower == "code"
        || lower.ends_with("_id")
        || lower.ends_with("id") && lower.len() > 2 && !lower.ends_with("paid")
        || lower.ends_with("_key")
        || lower.ends_with("_code")
        || lower.ends_with("_date")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rows: &[&[&str]], header: &[&str]) -> TableProfile {
        let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
        let mut p = TableProfile::new("t", &header, InferConfig::default());
        for r in rows {
            let fields: Vec<String> = r.iter().map(|s| s.to_string()).collect();
            p.observe_row(&fields);
        }
        p
    }

    #[test]
    fn int_float_str_lattice() {
        let p = profile(
            &[
                &["1", "1", "1", ""],
                &["2", "2.5", "x", "3"],
                &["3", "", "2", ""],
            ],
            &["a", "b", "c", "d"],
        );
        assert_eq!(p.columns[0].dtype(), DataType::Int);
        assert_eq!(p.columns[1].dtype(), DataType::Float, "int ⊔ float = float");
        assert_eq!(p.columns[2].dtype(), DataType::Str, "any string wins");
        assert_eq!(p.columns[3].dtype(), DataType::Int, "nulls don't type");
        assert_eq!(p.columns[3].nulls, 2);
    }

    #[test]
    fn all_null_column_falls_back_to_str() {
        let p = profile(&[&[""], &[""]], &["ghost"]);
        assert_eq!(p.columns[0].dtype(), DataType::Str);
        assert!(!p.columns[0].is_unique_key());
    }

    #[test]
    fn unique_key_detection_prefers_id_named_columns() {
        let p = profile(
            &[&["1", "alice", "7"], &["2", "bob", "7"]],
            &["user_id", "name", "group"],
        );
        let m = Manifest::default();
        let schema = p.into_schema(&m);
        assert_eq!(schema.primary_key(), vec!["user_id"]);
        // `name` is unique too, but the id-named column wins.
        assert!(p.columns[1].is_unique_key());
    }

    #[test]
    fn kind_heuristic_separates_ids_from_measures() {
        let p = profile(
            &[
                &["1", "101", "23", "1"],
                &["2", "102", "31", "0"],
                &["3", "103", "44", "1"],
                &["4", "101", "52", "0"],
                &["5", "102", "19", "1"],
                &["6", "103", "28", "0"],
                &["7", "101", "33", "1"],
                &["8", "102", "41", "0"],
                &["9", "103", "27", "1"],
                &["10", "101", "38", "0"],
                &["11", "102", "45", "1"],
                &["12", "103", "22", "0"],
                &["13", "101", "36", "1"],
                &["14", "102", "23", "0"],
            ],
            &["row_id", "store_id", "points", "flag"],
        );
        let m = Manifest::default();
        let s = p.into_schema(&m);
        assert_eq!(s.field("row_id").unwrap().kind, AttrKind::Categorical);
        assert_eq!(s.field("store_id").unwrap().kind, AttrKind::Categorical);
        assert_eq!(s.field("points").unwrap().kind, AttrKind::Numeric);
        assert_eq!(
            s.field("flag").unwrap().kind,
            AttrKind::Categorical,
            "tiny integer domains are codes"
        );
    }

    #[test]
    fn manifest_pins_beat_inference() {
        let mut m = Manifest::default();
        m.tables.insert(
            "t".into(),
            crate::manifest::TableManifest {
                key: Some(vec!["zip".into()]),
                categorical: vec!["points".into()],
                numeric: vec![],
            },
        );
        let p = profile(&[&["90210", "23"], &["10001", "31"]], &["zip", "points"]);
        let s = p.into_schema(&m);
        assert_eq!(s.primary_key(), vec!["zip"]);
        assert_eq!(s.field("points").unwrap().kind, AttrKind::Categorical);
    }

    #[test]
    fn sampling_window_freezes_the_type() {
        let header = vec!["x".to_string()];
        let mut p = TableProfile::new(
            "t",
            &header,
            InferConfig {
                sample_rows: 2,
                ..InferConfig::default()
            },
        );
        p.observe_row(&["1".into()]);
        p.observe_row(&["2".into()]);
        p.observe_row(&["not a number".into()]); // beyond the window
        assert_eq!(p.columns[0].dtype(), DataType::Int);
        assert_eq!(p.rows, 3);
    }

    #[test]
    fn ragged_rows_are_tallied_and_padded() {
        let p = profile(&[&["1", "a"], &["2"], &["3", "b", "zzz"]], &["id", "v"]);
        assert_eq!(p.ragged_rows, 2);
        assert_eq!(p.rows, 3);
        assert_eq!(p.columns[1].nulls, 1, "missing field counts as null");
    }
}
