//! Ingestion of messy real-world CSV: quoting, ragged rows, type
//! promotion, null semantics, BOMs, CRLF, and manifest overrides.

use std::path::{Path, PathBuf};

use cajade_ingest::{ingest_dir, IngestError, IngestOptions};
use cajade_storage::{AttrKind, DataType, StorageError, Value};

/// Self-cleaning fixture directory.
struct Fixture(PathBuf);

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Fixture {
        let dir = std::env::temp_dir().join(format!("cajade_messy_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for (file, content) in files {
            std::fs::write(dir.join(file), content).unwrap();
        }
        Fixture(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn quoted_fields_with_embedded_newlines_and_commas() {
    let fx = Fixture::new(
        "quotes",
        &[(
            "notes.csv",
            "id,note\n1,\"line one\nline two\"\n2,\"has, comma and \"\"quotes\"\"\"\n3,plain\n",
        )],
    );
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("notes").unwrap();
    assert_eq!(t.num_rows(), 3);
    let resolve = |r: usize| match t.value(r, 1) {
        Value::Str(id) => out.db.resolve(id).to_string(),
        other => panic!("{other:?}"),
    };
    assert_eq!(resolve(0), "line one\nline two");
    assert_eq!(resolve(1), "has, comma and \"quotes\"");
    assert_eq!(out.report.tables[0].ragged_rows, 0);
}

#[test]
fn ragged_rows_pad_truncate_and_count() {
    let fx = Fixture::new(
        "ragged",
        &[(
            "r.csv",
            "id,name,score\n1,a,10\n2,b\n3,c,30,EXTRA\n4,d,40\n",
        )],
    );
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("r").unwrap();
    assert_eq!(t.num_rows(), 4);
    assert_eq!(out.report.tables[0].ragged_rows, 2);
    // Short row: missing score is NULL. Long row: extra field dropped.
    assert_eq!(t.value(1, 2), Value::Null);
    assert_eq!(t.value(2, 2), Value::Int(30));
    assert!(
        out.report.warnings.iter().any(|w| w.contains("ragged")),
        "{:?}",
        out.report.warnings
    );
}

#[test]
fn mixed_int_float_promotes_to_float() {
    let fx = Fixture::new("promote", &[("m.csv", "id,v\n1,1\n2,2.5\n3,3\n")]);
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("m").unwrap();
    let f = t.schema().field("v").unwrap();
    assert_eq!(f.dtype, DataType::Float);
    assert_eq!(f.kind, AttrKind::Numeric);
    assert_eq!(t.value(0, 1), Value::Float(1.0));
    assert_eq!(t.value(1, 1), Value::Float(2.5));
}

#[test]
fn empty_string_vs_null_semantics() {
    let fx = Fixture::new("nulls", &[("n.csv", "id,label,score\n1,,\n2,x,5\n3,,7\n")]);
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("n").unwrap();
    // String column: empty cell is the empty string, not NULL.
    match t.value(0, 1) {
        Value::Str(id) => assert_eq!(out.db.resolve(id), ""),
        other => panic!("{other:?}"),
    }
    // Numeric column: empty cell is NULL and doesn't break Int inference.
    assert_eq!(t.schema().field("score").unwrap().dtype, DataType::Int);
    assert_eq!(t.value(0, 2), Value::Null);
    assert_eq!(t.value(1, 2), Value::Int(5));
}

#[test]
fn bom_and_crlf_are_handled() {
    let fx = Fixture::new(
        "bom",
        &[("b.csv", "\u{feff}id,name\r\n1,alpha\r\n2,beta\r\n")],
    );
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("b").unwrap();
    // The BOM must not glue itself onto the first header name.
    assert_eq!(t.schema().fields[0].name, "id");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.value(1, 0), Value::Int(2));
}

#[test]
fn manifest_override_beats_wrong_inference() {
    // `zip` ingests as an Int measure without help (many distinct values,
    // not id-named); the manifest pins it categorical and keys the table
    // on it.
    let zips: String = (0..40)
        .map(|i| format!("{},{}\n", 10000 + i * 7, (i % 4) * 25))
        .collect();
    let with_manifest = Fixture::new(
        "override",
        &[
            ("areas.csv", &*format!("zip,tax\n{zips}")),
            (
                "dataset.toml",
                "[tables.areas]\nkey = [\"zip\"]\ncategorical = [\"zip\"]\n",
            ),
        ],
    );
    let out = ingest_dir(with_manifest.path(), &IngestOptions::default()).unwrap();
    let schema = out.db.table("areas").unwrap().schema().clone();
    assert_eq!(schema.field("zip").unwrap().kind, AttrKind::Categorical);
    assert_eq!(schema.primary_key(), vec!["zip"]);
    assert!(out.report.manifest_used);
    assert!(out.report.tables[0].key_pinned);

    // Control: without the manifest the same data stays a measure (it is
    // unique, so it would be *keyed*, but the kind pin is what forces
    // equality-only mining semantics).
    let bare = Fixture::new(
        "override_bare",
        &[("areas.csv", &*format!("zip,tax\n{zips}"))],
    );
    let out = ingest_dir(bare.path(), &IngestOptions::default()).unwrap();
    let schema = out.db.table("areas").unwrap().schema().clone();
    assert_eq!(
        schema.field("zip").unwrap().kind,
        AttrKind::Categorical,
        "unique key columns are categorical even un-pinned"
    );
    assert!(!out.report.manifest_used);
}

#[test]
fn post_sample_type_clash_lenient_vs_strict() {
    // The sampling window sees only integers; row 6 is text.
    let mut csv = String::from("id,v\n");
    for i in 0..5 {
        csv.push_str(&format!("{i},{}\n", i * 10));
    }
    csv.push_str("5,oops\n");
    let options = |strict: bool| IngestOptions {
        strict_types: strict,
        infer: cajade_ingest::InferConfig {
            sample_rows: 5,
            ..Default::default()
        },
        ..Default::default()
    };

    let fx = Fixture::new("clash_lenient", &[("t.csv", &*csv)]);
    let out = ingest_dir(fx.path(), &options(false)).unwrap();
    let t = out.db.table("t").unwrap();
    assert_eq!(t.schema().field("v").unwrap().dtype, DataType::Int);
    assert_eq!(t.value(5, 1), Value::Null, "lenient mode coerces to NULL");
    assert_eq!(out.report.tables[0].coerced_nulls, 1);
    assert!(out.report.warnings.iter().any(|w| w.contains("coerced")));

    let fx = Fixture::new("clash_strict", &[("t.csv", &*csv)]);
    let err = ingest_dir(fx.path(), &options(true)).unwrap_err();
    match err {
        IngestError::Storage {
            table,
            source: StorageError::TypeInference { column, msg },
        } => {
            assert_eq!(table, "t");
            assert_eq!(column, "v");
            assert!(msg.contains("line 7"), "{msg}");
            assert!(msg.contains("oops"), "{msg}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn whitespace_only_cells_are_null_not_str() {
    let fx = Fixture::new("whitespace", &[("w.csv", "id,amount\n1,10\n2,   \n3,30\n")]);
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    let t = out.db.table("w").unwrap();
    // A space-padded gap must not demote the column to Str.
    assert_eq!(t.schema().field("amount").unwrap().dtype, DataType::Int);
    assert_eq!(t.value(1, 1), Value::Null);
    assert_eq!(out.report.tables[0].coerced_nulls, 0);
}

#[test]
fn manifest_pin_naming_unknown_column_errors() {
    let fx = Fixture::new(
        "badpin",
        &[
            ("sales.csv", "sale_id,amount\n1,10\n2,20\n"),
            ("dataset.toml", "[tables.sales]\nkey = [\"sale_ID\"]\n"),
        ],
    );
    let err = ingest_dir(fx.path(), &IngestOptions::default()).unwrap_err();
    match err {
        IngestError::Manifest { msg, .. } => {
            assert!(msg.contains("sale_ID"), "{msg}");
            assert!(msg.contains("sale_id"), "suggests the real columns: {msg}");
        }
        other => panic!("{other:?}"),
    }

    // Pins for a table with no CSV file only warn.
    let fx = Fixture::new(
        "ghostpin",
        &[
            ("sales.csv", "sale_id,amount\n1,10\n2,20\n"),
            ("dataset.toml", "[tables.ghost]\nkey = [\"x\"]\n"),
        ],
    );
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    assert!(
        out.report.warnings.iter().any(|w| w.contains("ghost")),
        "{:?}",
        out.report.warnings
    );
}

#[test]
fn explicit_max_joins_beats_manifest_budget() {
    // Two genuine FKs; the manifest caps discovery at 1 and the explicit
    // option must be able to raise it back.
    // Disjoint id ranges so the only containments are the two true FKs.
    let mut facts = String::from("fact_id,a_id,b_id\n");
    for i in 0..30 {
        facts.push_str(&format!("{i},{},{}\n", 100 + i % 5, 200 + i % 7));
    }
    let a: String = (0..5).map(|i| format!("{},x{i}\n", 100 + i)).collect();
    let b: String = (0..7).map(|i| format!("{},y{i}\n", 200 + i)).collect();
    let files = [
        ("facts.csv", &*facts),
        ("a.csv", &*format!("a_id,name\n{a}")),
        ("b.csv", &*format!("b_id,name\n{b}")),
        ("dataset.toml", "[discovery]\nmax_joins = 1\n"),
    ];

    let fx = Fixture::new("budget_manifest", &files);
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    assert_eq!(out.report.discovered_join_count(), 1);
    assert!(
        out.report
            .warnings
            .iter()
            .any(|w| w.contains("budget") && w.contains("1 viable")),
        "{:?}",
        out.report.warnings
    );

    let fx = Fixture::new("budget_explicit", &files);
    let out = ingest_dir(
        fx.path(),
        &IngestOptions {
            max_discovered_joins: Some(10),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.report.discovered_join_count(), 2);
    assert!(!out.report.warnings.iter().any(|w| w.contains("budget")));
}

#[test]
fn empty_directory_and_unreadable_files_error_cleanly() {
    let fx = Fixture::new("empty", &[("README.md", "not a csv\n")]);
    let err = ingest_dir(fx.path(), &IngestOptions::default()).unwrap_err();
    assert!(matches!(err, IngestError::EmptyDirectory(_)));

    let err = ingest_dir("/nonexistent/cajade/path", &IngestOptions::default()).unwrap_err();
    assert!(matches!(err, IngestError::Io { .. }));
}

#[test]
fn duplicate_header_names_error_with_line() {
    // Strict mode aborts the whole ingestion and pinpoints the line.
    let fx = Fixture::new("dupheader", &[("d.csv", "id,id\n1,2\n")]);
    let strict = IngestOptions {
        strict_types: true,
        ..Default::default()
    };
    let err = ingest_dir(fx.path(), &strict).unwrap_err();
    match err {
        IngestError::Storage {
            source: StorageError::Csv { line, msg },
            ..
        } => {
            assert_eq!(line, 1);
            assert!(msg.contains("duplicate"), "{msg}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn lenient_mode_skips_corrupt_file_and_keeps_the_rest() {
    // Default (lenient) mode: the corrupt-header file is skipped with a
    // warning and the good file still loads.
    let fx = Fixture::new(
        "dupheader_lenient",
        &[("d.csv", "id,id\n1,2\n"), ("ok.csv", "id,v\n1,10\n2,20\n")],
    );
    let out = ingest_dir(fx.path(), &IngestOptions::default()).unwrap();
    assert_eq!(out.report.tables.len(), 1);
    assert_eq!(out.report.tables[0].name, "ok");
    assert!(
        out.report
            .warnings
            .iter()
            .any(|w| w.contains("d.csv") && w.contains("skipped")),
        "{:?}",
        out.report.warnings
    );

    // If every file is corrupt, lenient mode still fails cleanly rather
    // than returning an empty database.
    let fx = Fixture::new("dupheader_all_bad", &[("d.csv", "id,id\n1,2\n")]);
    let err = ingest_dir(fx.path(), &IngestOptions::default()).unwrap_err();
    assert!(matches!(err, IngestError::EmptyDirectory(_)));
}

#[test]
fn lenient_mode_skips_files_that_fail_mid_load() {
    // A mid-file I/O failure (simulated via the fault-injection harness)
    // hits `a.csv` during the typed load; lenient mode skips the table and
    // leaves no partial load behind, strict mode aborts.
    let _guard = cajade_obs::faults::test_guard();
    let files = [
        ("a.csv", "id,v\n1,10\n2,20\n"),
        ("b.csv", "id,v\n1,10\n2,20\n"),
    ];

    let fx = Fixture::new("faultload_lenient", &files);
    cajade_obs::faults::set_plan("ingest.load=error@1").unwrap();
    let out = ingest_dir(fx.path(), &IngestOptions::default());
    cajade_obs::faults::clear();
    let out = out.unwrap();
    assert_eq!(out.report.tables.len(), 1);
    assert_eq!(out.report.tables[0].name, "b");
    assert!(
        out.report
            .warnings
            .iter()
            .any(|w| w.contains("a.csv") && w.contains("skipped")),
        "{:?}",
        out.report.warnings
    );

    let fx = Fixture::new("faultload_strict", &files);
    cajade_obs::faults::set_plan("ingest.load=error@1").unwrap();
    let err = ingest_dir(
        fx.path(),
        &IngestOptions {
            strict_types: true,
            ..Default::default()
        },
    );
    cajade_obs::faults::clear();
    assert!(matches!(err.unwrap_err(), IngestError::Io { .. }));
}
