//! Criterion bench for Fig. 11: Explanation Tables vs. CaJaDE's MineAPT
//! at growing sample sizes (ET grows much faster — the paper's ~50×).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cajade_baselines::{EtConfig, ExplanationTables};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{mine_apt, MiningParams, Question};
use cajade_query::{parse_sql, ProvenanceTable};

fn bench_et_vs_cajade(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 16,
        players_per_team: 6,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    let outcome: Vec<bool> = (0..apt.num_rows)
        .map(|r| pt.group_of[apt.pt_row[r] as usize] == 6)
        .collect();

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for sample in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("et", sample), &sample, |b, &sample| {
            let cfg = EtConfig {
                sample_size: sample,
                num_patterns: 20,
                ..Default::default()
            };
            b.iter(|| ExplanationTables::fit(black_box(&apt), black_box(&outcome), &cfg))
        });
        group.bench_with_input(BenchmarkId::new("cajade", sample), &sample, |b, &sample| {
            let mp = MiningParams {
                lambda_pat_samp: 1.0,
                pat_samp_cap: sample,
                forest_trees: 10,
                ..Default::default()
            };
            b.iter(|| {
                mine_apt(
                    black_box(&apt),
                    black_box(&pt),
                    &Question::TwoPoint { t1: 6, t2: 3 },
                    &mp,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_et_vs_cajade);
criterion_main!(benches);
