//! Cold-vs-warm question latency through the interactive explanation
//! service (the service-layer counterpart of the paper's Fig. 10 runtime
//! breakdown): a cold first question pays provenance + enumeration +
//! materialization + mining; a repeated question is an answer-cache hit;
//! a *new* question on warm caches pays mining only.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cajade_core::{Params, UserQuestion};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_datagen::GeneratedDb;
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn config(answer_cache_bytes: usize) -> ServiceConfig {
    ServiceConfig {
        answer_cache_bytes,
        params: Params::fast(),
        ..ServiceConfig::default()
    }
}

fn question() -> UserQuestion {
    UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")])
}

fn primed_service(gen: &GeneratedDb, answer_cache_bytes: usize) -> ExplanationService {
    let service = ExplanationService::new(config(answer_cache_bytes));
    service.register_database("nba", gen.db.clone(), gen.schema_graph.clone());
    service
}

fn bench_service_warm_cold(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig::scaled(0.05));
    let mut group = c.benchmark_group("service_question_latency");
    group.sample_size(10);

    // Cold path: fresh service, first question pays every stage.
    group.bench_function("cold_first_question", |b| {
        b.iter(|| {
            let service = primed_service(&gen, 64 * 1024 * 1024);
            let session = service.open_session("nba", GSW_SQL).unwrap();
            black_box(session.ask(&question()).unwrap())
        })
    });

    // Warm repeat: the same question again — answer-cache hit, no
    // pipeline stage runs.
    group.bench_function("warm_repeat_question", |b| {
        let service = primed_service(&gen, 64 * 1024 * 1024);
        let session = service.open_session("nba", GSW_SQL).unwrap();
        session.ask(&question()).unwrap();
        b.iter(|| {
            let a = black_box(session.ask(&question()).unwrap());
            assert!(a.answer_cache_hit);
            a
        })
    });

    // Warm new question: answer cache disabled (budget 0) so every
    // iteration re-mines against cached provenance + APTs — the §2.4
    // "second and later questions skip straight to mining" path.
    group.bench_function("warm_new_question_mines_only", |b| {
        let service = primed_service(&gen, 0);
        let session = service.open_session("nba", GSW_SQL).unwrap();
        session.ask(&question()).unwrap();
        b.iter(|| {
            let a = black_box(session.ask(&question()).unwrap());
            assert!(!a.answer_cache_hit && a.provenance_cache_hit);
            assert_eq!(a.apt_cache_misses, 0);
            a
        })
    });

    group.finish();
}

criterion_group!(benches, bench_service_warm_cold);
criterion_main!(benches);
