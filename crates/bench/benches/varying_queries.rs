//! Criterion bench for Fig. 12's shape: end-to-end sessions for a
//! representative NBA and MIMIC workload query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cajade_core::{ExplanationSession, Params, UserQuestion};
use cajade_datagen::{mimic, nba};
use cajade_query::parse_sql;

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("varying_queries");
    group.sample_size(10);

    let nba = nba::generate(nba::NbaConfig {
        seasons: 10,
        games_per_team: 8,
        players_per_team: 6,
        rich_stats: false,
        seed: 1,
    });
    let q_nba = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let mut params = Params::fast();
    params.mining.lambda_f1_samp = 0.3;
    group.bench_function("Q_nba4", |b| {
        b.iter(|| {
            ExplanationSession::new(&nba.db, &nba.schema_graph, params.clone())
                .explain(
                    black_box(&q_nba),
                    &UserQuestion::two_point(
                        &[("season_name", "2015-16")],
                        &[("season_name", "2012-13")],
                    ),
                )
                .unwrap()
        })
    });

    let mimic = mimic::generate(mimic::MimicConfig {
        admissions: 1500,
        seed: 11,
    });
    let q_mimic = parse_sql(
        "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
         FROM admissions GROUP BY insurance",
    )
    .unwrap();
    group.bench_function("Q_mimic4", |b| {
        b.iter(|| {
            ExplanationSession::new(&mimic.db, &mimic.schema_graph, params.clone())
                .explain(
                    black_box(&q_mimic),
                    &UserQuestion::two_point(
                        &[("insurance", "Medicare")],
                        &[("insurance", "Private")],
                    ),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
