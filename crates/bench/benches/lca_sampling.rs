//! Criterion bench for Fig. 10b–e: LCA candidate generation is quadratic
//! in the sample size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cajade_datagen::nba::{self, NbaConfig};
use cajade_graph::{Apt, JoinGraph};
use cajade_mining::lca_candidates;
use cajade_query::{parse_sql, ProvenanceTable};

fn bench_lca_sampling(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 20,
        players_per_team: 8,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS c, s.season_name \
         FROM player_game_stats pgs, game g, season s \
         WHERE pgs.game_date = g.game_date AND pgs.home_id = g.home_id \
           AND s.season_id = g.season_id \
         GROUP BY s.season_name",
    )
    .unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    let cats: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Categorical)
        .collect();

    let mut group = c.benchmark_group("lca_sample_size");
    for n in [50usize, 100, 200, 400] {
        let rows: Vec<u32> = (0..n.min(apt.num_rows) as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &rows, |b, rows| {
            b.iter(|| lca_candidates(black_box(&apt), black_box(rows), black_box(&cats)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lca_sampling);
criterion_main!(benches);
