//! Criterion bench for the Fig.-7 ablation: MineAPT with and without
//! feature selection on a fixed APT.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cajade_datagen::nba::{self, NbaConfig};
use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{mine_apt, MiningParams, Question};
use cajade_query::{parse_sql, ProvenanceTable};

fn bench_feature_selection(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 16,
        players_per_team: 8,
        rich_stats: true,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT AVG(assists) AS avg_ast, s.season_name \
         FROM team_game_stats tgs, game g, team t, season s \
         WHERE s.season_id = g.season_id AND tgs.game_date = g.game_date \
           AND tgs.home_id = g.home_id AND tgs.team_id = t.team_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    let question = Question::TwoPoint { t1: 4, t2: 5 };

    let with_fs = MiningParams {
        forest_trees: 10,
        ..Default::default()
    };
    let without_fs = MiningParams {
        feature_selection: false,
        ..with_fs.clone()
    };

    let mut group = c.benchmark_group("mine_apt");
    group.sample_size(10);
    group.bench_function("with_feature_selection", |b| {
        b.iter(|| mine_apt(black_box(&apt), black_box(&pt), &question, &with_fs))
    });
    group.bench_function("without_feature_selection", |b| {
        b.iter(|| mine_apt(black_box(&apt), black_box(&pt), &question, &without_fs))
    });
    group.finish();
}

criterion_group!(benches, bench_feature_selection);
criterion_main!(benches);
