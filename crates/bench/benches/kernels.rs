//! Criterion micro-benchmarks for the substrate kernels: hash join,
//! group-by aggregation, pattern matching, LCA candidate generation, and
//! random-forest training.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cajade_datagen::nba::{self, NbaConfig};
use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{lca_candidates, PatValue, Pattern, Pred, PredOp, Scorer};
use cajade_ml::{FeatureColumn, RandomForest, RandomForestConfig};
use cajade_query::{execute, parse_sql, ProvenanceTable};

fn bench_join_and_aggregate(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 20,
        players_per_team: 8,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS c, s.season_name \
         FROM player_game_stats pgs, game g, season s \
         WHERE pgs.game_date = g.game_date AND pgs.home_id = g.home_id \
           AND s.season_id = g.season_id \
         GROUP BY s.season_name",
    )
    .unwrap();
    c.bench_function("hash_join_3way_group_by", |b| {
        b.iter(|| execute(black_box(&gen.db), black_box(&q)).unwrap())
    });
}

fn bench_provenance(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 20,
        players_per_team: 8,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    c.bench_function("provenance_capture", |b| {
        b.iter(|| ProvenanceTable::compute(black_box(&gen.db), black_box(&q)).unwrap())
    });
}

fn pattern_fixture() -> (cajade_datagen::GeneratedDb, ProvenanceTable, Apt) {
    let gen = nba::generate(NbaConfig {
        seasons: 10,
        games_per_team: 20,
        players_per_team: 8,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let apt = Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap();
    (gen, pt, apt)
}

fn bench_pattern_scoring(c: &mut Criterion) {
    let (_gen, pt, apt) = pattern_fixture();
    let pts_field = apt.field_index("prov_game_home__points").unwrap();
    let pattern = Pattern::from_preds(vec![(
        pts_field,
        Pred {
            op: PredOp::Ge,
            value: PatValue::Int(105),
        },
    )]);
    let scorer = Scorer::exact(&apt, &pt);
    c.bench_function("pattern_score_definition7", |b| {
        b.iter(|| scorer.score(black_box(&pattern), 0, Some(1)))
    });
}

fn bench_lca(c: &mut Criterion) {
    let (_gen, _pt, apt) = pattern_fixture();
    let cats: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Categorical)
        .collect();
    let mut group = c.benchmark_group("lca_candidates");
    for n in [64usize, 128, 256] {
        let rows: Vec<u32> = (0..apt.num_rows.min(n) as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &rows, |b, rows| {
            b.iter(|| lca_candidates(black_box(&apt), black_box(rows), black_box(&cats)))
        });
    }
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let n = 2000;
    let features = vec![
        FeatureColumn::Numeric((0..n).map(|i| (i % 97) as f64).collect()),
        FeatureColumn::Numeric((0..n).map(|i| (i % 13) as f64).collect()),
        FeatureColumn::Categorical((0..n).map(|i| (i % 7) as u32).collect()),
    ];
    let labels: Vec<bool> = (0..n).map(|i| (i % 97) > 48).collect();
    c.bench_function("random_forest_fit_2k_rows", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&features),
                black_box(&labels),
                &RandomForestConfig {
                    num_trees: 10,
                    ..Default::default()
                },
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_join_and_aggregate,
        bench_provenance,
        bench_pattern_scoring,
        bench_lca,
        bench_forest
);
criterion_main!(benches);
