//! Criterion bench for Fig. 9's shape: end-to-end session at two database
//! scales (the full sweep lives in `paper fig9`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cajade_core::{ExplanationSession, Params, UserQuestion};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_query::parse_sql;

fn bench_session_scales(c: &mut Criterion) {
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let mut group = c.benchmark_group("session_scale");
    group.sample_size(10);
    for gpt in [8usize, 16] {
        let gen = nba::generate(NbaConfig {
            seasons: 10,
            games_per_team: gpt,
            players_per_team: 6,
            rich_stats: false,
            seed: 1,
        });
        let mut params = Params::fast();
        params.mining.lambda_f1_samp = 0.3;
        group.bench_with_input(BenchmarkId::from_parameter(gpt), &gen, |b, gen| {
            b.iter(|| {
                ExplanationSession::new(&gen.db, &gen.schema_graph, params.clone())
                    .explain(
                        black_box(&q),
                        &UserQuestion::two_point(
                            &[("season_name", "2015-16")],
                            &[("season_name", "2012-13")],
                        ),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_scales);
criterion_main!(benches);
