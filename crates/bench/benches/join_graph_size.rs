//! Criterion bench for Fig. 8: join-graph enumeration cost as λ#edges
//! grows (enumeration alone; full-session numbers come from `paper fig8`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cajade_datagen::nba::{self, NbaConfig};
use cajade_graph::{enumerate_join_graphs, EnumConfig};
use cajade_query::{parse_sql, ProvenanceTable};

fn bench_enumeration(c: &mut Criterion) {
    let gen = nba::generate(NbaConfig {
        seasons: 6,
        games_per_team: 8,
        players_per_team: 6,
        rich_stats: false,
        seed: 1,
    });
    let q = parse_sql(
        "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
         GROUP BY s.season_name",
    )
    .unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();

    let mut group = c.benchmark_group("enumerate_join_graphs");
    for edges in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, &edges| {
            let cfg = EnumConfig {
                max_edges: edges,
                ..Default::default()
            };
            b.iter(|| {
                enumerate_join_graphs(
                    black_box(&gen.schema_graph),
                    black_box(&gen.db),
                    black_box(&q),
                    pt.num_rows,
                    &cfg,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
