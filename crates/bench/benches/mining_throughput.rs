//! Mining hot-loop throughput: scalar `Scorer` vs the columnar bitmap
//! `ScoreIndex` on the NBA scale-0.05 workload — patterns scored per
//! second on the largest APT, plus cold-ask end-to-end latency through
//! the service with each engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cajade_bench::workloads::nba_db;
use cajade_core::{Params, UserQuestion};
use cajade_datagen::GeneratedDb;
use cajade_graph::Apt;
use cajade_mining::{lca_candidates, Pattern, Question, ScoreEngine, ScoreIndex, Scorer};
use cajade_query::ProvenanceTable;
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

/// The largest valid APT of the GSW query plus a candidate pattern set
/// (LCA candidates over all rows, numeric refinements included via the
/// miner's own fragment thresholds would complicate the fixture; the
/// candidate mix here is representative of the ranking pass).
fn scoring_fixture(gen: &GeneratedDb) -> (Apt, ProvenanceTable, Vec<Pattern>) {
    let q = cajade_query::parse_sql(GSW_SQL).unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let params = Params::fast();
    let graphs = cajade_graph::enumerate_join_graphs(
        &gen.schema_graph,
        &gen.db,
        &q,
        pt.num_rows,
        &cajade_graph::EnumConfig {
            max_edges: params.max_edges,
            max_cost: params.max_cost,
            check_pk_coverage: params.check_pk_coverage,
            include_pt_only: params.include_pt_only,
        },
    )
    .unwrap();
    let apt = graphs
        .iter()
        .filter(|g| g.valid)
        .map(|eg| Apt::materialize(&gen.db, &pt, &eg.graph).unwrap())
        .max_by_key(|a| a.num_rows)
        .expect("at least one valid graph");
    let cat_fields: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Categorical)
        .take(4)
        .collect();
    let sample: Vec<u32> = (0..apt.num_rows.min(400) as u32).collect();
    let cat_pats = lca_candidates(&apt, &sample, &cat_fields);
    // Extend with the refinement shapes the BFS actually scores: numeric
    // thresholds alone and combined with each categorical candidate.
    let num_fields: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Numeric)
        .take(4)
        .collect();
    let mut patterns = cat_pats.clone();
    for &f in &num_fields {
        for c in cajade_mining::fragments::fragment_boundaries(&apt, f, None, 6) {
            for op in [cajade_mining::PredOp::Le, cajade_mining::PredOp::Ge] {
                let pred = cajade_mining::Pred {
                    op,
                    value: cajade_mining::PatValue::Float(c.to_bits()),
                };
                patterns.push(Pattern::from_preds(vec![(f, pred)]));
                for base in &cat_pats {
                    if base.is_free(f) {
                        patterns.push(base.refine(f, pred));
                    }
                }
            }
        }
    }
    (apt, pt, patterns)
}

fn bench_mining_throughput(c: &mut Criterion) {
    let gen = nba_db(0.05);
    let (apt, pt, patterns) = scoring_fixture(&gen);
    let question = Question::TwoPoint { t1: 0, t2: 1 };
    let directions = question.directions();

    let mut group = c.benchmark_group("pattern_scoring");
    group.bench_function("scalar_scorer", |b| {
        let scorer = Scorer::exact(&apt, &pt);
        b.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                for &(t, s) in &directions {
                    acc += scorer.score(p, t, s).tp;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("vectorized_index", |b| {
        let index = ScoreIndex::exact(&apt, &pt);
        b.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                for &(t, s) in &directions {
                    acc += index.score(p, t, s).tp;
                }
            }
            black_box(acc)
        })
    });
    // The refinement-BFS shape: one mask build per pattern, then
    // incremental AND + popcount per direction.
    group.bench_function("vectorized_masks", |b| {
        let index = ScoreIndex::exact(&apt, &pt);
        let masks: Vec<_> = patterns.iter().map(|p| index.pattern_mask(p)).collect();
        b.iter(|| {
            let mut acc = 0usize;
            for m in &masks {
                for &(t, s) in &directions {
                    acc += index.score_mask(m, t, s).tp;
                }
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("cold_ask_end_to_end");
    group.sample_size(10);
    for engine in [ScoreEngine::Scalar, ScoreEngine::Vectorized] {
        let name = match engine {
            ScoreEngine::Scalar => "scalar",
            ScoreEngine::Vectorized => "vectorized",
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut params = Params::fast();
                params.mining.engine = engine;
                let service = ExplanationService::new(ServiceConfig {
                    params,
                    ..ServiceConfig::default()
                });
                service.register_database("nba", gen.db.clone(), gen.schema_graph.clone());
                let session = service.open_session("nba", GSW_SQL).unwrap();
                let q = UserQuestion::two_point(
                    &[("season_name", "2015-16")],
                    &[("season_name", "2012-13")],
                );
                black_box(session.ask(&q).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mining_throughput);
criterion_main!(benches);
