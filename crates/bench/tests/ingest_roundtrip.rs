//! The ISSUE-4 acceptance test: the CSV-export→ingest round-trip of NBA
//! scale 0.05 recovers a schema graph whose enumerated join graphs match
//! the declared-schema run.
//!
//! The exported `dataset.toml` pins keys, kinds, and only the joins
//! containment discovery cannot express (composite conditions and the
//! lineup self-join); every single-column foreign key must be recovered
//! by discovery — with no spurious extras — for the enumerations to
//! agree.

use cajade_bench::ingest_workload::{enumerated_keys, nba_round_trip};

#[test]
fn nba_round_trip_reaches_join_graph_parity() {
    let (rt, _tmp) = nba_round_trip(0.05);

    // Same relations, same row counts.
    assert_eq!(
        {
            let mut names = rt.declared.db.table_names();
            names.sort_unstable();
            names
        },
        rt.ingested.db.table_names(),
        "ingest loads one table per CSV file, name-sorted"
    );
    for t in rt.declared.db.tables() {
        let loaded = rt.ingested.db.table(t.name()).unwrap();
        assert_eq!(loaded.num_rows(), t.num_rows(), "{}", t.name());
        assert_eq!(
            loaded.schema().primary_key(),
            t.schema().primary_key(),
            "{}: pinned keys survive the round trip",
            t.name()
        );
    }

    // Join-graph parity: the set of valid enumerated join graphs for the
    // workload query must be identical under both schema graphs.
    let declared = enumerated_keys(&rt.declared.db, &rt.declared.schema_graph, 2);
    let ingested = enumerated_keys(&rt.ingested.db, &rt.ingested.schema_graph, 2);
    let missing: Vec<_> = declared.difference(&ingested).collect();
    let extra: Vec<_> = ingested.difference(&declared).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "join-graph parity broken:\n  missing ({}): {missing:#?}\n  extra ({}): {extra:#?}\n  report:\n{}",
        missing.len(),
        extra.len(),
        rt.ingested.report.render()
    );
    assert!(!declared.is_empty());

    // Discovery did real work: the single-column FKs came from it, not
    // the manifest.
    assert!(
        rt.ingested.report.discovered_join_count() >= 8,
        "expected the NBA single-column FKs to be discovered:\n{}",
        rt.ingested.report.render()
    );
}
