//! Cross-scale answer-identity regression (ISSUE 8 satellite): §5
//! duplicate-up must not change *what* the miner finds, only how much
//! evidence supports it — otherwise the scale sweep's per-phase curves
//! would measure changing workloads, not growing ones.
//!
//! What is pinned, and on which corpus:
//!
//! * **Synthetic corpus, ×1 vs ×2 duplicate** — ranked top-k is
//!   shape-identical (same predicates, join graphs, primary roles, and
//!   F-scores to 12 decimals) and every support count (`tp`, `a1`, `fp`,
//!   `a2`) scales by exactly the factor, on both the provenance-only
//!   pipeline and a full join-mining pipeline. The corpora are sized so
//!   every table stays at or below the 512-row statistics sample cap
//!   even after duplication: column statistics and fragment boundaries
//!   then read the duplicated value multiset exhaustively — exactly the
//!   base multiset repeated — so thresholds cannot drift.
//! * **NBA tiny, each scale separately** — scalar and vectorized scoring
//!   engines agree byte-for-byte, and the warm path (provenance cache
//!   hit, APTs reused) returns the cold answer verbatim.
//!
//! Three structural reasons full cross-scale identity cannot be pinned
//! on arbitrary corpora (each observed empirically while building this
//! test, all by design rather than by bug):
//!
//! 1. **Identifier remapping.** `duplicate_scale` remaps PK/FK columns
//!    per copy precisely so the copies do not cross-join. The tiny NBA
//!    top-k saturates at F = 1.0 with surrogate-key predicates
//!    (`prov_season_season__id=4`, `prov_team_team__id=1`, …); such a
//!    pattern keeps only `1/factor` of its recall after duplication and
//!    falls out of the top-k.
//! 2. **Strided statistics above the sample cap.** The ≤512-position
//!    stride reads a different row subset from a duplicated table than
//!    from its base, so numeric refinement thresholds may shift by one
//!    sample step. Capping every table at 512 rows (as here) removes
//!    this source.
//! 3. **Feature-selection near-ties.** The forest trainers' split gains
//!    are ratio-identical on duplicated data but not bit-identical, so
//!    which of several *near-tied* correlated columns gets selected can
//!    flip with the row count (the default synthetic corpus plants
//!    near-duplicate numeric columns, which tickles exactly this). The
//!    join-pipeline case below uses one dimension with one numeric
//!    column so every candidate feature is well separated.

use cajade_core::{Params, ScoreEngine, UserQuestion};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_datagen::scale::duplicate_scale;
use cajade_datagen::synth::{self, SynthConfig};
use cajade_datagen::GeneratedDb;
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

/// Scale-invariant fingerprint of one ranked explanation: everything but
/// the support counts.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Shape {
    pattern: String,
    graph: String,
    primary: String,
    f_score: String,
}

/// One ask's answer: ranked shapes, raw support counts, and fully
/// rendered lines (shape + supports) for byte-level comparisons.
struct Answer {
    shapes: Vec<Shape>,
    supports: Vec<(u64, u64, u64, u64)>,
    rendered: Vec<String>,
}

fn ask(
    gen: &GeneratedDb,
    sql: &str,
    question: &UserQuestion,
    engine: ScoreEngine,
    warm_with: Option<&UserQuestion>,
) -> Answer {
    ask_with(gen, sql, question, engine, warm_with, Params::fast())
}

fn ask_with(
    gen: &GeneratedDb,
    sql: &str,
    question: &UserQuestion,
    engine: ScoreEngine,
    warm_with: Option<&UserQuestion>,
    mut params: Params,
) -> Answer {
    params.mining.engine = engine;
    let service = ExplanationService::new(ServiceConfig {
        params,
        ..ServiceConfig::default()
    });
    service.register_database("db", gen.db.clone(), gen.schema_graph.clone());
    let session = service.open_session("db", sql).unwrap();
    if let Some(other) = warm_with {
        // Prime provenance + APT caches with a different question, then
        // assert the ask under test takes the warm path.
        session.ask(other).unwrap();
    }
    let a = session.ask(question).unwrap();
    if warm_with.is_some() {
        assert!(
            a.provenance_cache_hit,
            "warm ask missed the provenance cache"
        );
        assert_eq!(a.apt_cache_misses, 0, "warm ask re-materialized APTs");
    }
    let explanations = &a.result.explanations;
    assert!(!explanations.is_empty(), "no explanations mined");
    Answer {
        shapes: explanations
            .iter()
            .map(|e| Shape {
                pattern: e.pattern_desc.clone(),
                graph: e.graph_structure.clone(),
                primary: format!("{:?}", e.primary),
                f_score: format!("{:.12}", e.metrics.f_score),
            })
            .collect(),
        supports: explanations
            .iter()
            .map(|e| {
                (
                    e.metrics.tp as u64,
                    e.metrics.a1 as u64,
                    e.metrics.fp as u64,
                    e.metrics.a2 as u64,
                )
            })
            .collect(),
        rendered: explanations
            .iter()
            .map(|e| {
                format!(
                    "{}|{}|{:?}|{:?}|{:.12}",
                    e.pattern_desc,
                    e.graph_structure,
                    e.primary,
                    (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2),
                    e.metrics.f_score
                )
            })
            .collect(),
    }
}

/// Synth corpus sized to keep every table ≤ 512 rows after a ×2
/// duplicate: fact 240 → 480, dims 120 → 240.
fn capped_synth() -> GeneratedDb {
    synth::generate(&SynthConfig {
        rows: 240,
        fanout: 2,
        ..SynthConfig::small()
    })
}

fn synth_question() -> UserQuestion {
    UserQuestion::two_point(&[("grp", "g0")], &[("grp", "g1")])
}

/// Asserts shape identity and exact ×`factor` support scaling between a
/// base corpus and its duplicate under `params`.
fn assert_scale_invariant(base: &GeneratedDb, factor: usize, params: Params) {
    let duplicated = duplicate_scale(base, factor);
    let q = synth_question();
    let cold_1 = ask_with(
        base,
        synth::SYNTH_SQL,
        &q,
        ScoreEngine::Vectorized,
        None,
        params.clone(),
    );
    let cold_n = ask_with(
        &duplicated,
        synth::SYNTH_SQL,
        &q,
        ScoreEngine::Vectorized,
        None,
        params,
    );

    // Ranked shapes identical across scales: same patterns, same graphs,
    // same roles, same F-scores, same order.
    assert_eq!(
        cold_1.shapes, cold_n.shapes,
        "duplication changed the ranked explanations"
    );
    // Support counts scale by exactly the duplication factor.
    let f = factor as u64;
    for (i, (s1, sn)) in cold_1.supports.iter().zip(&cold_n.supports).enumerate() {
        assert_eq!(
            (s1.0 * f, s1.1 * f, s1.2 * f, s1.3 * f),
            *sn,
            "rank {i}: supports did not scale by exactly {factor}"
        );
    }
}

/// Provenance-only pipeline (λ#edges = 0): no join-graph selection, no
/// cross-dimension feature competition — the duplicate must reproduce
/// the ranked list verbatim.
#[test]
fn duplication_preserves_the_ranked_top_k_pt_only() {
    let mut params = Params::fast();
    params.max_edges = 0;
    assert_scale_invariant(&capped_synth(), 2, params);
}

/// Full join pipeline: join-graph enumeration, APT materialization,
/// fragments, candidate generation, refinement, and global ranking must
/// all be scale-invariant together. Identifier attributes are banned
/// (they are remapped per copy — variance source 1) and feature
/// selection is disabled (its forest importance ranking is the one
/// data-dependent choice that is not exactly scale-invariant — variance
/// source 3); everything that remains is deterministic arithmetic over
/// exhaustive ≤512-row statistics and must reproduce verbatim.
#[test]
fn duplication_preserves_the_ranked_top_k_with_joins() {
    let gen = synth::generate(&SynthConfig {
        rows: 240,
        fanout: 2,
        tables: 1,
        columns: 1,
        ..SynthConfig::small()
    });
    let params = Params::fast()
        .with_feature_selection(false)
        .with_banned_attrs(&["_id"]);
    assert_scale_invariant(&gen, 2, params);
}

#[test]
fn scalar_and_vectorized_engines_agree_at_every_scale() {
    let nba_base = nba::generate(NbaConfig::tiny());
    let nba_q =
        UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")]);
    let synth_base = capped_synth();
    let synth_doubled = duplicate_scale(&synth_base, 2);
    let synth_q = synth_question();
    let cases: [(&GeneratedDb, &str, &UserQuestion); 3] = [
        (&nba_base, GSW_SQL, &nba_q),
        (&synth_base, synth::SYNTH_SQL, &synth_q),
        (&synth_doubled, synth::SYNTH_SQL, &synth_q),
    ];
    for (gen, sql, q) in cases {
        let scalar = ask(gen, sql, q, ScoreEngine::Scalar, None);
        let vector = ask(gen, sql, q, ScoreEngine::Vectorized, None);
        assert_eq!(
            scalar.rendered, vector.rendered,
            "scalar vs vectorized diverged"
        );
    }
}

#[test]
fn warm_asks_match_cold_asks_across_scales() {
    let base = nba::generate(NbaConfig::tiny());
    let q = UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")]);
    let other =
        UserQuestion::two_point(&[("season_name", "2014-15")], &[("season_name", "2012-13")]);
    for gen in [&base, &duplicate_scale(&base, 2)] {
        let cold = ask(gen, GSW_SQL, &q, ScoreEngine::Vectorized, None);
        let warm = ask(gen, GSW_SQL, &q, ScoreEngine::Vectorized, Some(&other));
        assert_eq!(cold.rendered, warm.rendered, "warm path changed the answer");
    }
}
