//! Property tests over the synthetic scale-sweep corpus family
//! ([`cajade_datagen::synth`]): for random shapes drawn from the
//! generator's parameter space,
//!
//! 1. the CSV export→ingest round-trip reaches **join-graph parity** —
//!    containment discovery on the re-ingested corpus enumerates exactly
//!    the join graphs the declared schema does;
//! 2. every primary key is unique (fact ids, and dimension ids globally
//!    across tables thanks to the disjoint key ranges);
//! 3. `duplicate_scale(·, 2)` exactly doubles every table's row count
//!    and remaps identifier columns so the doubled keys are still unique
//!    and the original keys survive as a subset.
//!
//! Cases are deliberately few (each one does real file I/O for the
//! round-trip); the runner is seeded, so failures reproduce.

use std::collections::HashSet;

use proptest::prelude::*;
use proptest::test_runner::{ProptestConfig, TestRunner};

use cajade_bench::ingest_workload::{enumerated_keys_for, round_trip, TempDir};
use cajade_datagen::scale::duplicate_scale;
use cajade_datagen::synth::{generate, SynthConfig, SYNTH_SQL};

/// Distinct values of column `col` across all rows of table `name`,
/// panicking on a duplicate — the uniqueness half of the key checks.
fn unique_key_set(
    db: &cajade_storage::Database,
    name: &str,
    col: usize,
    seen: &mut HashSet<i64>,
) -> usize {
    let t = db.table(name).unwrap();
    for r in 0..t.num_rows() {
        let id = t.value(r, col).as_i64().unwrap();
        assert!(seen.insert(id), "duplicate key {id} in {name}");
    }
    t.num_rows()
}

#[test]
fn prop_synth_corpora_round_trip_and_duplicate_cleanly() {
    let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
    let strategy = (
        200usize..1200, // rows
        1usize..4,      // dimension tables
        1usize..5,      // numeric columns per dimension
        1usize..16,     // fanout
        1usize..20,     // label cardinality
        0u64..1_000,    // seed
    );
    runner
        .run(
            &strategy,
            |(rows, tables, columns, fanout, cardinality, seed)| {
                let cfg = SynthConfig {
                    rows,
                    tables,
                    columns,
                    fanout,
                    cardinality,
                    seed,
                };
                let gen = generate(&cfg);

                // (2) Keys unique: fact PK alone, dim PKs globally (the
                // disjoint ranges make cross-table collisions impossible,
                // so one set covers both properties).
                let mut fact_keys = HashSet::new();
                unique_key_set(&gen.db, "fact", 0, &mut fact_keys);
                let mut dim_keys = HashSet::new();
                let dim_rows = (rows / fanout).max(1);
                for d in 0..tables {
                    let n = unique_key_set(&gen.db, &format!("dim{d}"), 0, &mut dim_keys);
                    prop_assert_eq!(n, dim_rows);
                }

                // (3) duplicate_scale(·, 2) doubles rows, remaps keys.
                let doubled = duplicate_scale(&gen, 2);
                for (orig, dup) in gen.db.tables().iter().zip(doubled.db.tables()) {
                    // Every table must exactly double.
                    prop_assert_eq!(dup.num_rows(), 2 * orig.num_rows());
                }
                let mut doubled_fact = HashSet::new();
                unique_key_set(&doubled.db, "fact", 0, &mut doubled_fact);
                prop_assert_eq!(doubled_fact.len(), 2 * fact_keys.len());
                prop_assert!(
                    fact_keys.is_subset(&doubled_fact),
                    "copy 0 must preserve the original keys"
                );
                let mut doubled_dims = HashSet::new();
                for d in 0..tables {
                    unique_key_set(&doubled.db, &format!("dim{d}"), 0, &mut doubled_dims);
                }
                prop_assert_eq!(doubled_dims.len(), 2 * dim_keys.len());

                // (1) Round-trip join-graph parity. The declared keys are
                // computed first: `round_trip` consumes the corpus.
                let declared_keys = enumerated_keys_for(&gen.db, &gen.schema_graph, SYNTH_SQL, 2);
                prop_assert!(
                    !declared_keys.is_empty(),
                    "declared schema enumerates no join graphs"
                );
                let dir = TempDir::new("cajade_synth_roundtrip");
                let rt = round_trip(gen, dir.path());
                let ingested_keys =
                    enumerated_keys_for(&rt.ingested.db, &rt.ingested.schema_graph, SYNTH_SQL, 2);
                // The failing (rows, tables, …) tuple is reported by the
                // runner itself, so a bare equality suffices here.
                prop_assert_eq!(declared_keys, ingested_keys);
                Ok(())
            },
        )
        .unwrap();
}
