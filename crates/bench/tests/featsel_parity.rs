//! Feature-selection trainer parity (ISSUE 8 satellite): the scale
//! sweep's `featsel_topk_identical: false` finding, investigated and
//! pinned at its true contract.
//!
//! The two forest trainers ([`FeatSelEngine::Histogram`] and
//! [`FeatSelEngine::FloatMatrix`]) answer the same question — "which
//! attributes best separate the user question's groups" — but through
//! different arithmetic: binned gain estimates vs exact split points.
//! On correlated attribute families (NBA's points/possessions/percentage
//! columns move together) the trainers legitimately rank different
//! members of a family on top, so the *selected attribute sets* and
//! hence the mined top-k pattern lists cannot be pinned bit-identical
//! across trainers — the attributes named in the patterns differ even
//! when every score agrees. That is why this is a distribution test and
//! not a rendering test.
//!
//! What must hold — and is asserted here:
//!
//! 1. the sorted top-k **F-score distribution** (12 decimals) is
//!    identical across trainers: substituting one correlated attribute
//!    for another must not change how well the top-k explains the
//!    question;
//! 2. each trainer is **deterministic**: two cold asks render
//!    byte-identical ranked lists, so any cross-trainer difference is a
//!    trainer property, not run-to-run noise (the global ranking's
//!    deterministic total order — F-score desc, then fewer predicates,
//!    then lexicographic pattern — is what makes this reproducible);
//! 3. with feature selection **disabled** the trainer knob is inert:
//!    rendered explanations are byte-identical whatever engine is
//!    configured.

use cajade_core::{FeatSelEngine, Params, UserQuestion};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_datagen::synth::{self, SynthConfig};
use cajade_datagen::GeneratedDb;
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

/// One cold ask: (sorted F-scores at 12 decimals, fully rendered ranked
/// list).
fn cold_ask(
    gen: &GeneratedDb,
    sql: &str,
    question: &UserQuestion,
    featsel: FeatSelEngine,
    selection_on: bool,
) -> (Vec<String>, Vec<String>) {
    let mut params = Params::fast();
    params.mining.featsel_engine = featsel;
    params.mining.feature_selection = selection_on;
    let service = ExplanationService::new(ServiceConfig {
        params,
        ..ServiceConfig::default()
    });
    service.register_database("db", gen.db.clone(), gen.schema_graph.clone());
    let session = service.open_session("db", sql).unwrap();
    let a = session.ask(question).unwrap();
    assert!(!a.result.explanations.is_empty());
    let mut f_scores: Vec<String> = a
        .result
        .explanations
        .iter()
        .map(|e| format!("{:.12}", e.metrics.f_score))
        .collect();
    f_scores.sort();
    let rendered = a
        .result
        .explanations
        .iter()
        .map(|e| e.render_line())
        .collect();
    (f_scores, rendered)
}

#[test]
fn trainers_agree_on_the_top_k_f_score_distribution() {
    let gen = nba::generate(NbaConfig::tiny());
    let q = UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")]);
    let (hist_f, hist_rendered) = cold_ask(&gen, GSW_SQL, &q, FeatSelEngine::Histogram, true);
    let (float_f, float_rendered) = cold_ask(&gen, GSW_SQL, &q, FeatSelEngine::FloatMatrix, true);

    // (2) Determinism per trainer: a second cold ask reproduces the
    // ranked list byte-for-byte.
    let (_, hist_again) = cold_ask(&gen, GSW_SQL, &q, FeatSelEngine::Histogram, true);
    assert_eq!(
        hist_rendered, hist_again,
        "Histogram trainer nondeterministic"
    );
    let (_, float_again) = cold_ask(&gen, GSW_SQL, &q, FeatSelEngine::FloatMatrix, true);
    assert_eq!(
        float_rendered, float_again,
        "FloatMatrix trainer nondeterministic"
    );

    // (1) The top-k F-score distribution is trainer-invariant.
    assert_eq!(
        hist_f,
        float_f,
        "trainers disagree on the top-k F-score distribution:\n\
         histogram list:\n  {}\nfloat-matrix list:\n  {}",
        hist_rendered.join("\n  "),
        float_rendered.join("\n  ")
    );
}

#[test]
fn trainer_knob_is_inert_without_feature_selection() {
    // The small synthetic corpus keeps the no-selection ask cheap (every
    // attribute becomes a mining candidate when selection is off).
    let gen = synth::generate(&SynthConfig {
        rows: 240,
        fanout: 2,
        ..SynthConfig::small()
    });
    let q = UserQuestion::two_point(&[("grp", "g0")], &[("grp", "g1")]);
    // (3) `feature_selection: false` must make the engine choice
    // unobservable end to end.
    let (_, hist_off) = cold_ask(&gen, synth::SYNTH_SQL, &q, FeatSelEngine::Histogram, false);
    let (_, float_off) = cold_ask(
        &gen,
        synth::SYNTH_SQL,
        &q,
        FeatSelEngine::FloatMatrix,
        false,
    );
    assert_eq!(hist_off, float_off);
}
