//! The paper's query workload (Table 2 / §5.7 SQL listings) and
//! case-study user questions (Tables 4 and 6), plus dataset constructors
//! with harness-level scale control.

use cajade_datagen::mimic::{self, MimicConfig};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_datagen::GeneratedDb;
use cajade_query::{parse_sql, Query};

/// Harness scale: the paper's scale-1.0 datasets take minutes per
/// experiment on its server; the harness defaults to a quarter-scale base
/// so the whole suite runs on a laptop, with `--full` restoring
/// paper-scale. Runtime *shape* is preserved either way.
#[derive(Debug, Clone, Copy)]
pub struct HarnessScale(pub f64);

impl Default for HarnessScale {
    fn default() -> Self {
        HarnessScale(0.25)
    }
}

/// Generates the NBA database at `scale × paper-scale`.
pub fn nba_db(scale: f64) -> GeneratedDb {
    nba::generate(NbaConfig {
        rich_stats: true,
        ..NbaConfig::scaled(scale)
    })
}

/// Generates the MIMIC database at `scale × paper-scale`.
pub fn mimic_db(scale: f64) -> GeneratedDb {
    mimic::generate(MimicConfig::scaled(scale))
}

/// One workload query: id, description, SQL.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper id, e.g. `Q_nba1`.
    pub id: &'static str,
    /// Table-2 description.
    pub description: &'static str,
    /// SQL text (against the generators' schemas).
    pub sql: &'static str,
}

impl Workload {
    /// Parses the workload's SQL.
    pub fn query(&self) -> Query {
        parse_sql(self.sql).unwrap_or_else(|e| panic!("{}: {e}", self.id))
    }
}

/// The five NBA workload queries (Table 2 / §6.1).
pub fn nba_queries() -> Vec<Workload> {
    vec![
        Workload {
            id: "Q_nba1",
            description: "Average points per season for Draymond Green",
            sql: "SELECT AVG(points) AS avg_pts, s.season_name \
                  FROM player p, player_game_stats pgs, game g, season s \
                  WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
                    AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
                    AND p.player_name = 'Draymond Green' \
                  GROUP BY s.season_name",
        },
        Workload {
            id: "Q_nba2",
            description: "GSW average assists over the years",
            sql: "SELECT AVG(assists) AS avg_ast, s.season_name \
                  FROM team_game_stats tgs, game g, team t, season s \
                  WHERE s.season_id = g.season_id AND tgs.game_date = g.game_date \
                    AND tgs.home_id = g.home_id AND tgs.team_id = t.team_id \
                    AND t.team = 'GSW' \
                  GROUP BY s.season_name",
        },
        Workload {
            id: "Q_nba3",
            description: "Average points per season for LeBron James",
            sql: "SELECT AVG(points) AS avg_pts, s.season_name \
                  FROM player p, player_game_stats pgs, game g, season s \
                  WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
                    AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
                    AND p.player_name = 'LeBron James' \
                  GROUP BY s.season_name",
        },
        Workload {
            id: "Q_nba4",
            description: "GSW wins over the years",
            sql: "SELECT COUNT(*) AS win, s.season_name \
                  FROM team t, game g, season s \
                  WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
                    AND t.team = 'GSW' \
                  GROUP BY s.season_name",
        },
        Workload {
            id: "Q_nba5",
            description: "Average points per season for Jimmy Butler",
            sql: "SELECT AVG(points) AS avg_pts, s.season_name \
                  FROM player p, player_game_stats pgs, game g, season s \
                  WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
                    AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
                    AND p.player_name = 'Jimmy Butler' \
                  GROUP BY s.season_name",
        },
    ]
}

/// The five MIMIC workload queries (Table 2 / §6.2).
pub fn mimic_queries() -> Vec<Workload> {
    vec![
        Workload {
            id: "Q_mimic1",
            description: "Death rate of diagnoses by chapter",
            sql: "SELECT 1.0*SUM(a.hospital_expire_flag)/COUNT(*) AS death_rate, d.chapter \
                  FROM admissions a, diagnoses d \
                  WHERE a.hadm_id = d.hadm_id GROUP BY d.chapter",
        },
        Workload {
            id: "Q_mimic2",
            description: "Death rate of patients by insurance",
            sql: "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
                  FROM admissions GROUP BY insurance",
        },
        Workload {
            id: "Q_mimic3",
            description: "ICU stays grouped by length of stay",
            sql: "SELECT COUNT(*) AS cnt, los_group FROM icustays GROUP BY los_group",
        },
        Workload {
            id: "Q_mimic4",
            description: "Death rate by insurance (Medicare vs Private)",
            sql: "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
                  FROM admissions GROUP BY insurance",
        },
        Workload {
            id: "Q_mimic5",
            description: "Procedures by patient ethnicity",
            sql: "SELECT COUNT(*) AS cnt, pai.ethnicity \
                  FROM patients_admit_info pai, procedures p \
                  WHERE p.hadm_id = pai.hadm_id AND p.subject_id = pai.subject_id \
                  GROUP BY pai.ethnicity",
        },
    ]
}

/// A case-study user question: query id + the two output tuples compared.
#[derive(Debug, Clone)]
pub struct CaseQuestion {
    /// Workload id.
    pub query_id: &'static str,
    /// Human description (Table 4/6 wording).
    pub description: &'static str,
    /// t1 selector: (group-by column, value).
    pub t1: (&'static str, &'static str),
    /// t2 selector.
    pub t2: (&'static str, &'static str),
    /// Attribute-name substrings excluded from patterns (interactive
    /// curation of group-restating attributes, see `MiningParams`).
    pub banned: &'static [&'static str],
}

/// Surrogate keys and group-restating attributes excluded from NBA
/// patterns: ids only restate joins or the grouped season through
/// functional dependencies (§6.2's noted limitation); names like
/// `team.team` and `player.player_name` stay available.
const NBA_BANNED: &[&str] = &[
    "season_id",
    "season__id",
    "season_name",
    "season.season",
    "game_date",
    "game__date",
    "team_id",
    "team__id",
    "player_id",
    "player__id",
    "lineup_id",
    "lineup__id",
    "home__id",
    "away__id",
    "winner__id",
    "date_start",
];

/// The NBA case-study questions (Table 4).
pub fn nba_case_questions() -> Vec<CaseQuestion> {
    vec![
        CaseQuestion {
            query_id: "Q_nba1",
            description: "Green: 14 pts in 2015-16 (t1) vs 10 pts in 2016-17 (t2)",
            t1: ("season_name", "2015-16"),
            t2: ("season_name", "2016-17"),
            banned: NBA_BANNED,
        },
        CaseQuestion {
            query_id: "Q_nba2",
            description: "GSW assists: 23 in 2013-14 (t1) vs 27 in 2014-15 (t2)",
            t1: ("season_name", "2013-14"),
            t2: ("season_name", "2014-15"),
            banned: NBA_BANNED,
        },
        CaseQuestion {
            query_id: "Q_nba3",
            description: "LeBron: 29.7 pts in 2009-10 (t1) vs 26.7 in 2010-11 (t2)",
            t1: ("season_name", "2009-10"),
            t2: ("season_name", "2010-11"),
            banned: NBA_BANNED,
        },
        CaseQuestion {
            query_id: "Q_nba4",
            description: "GSW wins: 47 in 2012-13 (t1) vs 67 in 2016-17 (t2)",
            t1: ("season_name", "2012-13"),
            t2: ("season_name", "2016-17"),
            banned: NBA_BANNED,
        },
        CaseQuestion {
            query_id: "Q_nba5",
            description: "Butler: 13 pts in 2013-14 (t1) vs 20 in 2014-15 (t2)",
            t1: ("season_name", "2013-14"),
            t2: ("season_name", "2014-15"),
            banned: NBA_BANNED,
        },
    ]
}

/// Surrogate keys / timestamps excluded from MIMIC patterns.
const MIMIC_BANNED: &[&str] = &[
    "hadm_id",
    "hadm__id",
    "subject_id",
    "subject__id",
    "icustay_id",
    "icustay__id",
    "admittime",
    "dischtime",
    "seq_num",
    "seq__num",
    "icd9",
    "dob",
];

/// The MIMIC case-study questions (Table 6).
pub fn mimic_case_questions() -> Vec<CaseQuestion> {
    vec![
        CaseQuestion {
            query_id: "Q_mimic1",
            description: "Death rate 0.19 for chapter 2 (t1) vs 0.09 for chapter 13 (t2)",
            t1: ("chapter", "2"),
            t2: ("chapter", "13"),
            banned: MIMIC_BANNED,
        },
        CaseQuestion {
            query_id: "Q_mimic2",
            description: "Death rate: Medicare 0.138 (t1) vs Medicaid 0.066 (t2)",
            t1: ("insurance", "Medicare"),
            t2: ("insurance", "Medicaid"),
            banned: MIMIC_BANNED,
        },
        CaseQuestion {
            query_id: "Q_mimic3",
            description: "ICU stays: 0-1 days (t1) vs more than 8 days (t2)",
            t1: ("los_group", "0-1"),
            t2: ("los_group", "x>8"),
            banned: MIMIC_BANNED,
        },
        CaseQuestion {
            query_id: "Q_mimic4",
            description: "Death rate: Medicare 0.14 (t1) vs Private 0.06 (t2)",
            t1: ("insurance", "Medicare"),
            t2: ("insurance", "Private"),
            banned: MIMIC_BANNED,
        },
        CaseQuestion {
            query_id: "Q_mimic5",
            description: "Procedures: HISPANIC patients (t1) vs ASIAN patients (t2)",
            t1: ("ethnicity", "HISPANIC"),
            t2: ("ethnicity", "ASIAN"),
            banned: MIMIC_BANNED,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workload_queries_parse() {
        for w in nba_queries().iter().chain(mimic_queries().iter()) {
            let q = w.query();
            assert!(!q.from.is_empty(), "{}", w.id);
            assert!(!q.aggregates.is_empty(), "{}", w.id);
        }
    }

    #[test]
    fn workload_queries_run_on_tiny_dbs() {
        let nba = cajade_datagen::nba::generate(cajade_datagen::nba::NbaConfig::tiny());
        for w in nba_queries() {
            let r = cajade_query::execute(&nba.db, &w.query()).unwrap();
            assert!(r.num_rows() > 0, "{} produced no rows", w.id);
        }
        let mimic = cajade_datagen::mimic::generate(cajade_datagen::mimic::MimicConfig::tiny());
        for w in mimic_queries() {
            let r = cajade_query::execute(&mimic.db, &w.query()).unwrap();
            assert!(r.num_rows() > 0, "{} produced no rows", w.id);
        }
    }

    #[test]
    fn case_questions_reference_known_queries() {
        let nba_ids: Vec<&str> = nba_queries().iter().map(|w| w.id).collect();
        for cq in nba_case_questions() {
            assert!(nba_ids.contains(&cq.query_id));
        }
        let mimic_ids: Vec<&str> = mimic_queries().iter().map(|w| w.id).collect();
        for cq in mimic_case_questions() {
            assert!(mimic_ids.contains(&cq.query_id));
        }
    }

    #[test]
    fn case_question_tuples_exist_in_tiny_data() {
        let nba = cajade_datagen::nba::generate(cajade_datagen::nba::NbaConfig::tiny());
        for cq in nba_case_questions() {
            let w = nba_queries()
                .into_iter()
                .find(|w| w.id == cq.query_id)
                .unwrap();
            let r = cajade_query::execute(&nba.db, &w.query()).unwrap();
            assert!(
                r.find_row(&nba.db, &[cq.t1]).is_some(),
                "{}: t1 {:?} missing",
                cq.query_id,
                cq.t1
            );
            assert!(
                r.find_row(&nba.db, &[cq.t2]).is_some(),
                "{}: t2 {:?} missing",
                cq.query_id,
                cq.t2
            );
        }
    }
}
