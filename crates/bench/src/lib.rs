//! # cajade-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§5, §6). The `paper` binary drives the experiments; the
//! criterion benches cover the hot kernels. See EXPERIMENTS.md at the
//! workspace root for the experiment ↔ paper mapping and measured results.

pub mod ingest_workload;
pub mod tablefmt;
pub mod user_study;
pub mod workloads;

pub use tablefmt::Table;
pub use workloads::{
    mimic_case_questions, mimic_db, mimic_queries, nba_case_questions, nba_db, nba_queries,
    CaseQuestion, HarnessScale, Workload,
};
