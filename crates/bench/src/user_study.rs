//! User-study harness (paper §6.3, Tables 7–9).
//!
//! The study's *mechanical* parts are regenerated faithfully: the two
//! explanation sets (5 provenance-based + 5 CaJaDE, Table 7), their
//! F-score / precision / recall rows (bottom of Table 8), and the entire
//! ranking-quality machinery of Table 9 (Kendall-tau pairwise error and
//! NDCG against per-participant rankings).
//!
//! The *human* part — 20 graduate students' 1–5 ratings — cannot be
//! reproduced computationally. Ratings are **simulated** with a documented
//! rater model: a noisy affine function of the explanation's precision and
//! recall (the paper found user preference correlates with precision /
//! F-score), plus a domain-knowledge bonus for raters flagged as NBA fans
//! on player-related explanations, plus per-rater noise. EXPERIMENTS.md
//! marks every number derived from these ratings as simulated.

use cajade_core::{Explanation, ExplanationSession, Params, UserQuestion};
use cajade_datagen::GeneratedDb;
use cajade_metrics::{kendall_tau_pairs, mean, ndcg, sample_stddev};
use cajade_mining::{Question, SelAttr};
use cajade_query::{ProvenanceTable, Query};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One explanation presented to the simulated raters.
#[derive(Debug, Clone)]
pub struct StudyExplanation {
    /// Table-7 label, e.g. `Expl3`.
    pub label: String,
    /// Rendered description.
    pub description: String,
    /// True for the CaJaDE arm, false for provenance-based.
    pub cajade_arm: bool,
    /// Whether the explanation references player-level context (triggers
    /// the fan bonus).
    pub player_related: bool,
    /// F-score / precision / recall.
    pub f_score: f64,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
}

/// The Table-7 explanation sets for the user-study question
/// (Q'1: GSW wins, 2015-16 vs 2012-13).
pub fn build_study_explanations(gen: &GeneratedDb, query: &Query) -> Vec<StudyExplanation> {
    let pt = ProvenanceTable::compute(&gen.db, query).expect("provenance");
    let t1 = pt
        .find_group(&gen.db, query, &[("season_name", "2015-16")])
        .expect("t1");
    let t2 = pt
        .find_group(&gen.db, query, &[("season_name", "2012-13")])
        .expect("t2");

    // Provenance-based arm: PT-only mining, top-5.
    let mut prov_params = Params::case_study().mining;
    prov_params.sel_attr = SelAttr::Count(6);
    prov_params.top_k = 5;
    prov_params.banned_attrs = vec!["season__id".into(), "season_name".into()];
    let (prov, apt0) = cajade_baselines::provenance_only_explanations(
        &gen.db,
        &pt,
        &Question::TwoPoint { t1, t2 },
        &prov_params,
    )
    .expect("provenance-only mining");

    // CaJaDE arm: full session, top-5 context explanations.
    let mut params =
        Params::case_study().with_banned_attrs(&["season__id", "season_name", "season.season"]);
    params.max_edges = 2;
    params.top_k_global = 20;
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    let out = session
        .explain(
            query,
            &UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")]),
        )
        .expect("session");
    let cajade_top: Vec<&Explanation> = out
        .explanations
        .iter()
        .filter(|e| !e.from_pt_only)
        .take(5)
        .collect();

    let mut study = Vec::new();
    for (i, e) in prov.iter().enumerate() {
        study.push(StudyExplanation {
            label: format!("Expl{}", i + 1),
            description: format!(
                "{} {}",
                e.pattern.render(&apt0, gen.db.pool()),
                e.metrics.support_string()
            ),
            cajade_arm: false,
            player_related: false,
            f_score: e.metrics.f_score,
            precision: e.metrics.precision,
            recall: e.metrics.recall,
        });
    }
    for (i, e) in cajade_top.iter().enumerate() {
        let player_related = e.preds.iter().any(|(a, _, _)| {
            a.contains("player")
                || a.contains("salary")
                || a.contains("minutes")
                || a.contains("usage")
        });
        study.push(StudyExplanation {
            label: format!("Expl{}", i + 6),
            description: e.render_line(),
            cajade_arm: true,
            player_related,
            f_score: e.metrics.f_score,
            precision: e.metrics.precision,
            recall: e.metrics.recall,
        });
    }
    study
}

/// Simulated ratings: `ratings[rater][explanation] ∈ 1..=5`.
///
/// Rater model (documented substitution for the human study):
/// `r = 1 + 4·(0.55·precision + 0.45·recall) + fan_bonus + ε`,
/// `ε ~ N(0, 0.55)`, rounded and clamped to 1..=5. Raters 0..num_fans are
/// "NBA fans" and add +0.4 to player-related explanations (the paper
/// found fans preferred CaJaDE's player-level context more strongly).
pub fn simulate_ratings(
    explanations: &[StudyExplanation],
    num_raters: usize,
    num_fans: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_raters)
        .map(|rater| {
            explanations
                .iter()
                .map(|e| {
                    let base = 1.0 + 4.0 * (0.55 * e.precision + 0.45 * e.recall);
                    let fan_bonus = if rater < num_fans && e.player_related {
                        0.4
                    } else {
                        0.0
                    };
                    let noise = {
                        // Box–Muller.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen::<f64>();
                        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos() * 0.55
                    };
                    (base + fan_bonus + noise).round().clamp(1.0, 5.0)
                })
                .collect()
        })
        .collect()
}

/// Table-8 rows: average rating and standard deviation per explanation,
/// for all raters and for the fan subset.
pub struct Table8 {
    /// Per explanation: (mean all, stddev all, mean fans, mean non-fans).
    pub rows: Vec<(f64, f64, f64, f64)>,
}

/// Computes Table 8 from simulated ratings.
pub fn table8(ratings: &[Vec<f64>], num_fans: usize) -> Table8 {
    let num_expl = ratings.first().map_or(0, Vec::len);
    let rows = (0..num_expl)
        .map(|e| {
            let all: Vec<f64> = ratings.iter().map(|r| r[e]).collect();
            let fans: Vec<f64> = ratings[..num_fans].iter().map(|r| r[e]).collect();
            let non: Vec<f64> = ratings[num_fans..].iter().map(|r| r[e]).collect();
            (mean(&all), sample_stddev(&all), mean(&fans), mean(&non))
        })
        .collect();
    Table8 { rows }
}

/// Table-9 ranking-quality numbers for one explanation arm.
#[derive(Debug, Clone, Copy)]
pub struct RankQuality {
    /// Average Kendall-tau pairwise error vs. each rater.
    pub kendall_pairs: f64,
    /// Average NDCG vs. each rater's rating as relevance.
    pub ndcg: f64,
}

/// Evaluates ranking by `scores` against every rater's ratings restricted
/// to the explanation indices in `subset`.
pub fn rank_quality(ratings: &[Vec<f64>], scores: &[f64], subset: &[usize]) -> RankQuality {
    let sub_scores: Vec<f64> = subset.iter().map(|&i| scores[i]).collect();
    let mut kendall_sum = 0.0;
    let mut ndcg_sum = 0.0;
    for rater in ratings {
        let sub_ratings: Vec<f64> = subset.iter().map(|&i| rater[i]).collect();
        kendall_sum += kendall_tau_pairs(&sub_scores, &sub_ratings) as f64;
        // NDCG: order items by the metric, gains = the rater's ratings.
        let mut order: Vec<usize> = (0..subset.len()).collect();
        order.sort_by(|&a, &b| sub_scores[b].total_cmp(&sub_scores[a]));
        let gains: Vec<f64> = order.iter().map(|&i| sub_ratings[i]).collect();
        ndcg_sum += ndcg(&gains);
    }
    let n = ratings.len() as f64;
    RankQuality {
        kendall_pairs: kendall_sum / n,
        ndcg: ndcg_sum / n,
    }
}

/// Index of the most controversial explanation (largest rating stddev) —
/// the `-1` column of Table 9 drops it.
pub fn most_controversial(ratings: &[Vec<f64>], subset: &[usize]) -> usize {
    *subset
        .iter()
        .max_by(|&&a, &&b| {
            let sa = sample_stddev(&ratings.iter().map(|r| r[a]).collect::<Vec<_>>());
            let sb = sample_stddev(&ratings.iter().map(|r| r[b]).collect::<Vec<_>>());
            sa.total_cmp(&sb)
        })
        .expect("non-empty subset")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_explanations() -> Vec<StudyExplanation> {
        (0..10)
            .map(|i| {
                let p = 0.4 + 0.06 * i as f64;
                StudyExplanation {
                    label: format!("Expl{}", i + 1),
                    description: format!("expl {i}"),
                    cajade_arm: i >= 5,
                    player_related: i >= 5,
                    f_score: p,
                    precision: p,
                    recall: p * 0.9,
                }
            })
            .collect()
    }

    #[test]
    fn ratings_in_range_and_deterministic() {
        let ex = fake_explanations();
        let r1 = simulate_ratings(&ex, 20, 5, 42);
        let r2 = simulate_ratings(&ex, 20, 5, 42);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 20);
        for rater in &r1 {
            assert_eq!(rater.len(), 10);
            assert!(rater.iter().all(|&x| (1.0..=5.0).contains(&x)));
        }
    }

    #[test]
    fn higher_precision_earns_higher_average_rating() {
        let ex = fake_explanations();
        let ratings = simulate_ratings(&ex, 40, 10, 7);
        let t8 = table8(&ratings, 10);
        // Explanation 9 (precision .94) beats explanation 0 (.4).
        assert!(t8.rows[9].0 > t8.rows[0].0 + 0.5);
    }

    #[test]
    fn fans_prefer_player_related() {
        let ex = fake_explanations();
        let ratings = simulate_ratings(&ex, 200, 100, 3);
        let t8 = table8(&ratings, 100);
        // Player-related explanations: fan mean > non-fan mean on average.
        let fan_delta: f64 = (5..10).map(|i| t8.rows[i].2 - t8.rows[i].3).sum::<f64>() / 5.0;
        assert!(fan_delta > 0.1, "fan delta {fan_delta}");
    }

    #[test]
    fn rank_quality_perfect_when_metric_matches_ratings() {
        // Ratings exactly equal to the metric → zero pairwise error, NDCG 1.
        let ratings = vec![vec![5.0, 4.0, 3.0, 2.0]];
        let scores = vec![5.0, 4.0, 3.0, 2.0];
        let q = rank_quality(&ratings, &scores, &[0, 1, 2, 3]);
        assert_eq!(q.kendall_pairs, 0.0);
        assert!((q.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controversial_is_max_stddev() {
        let ratings = vec![
            vec![5.0, 1.0, 3.0],
            vec![5.0, 5.0, 3.0],
            vec![5.0, 1.0, 3.0],
        ];
        assert_eq!(most_controversial(&ratings, &[0, 1, 2]), 1);
    }
}
