//! Minimal aligned-text table printer for the harness output (the paper's
//! tables are reproduced as monospace text).

/// A simple text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["step", "time"]);
        t.row(vec!["Feature Selection".into(), "84.96".into()]);
        t.row(vec!["JG Enum.".into(), "17.57".into()]);
        let s = t.render();
        assert!(s.contains("step"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The time column starts at the same offset in both data rows.
        let off = lines[2].find("84.96").unwrap();
        assert_eq!(lines[3].find("17.57").unwrap(), off);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
        assert!(t.render().contains('2'));
        assert_eq!(t.len(), 1);
    }
}
