//! `mining_bench` — the mining-engine perf trajectory harness.
//!
//! Measures, on the NBA scale-0.05 service workload (the ROADMAP's cold
//! baseline):
//!
//! * cold first ask, scalar vs vectorized engine,
//! * the feature-selection phase of a cold ask under both trainers
//!   (float-matrix reference vs histogram forests on encoded columns),
//!   asserting the mined top-k stays bit-identical across trainers,
//! * warm new-question ask (cached `PreparedApt`, mining only),
//! * warm repeat ask (answer cache),
//! * refinement-BFS upper-bound pruning counters,
//! * the shared column-statistics cache: hit/miss counts of one cold
//!   multi-graph ask (asserted ≥ graphs − 1 hits; `column_stats_hits`
//!   in the JSON is schema-checked in CI) and a controlled
//!   shared-vs-per-APT timing of the cross-graph preparation,
//! * raw pattern-scoring throughput (patterns/sec, both engines),
//! * the ingestion subsystem's per-stage wall clock (scan / infer /
//!   load / discover) on the CSV-exported corpus (best-of-5 minima per
//!   stage, like every other number here).
//!
//! ```text
//! cargo run -p cajade-bench --release --bin mining_bench -- \
//!     [--scale <f>] [--json <path>]
//! ```
//!
//! With `--json` (default `BENCH_mining.json` in the working directory)
//! the results are written as a flat JSON object so future PRs can track
//! the trajectory; the PR that introduced the engine records its numbers
//! in the README's Performance section. Headline ask latencies carry
//! `_p50_ms`/`_p99_ms` companions backed by `cajade-obs` histograms over
//! all runs — minima alone hide tail regressions.

use std::time::{Duration, Instant};

use cajade_bench::ingest_workload::TempDir;
use cajade_bench::workloads::nba_db;
use cajade_core::{FeatSelEngine, Params, ScoreEngine, UserQuestion};
use cajade_datagen::GeneratedDb;
use cajade_graph::Apt;
use cajade_mining::{lca_candidates, Pattern, Question, ScoreIndex, Scorer};
use cajade_obs::{HistSnapshot, Histogram};
use cajade_query::ProvenanceTable;
use cajade_service::{ExplanationService, ServiceConfig};

// Same heap attribution as cajade-serve: the bench process tracks its
// own allocations so the emitted JSON can report the run's heap
// watermark next to the wall-clock numbers.
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn question_1() -> UserQuestion {
    UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")])
}

fn question_2() -> UserQuestion {
    UserQuestion::two_point(&[("season_name", "2016-17")], &[("season_name", "2012-13")])
}

fn service_with(
    gen: &GeneratedDb,
    engine: ScoreEngine,
    featsel: FeatSelEngine,
    answer_cache: usize,
) -> ExplanationService {
    let mut params = Params::fast();
    params.mining.engine = engine;
    params.mining.featsel_engine = featsel;
    let service = ExplanationService::new(ServiceConfig {
        answer_cache_bytes: answer_cache,
        params,
        ..ServiceConfig::default()
    });
    service.register_database("nba", gen.db.clone(), gen.schema_graph.clone());
    service
}

/// Best-of-`n` wall clock of `f`.
fn best_of(n: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..n).map(|_| f()).min().unwrap_or_default()
}

/// `n` runs of `f` as a full distribution: the minimum (the historical
/// headline number) plus a log-bucketed histogram snapshot for p50/p99 —
/// minima hide tail regressions, percentiles don't.
fn dist_of(n: usize, mut f: impl FnMut() -> Duration) -> (Duration, HistSnapshot) {
    let hist = Histogram::new();
    let mut min = Duration::MAX;
    for _ in 0..n {
        let d = f();
        hist.record_duration(d);
        min = min.min(d);
    }
    (min, hist.snapshot())
}

/// Histogram quantile in milliseconds (the histogram records µs).
fn qms(snap: &HistSnapshot, q: f64) -> f64 {
    snap.quantile(q) as f64 / 1e3
}

/// One cold ask's interesting numbers.
struct ColdAsk {
    wall: Duration,
    featsel: Duration,
    /// Cross-graph question-independent preparation (feature selection +
    /// LCA candidates + sampling + index/bitmap/fragment build) summed
    /// over every mined join graph — the phase the shared column-stats
    /// cache attacks.
    prepare: Duration,
    ub_pruned: u64,
    recall_pruned: u64,
    /// Column-statistics cache hits/misses of this one cold ask.
    column_stats_hits: u64,
    column_stats_misses: u64,
    /// Join graphs mined by the ask.
    graphs_mined: usize,
    explanations: Vec<String>,
    /// Sorted top-k F-scores (the answer-quality fingerprint).
    f_scores: Vec<String>,
}

fn one_cold_ask(gen: &GeneratedDb, engine: ScoreEngine, featsel: FeatSelEngine) -> ColdAsk {
    let service = service_with(gen, engine, featsel, 64 * 1024 * 1024);
    let session = service.open_session("nba", GSW_SQL).unwrap();
    let t0 = Instant::now();
    let a = session.ask(&question_1()).unwrap();
    let wall = t0.elapsed();
    let cs = service.stats().column_stats_cache;
    let m = &a.result.timings.mining;
    let mut f_scores: Vec<String> = a
        .result
        .explanations
        .iter()
        .map(|e| format!("{:.12}", e.metrics.f_score))
        .collect();
    f_scores.sort();
    ColdAsk {
        wall,
        featsel: m.feature_selection,
        prepare: m.feature_selection + m.gen_pat_cand + m.sampling_for_f1 + m.prepare,
        ub_pruned: m.ub_pruned_children,
        recall_pruned: m.recall_pruned_subtrees,
        column_stats_hits: cs.hits + cs.coalesced,
        column_stats_misses: cs.misses,
        graphs_mined: a.result.num_graphs_mined,
        explanations: a
            .result
            .explanations
            .iter()
            .map(|e| {
                format!(
                    "{}|{}|{}|{:?}",
                    e.pattern_desc,
                    e.graph_structure,
                    e.primary,
                    (e.metrics.tp, e.metrics.a1, e.metrics.fp, e.metrics.a2)
                )
            })
            .collect(),
        f_scores,
    }
}

/// Best-of-5 cold ask (wall, featsel, and prepare minima taken
/// independently, per the bench-box methodology in the README), plus the
/// wall-clock distribution of all five runs for p50/p99 reporting.
fn cold_ask(
    gen: &GeneratedDb,
    engine: ScoreEngine,
    featsel: FeatSelEngine,
) -> (ColdAsk, HistSnapshot) {
    let hist = Histogram::new();
    let mut best: Option<ColdAsk> = None;
    for _ in 0..5 {
        let run = one_cold_ask(gen, engine, featsel);
        hist.record_duration(run.wall);
        best = Some(match best {
            None => run,
            Some(mut b) => {
                b.featsel = b.featsel.min(run.featsel);
                b.prepare = b.prepare.min(run.prepare);
                if run.wall < b.wall {
                    b.wall = run.wall;
                }
                b
            }
        });
    }
    (best.unwrap(), hist.snapshot())
}

fn warm_asks(gen: &GeneratedDb) -> ((Duration, HistSnapshot), (Duration, HistSnapshot)) {
    // Answer cache off, so the "new question" path re-mines each time.
    let service = service_with(gen, ScoreEngine::Vectorized, FeatSelEngine::Histogram, 0);
    let session = service.open_session("nba", GSW_SQL).unwrap();
    session.ask(&question_1()).unwrap();
    let warm_new = dist_of(5, || {
        let t0 = Instant::now();
        let a = session.ask(&question_2()).unwrap();
        assert!(a.provenance_cache_hit && a.apt_cache_misses == 0);
        t0.elapsed()
    });

    let service = service_with(
        gen,
        ScoreEngine::Vectorized,
        FeatSelEngine::Histogram,
        64 * 1024 * 1024,
    );
    let session = service.open_session("nba", GSW_SQL).unwrap();
    session.ask(&question_1()).unwrap();
    let warm_repeat = dist_of(5, || {
        let t0 = Instant::now();
        let a = session.ask(&question_1()).unwrap();
        assert!(a.answer_cache_hit);
        t0.elapsed()
    });
    (warm_new, warm_repeat)
}

/// Raw scoring throughput on the largest APT: patterns scored per second
/// (each score = both question directions).
fn scoring_throughput(gen: &GeneratedDb) -> (f64, f64, f64, usize, usize) {
    let q = cajade_query::parse_sql(GSW_SQL).unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let params = Params::fast();
    let graphs = cajade_graph::enumerate_join_graphs(
        &gen.schema_graph,
        &gen.db,
        &q,
        pt.num_rows,
        &cajade_graph::EnumConfig {
            max_edges: params.max_edges,
            max_cost: params.max_cost,
            check_pk_coverage: params.check_pk_coverage,
            include_pt_only: params.include_pt_only,
        },
    )
    .unwrap();
    let apt = graphs
        .iter()
        .filter(|g| g.valid)
        .map(|eg| Apt::materialize(&gen.db, &pt, &eg.graph).unwrap())
        .max_by_key(|a| a.num_rows)
        .expect("valid graph");
    let cat_fields: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Categorical)
        .take(4)
        .collect();
    let sample: Vec<u32> = (0..apt.num_rows.min(400) as u32).collect();
    let cat_pats = lca_candidates(&apt, &sample, &cat_fields);
    // Extend with the refinement shapes the BFS actually scores: numeric
    // thresholds alone and combined with each categorical candidate.
    let num_fields: Vec<usize> = apt
        .pattern_fields()
        .into_iter()
        .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Numeric)
        .take(4)
        .collect();
    let mut patterns = cat_pats.clone();
    for &f in &num_fields {
        for c in cajade_mining::fragments::fragment_boundaries(&apt, f, None, 6) {
            for op in [cajade_mining::PredOp::Le, cajade_mining::PredOp::Ge] {
                let pred = cajade_mining::Pred {
                    op,
                    value: cajade_mining::PatValue::Float(c.to_bits()),
                };
                patterns.push(Pattern::from_preds(vec![(f, pred)]));
                for base in &cat_pats {
                    if base.is_free(f) {
                        patterns.push(base.refine(f, pred));
                    }
                }
            }
        }
    }
    let question = Question::TwoPoint { t1: 0, t2: 1 };
    let directions = question.directions();

    let reps = 20;
    let scorer = Scorer::exact(&apt, &pt);
    let t0 = Instant::now();
    let mut acc = 0usize;
    for _ in 0..reps {
        for p in &patterns {
            for &(t, s) in &directions {
                acc += scorer.score(p, t, s).tp;
            }
        }
    }
    let scalar_rate = (reps * patterns.len()) as f64 / t0.elapsed().as_secs_f64();

    let index = ScoreIndex::exact(&apt, &pt);
    let t0 = Instant::now();
    for _ in 0..reps {
        for p in &patterns {
            for &(t, s) in &directions {
                acc += index.score(p, t, s).tp;
            }
        }
    }
    let vector_rate = (reps * patterns.len()) as f64 / t0.elapsed().as_secs_f64();

    // The refinement BFS's actual hot loop: masks are derived
    // incrementally (parent AND predicate), so scoring is popcounts only.
    let masks: Vec<_> = patterns.iter().map(|p| index.pattern_mask(p)).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        for m in &masks {
            for &(t, s) in &directions {
                acc += index.score_mask(m, t, s).tp;
            }
        }
    }
    let mask_rate = (reps * patterns.len()) as f64 / t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (
        scalar_rate,
        vector_rate,
        mask_rate,
        apt.num_rows,
        patterns.len(),
    )
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Cross-graph preparation, shared vs per-APT (best-of-5 each): every
/// valid join graph's `prepare_apt`, once through the pass-through
/// provider (the pre-sharing behaviour) and once through the memoizing
/// [`cajade_mining::BaseTableStats`] provider, which analyzes each base column exactly
/// once — the isolated cost of the phase the service's column-stats
/// cache removes from multi-graph cold asks.
/// Returns `(shared, unshared, graphs, distinct context columns)` — the
/// last is the upper bound on cache misses a correctly cross-graph-keyed
/// column-stats cache can incur for this workload.
fn prepare_shared_vs_unshared(gen: &GeneratedDb) -> (Duration, Duration, usize, usize) {
    use cajade_mining::{
        prepare_apt, prepare_apt_with, source_column, BaseTableStats, ColumnStatsConfig,
    };

    let q = cajade_query::parse_sql(GSW_SQL).unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let params = Params::fast();
    let graphs = cajade_graph::enumerate_join_graphs(
        &gen.schema_graph,
        &gen.db,
        &q,
        pt.num_rows,
        &cajade_graph::EnumConfig {
            max_edges: params.max_edges,
            max_cost: params.max_cost,
            check_pk_coverage: params.check_pk_coverage,
            include_pt_only: params.include_pt_only,
        },
    )
    .unwrap();
    let apts: Vec<Apt> = graphs
        .iter()
        .filter(|g| g.valid)
        .map(|eg| Apt::materialize(&gen.db, &pt, &eg.graph).unwrap())
        .collect();
    let distinct_columns = apts
        .iter()
        .flat_map(|apt| {
            apt.pattern_fields()
                .into_iter()
                .filter_map(|f| source_column(apt, f))
                .map(|(t, c)| (t.to_string(), c.to_string()))
                .collect::<Vec<_>>()
        })
        .collect::<std::collections::HashSet<_>>()
        .len();

    let unshared = best_of(5, || {
        let t0 = Instant::now();
        for apt in &apts {
            std::hint::black_box(prepare_apt(apt, &pt, &params.mining));
        }
        t0.elapsed()
    });
    let shared = best_of(5, || {
        // Fresh memo per run: each measurement includes the first
        // graph's misses, exactly like one cold ask.
        let provider = BaseTableStats::new(&gen.db, ColumnStatsConfig::from_params(&params.mining));
        let t0 = Instant::now();
        for apt in &apts {
            std::hint::black_box(prepare_apt_with(apt, &pt, &params.mining, &provider));
        }
        t0.elapsed()
    });
    (shared, unshared, apts.len(), distinct_columns)
}

/// Best-of-5 per-stage ingest timings over the CSV-exported corpus
/// (stage minima taken independently, like the featsel phase above).
fn ingest_phases(gen: &GeneratedDb) -> cajade_ingest::IngestTimings {
    let dir = TempDir::new("cajade_bench_ingest");
    cajade_ingest::export_csv_dir(
        &gen.db,
        &gen.schema_graph,
        dir.path(),
        &cajade_ingest::ExportOptions::default(),
    )
    .expect("export corpus");
    let mut best: Option<cajade_ingest::IngestTimings> = None;
    for _ in 0..5 {
        let run = cajade_ingest::ingest_dir(dir.path(), &cajade_ingest::IngestOptions::default())
            .expect("ingest corpus")
            .report
            .timings;
        best = Some(match best {
            None => run,
            Some(b) => cajade_ingest::IngestTimings {
                scan: b.scan.min(run.scan),
                infer: b.infer.min(run.infer),
                load: b.load.min(run.load),
                discover: b.discover.min(run.discover),
            },
        });
    }
    best.unwrap()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut json_path = Some("BENCH_mining.json".to_string());
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(0.05);
            }
            "--json" => {
                i += 1;
                json_path = argv.get(i).cloned();
            }
            "--no-json" => json_path = None,
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
        i += 1;
    }

    let gen = nba_db(scale);
    println!("# mining-bench — NBA scale {scale}, GSW wins query\n");

    let (cold_scalar, cold_scalar_dist) =
        cold_ask(&gen, ScoreEngine::Scalar, FeatSelEngine::Histogram);
    let (cold_vector, cold_vector_dist) =
        cold_ask(&gen, ScoreEngine::Vectorized, FeatSelEngine::Histogram);
    let (cold_float_featsel, _) =
        cold_ask(&gen, ScoreEngine::Vectorized, FeatSelEngine::FloatMatrix);
    // The trainer swap must not change answer *quality*: same number of
    // explanations with the same multiset of (primary, support) — on this
    // workload the top-k is saturated with tied F=1.0 patterns, and two
    // different forest algorithms legitimately break those ties toward
    // different (equally perfect) representatives of correlated stats.
    // `featsel_topk_identical` records whether even the tie-breaks agreed.
    // Bit-level identity is property-tested where it is guaranteed:
    // scalar vs vectorized engines, and ub-pruning on vs off.
    let featsel_topk_identical = cold_vector.explanations == cold_float_featsel.explanations;
    assert_eq!(
        cold_vector.f_scores, cold_float_featsel.f_scores,
        "histogram feature selection changed the top-k F-score distribution"
    );
    // The multi-graph cold ask must actually share column statistics:
    // every graph after the first (and the fragment stage after feature
    // selection) reuses the per-column entries, so hits must at least
    // reach graphs − 1. CI schema-checks the emitted field, so a silent
    // regression of the cache fails loudly.
    assert!(
        cold_vector.column_stats_hits >= cold_vector.graphs_mined.saturating_sub(1) as u64,
        "cold multi-graph ask shared too few column statistics: hits {} misses {} graphs {}",
        cold_vector.column_stats_hits,
        cold_vector.column_stats_misses,
        cold_vector.graphs_mined
    );
    let ((warm_new, warm_new_dist), (warm_repeat, warm_repeat_dist)) = warm_asks(&gen);
    let (prepare_shared, prepare_unshared, num_graphs, distinct_columns) =
        prepare_shared_vs_unshared(&gen);
    // A correctly cross-graph-keyed cache misses at most once per
    // distinct base column; a per-graph/per-APT key regression would
    // blow way past this (and could still satisfy the hits floor below
    // through intra-graph featsel→fragment reuse alone).
    assert!(
        cold_vector.column_stats_misses <= distinct_columns as u64,
        "column-stats misses {} exceed the {} distinct context columns — cache key regressed?",
        cold_vector.column_stats_misses,
        distinct_columns
    );
    let (scalar_rate, vector_rate, mask_rate, apt_rows, num_patterns) = scoring_throughput(&gen);
    let ingest = ingest_phases(&gen);

    println!(
        "cold ask, scalar engine      {:>10.2} ms (p50 {:.2} / p99 {:.2})",
        ms(cold_scalar.wall),
        qms(&cold_scalar_dist, 0.5),
        qms(&cold_scalar_dist, 0.99)
    );
    println!(
        "cold ask, vectorized engine  {:>10.2} ms (p50 {:.2} / p99 {:.2})",
        ms(cold_vector.wall),
        qms(&cold_vector_dist, 0.5),
        qms(&cold_vector_dist, 0.99)
    );
    println!(
        "feature selection (cold)      histogram {:>8.2} ms | float-matrix {:>8.2} ms ({:.2}×, top-k identical: {featsel_topk_identical})",
        ms(cold_vector.featsel),
        ms(cold_float_featsel.featsel),
        ms(cold_float_featsel.featsel) / ms(cold_vector.featsel).max(1e-9)
    );
    println!(
        "refinement pruning            ub-pruned children {} | recall-pruned subtrees {}",
        cold_vector.ub_pruned, cold_vector.recall_pruned
    );
    println!(
        "cross-graph prepare (cold)   {:>10.2} ms | column-stats hits {} misses {}",
        ms(cold_vector.prepare),
        cold_vector.column_stats_hits,
        cold_vector.column_stats_misses
    );
    println!(
        "prepare, {num_graphs} graphs            shared {:>8.2} ms | per-APT {:>8.2} ms ({:.2}×)",
        ms(prepare_shared),
        ms(prepare_unshared),
        ms(prepare_unshared) / ms(prepare_shared).max(1e-9)
    );
    println!(
        "warm new question (re-mine)  {:>10.2} ms (p50 {:.2} / p99 {:.2})",
        ms(warm_new),
        qms(&warm_new_dist, 0.5),
        qms(&warm_new_dist, 0.99)
    );
    println!(
        "warm repeat (answer cache)   {:>10.3} ms (p50 {:.3} / p99 {:.3})",
        ms(warm_repeat),
        qms(&warm_repeat_dist, 0.5),
        qms(&warm_repeat_dist, 0.99)
    );
    println!(
        "scoring throughput            scalar {scalar_rate:>12.0} pat/s | vectorized {vector_rate:>12.0} pat/s | incremental masks {mask_rate:>12.0} pat/s ({:.0}×, {num_patterns} patterns × 2 directions, {apt_rows}-row APT)",
        mask_rate / scalar_rate.max(1e-9)
    );
    println!(
        "csv ingest (export→ingest)    scan {:>7.2} ms | infer {:>7.2} ms | load {:>7.2} ms | discover {:>7.2} ms | total {:>7.2} ms",
        ms(ingest.scan),
        ms(ingest.infer),
        ms(ingest.load),
        ms(ingest.discover),
        ms(ingest.total())
    );

    // Whole-run heap watermark from the tracking allocator (0 when the
    // obs crate was built with tracking compiled out).
    let heap_peak = cajade_obs::alloc::heap_stats().map_or(0, |h| h.peak_live_bytes.max(0) as u64);
    println!(
        "heap peak (tracked live)     {:>10.1} MB",
        heap_peak as f64 / (1 << 20) as f64
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"scale\": {scale},\n  \"cold_ask_scalar_ms\": {:.3},\n  \"cold_ask_scalar_p50_ms\": {:.3},\n  \"cold_ask_scalar_p99_ms\": {:.3},\n  \"cold_ask_vectorized_ms\": {:.3},\n  \"cold_ask_vectorized_p50_ms\": {:.3},\n  \"cold_ask_vectorized_p99_ms\": {:.3},\n  \"cold_featsel_hist_ms\": {:.3},\n  \"cold_featsel_float_ms\": {:.3},\n  \"featsel_speedup\": {:.2},\n  \"featsel_topk_identical\": {featsel_topk_identical},\n  \"ub_pruned_children\": {},\n  \"recall_pruned_subtrees\": {},\n  \"cold_prepare_ms\": {:.3},\n  \"column_stats_hits\": {},\n  \"column_stats_misses\": {},\n  \"prepare_shared_ms\": {:.3},\n  \"prepare_unshared_ms\": {:.3},\n  \"prepare_graphs\": {num_graphs},\n  \"warm_new_question_ms\": {:.3},\n  \"warm_new_question_p50_ms\": {:.3},\n  \"warm_new_question_p99_ms\": {:.3},\n  \"warm_repeat_ms\": {:.4},\n  \"warm_repeat_p50_ms\": {:.4},\n  \"warm_repeat_p99_ms\": {:.4},\n  \"scoring_patterns_per_sec_scalar\": {:.0},\n  \"scoring_patterns_per_sec_vectorized\": {:.0},\n  \"scoring_patterns_per_sec_incremental_masks\": {:.0},\n  \"scoring_speedup\": {:.2},\n  \"throughput_apt_rows\": {apt_rows},\n  \"throughput_patterns\": {num_patterns},\n  \"ingest_scan_ms\": {:.3},\n  \"ingest_infer_ms\": {:.3},\n  \"ingest_load_ms\": {:.3},\n  \"ingest_discover_ms\": {:.3},\n  \"ingest_total_ms\": {:.3},\n  \"heap_peak_live_bytes\": {heap_peak}\n}}\n",
            ms(cold_scalar.wall),
            qms(&cold_scalar_dist, 0.5),
            qms(&cold_scalar_dist, 0.99),
            ms(cold_vector.wall),
            qms(&cold_vector_dist, 0.5),
            qms(&cold_vector_dist, 0.99),
            ms(cold_vector.featsel),
            ms(cold_float_featsel.featsel),
            ms(cold_float_featsel.featsel) / ms(cold_vector.featsel).max(1e-9),
            cold_vector.ub_pruned,
            cold_vector.recall_pruned,
            ms(cold_vector.prepare),
            cold_vector.column_stats_hits,
            cold_vector.column_stats_misses,
            ms(prepare_shared),
            ms(prepare_unshared),
            ms(warm_new),
            qms(&warm_new_dist, 0.5),
            qms(&warm_new_dist, 0.99),
            ms(warm_repeat),
            qms(&warm_repeat_dist, 0.5),
            qms(&warm_repeat_dist, 0.99),
            scalar_rate,
            vector_rate,
            mask_rate,
            mask_rate / scalar_rate.max(1e-9),
            ms(ingest.scan),
            ms(ingest.infer),
            ms(ingest.load),
            ms(ingest.discover),
            ms(ingest.total()),
        );
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
