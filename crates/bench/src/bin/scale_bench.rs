//! `scale_bench` — the scale-sweep harness: per-phase scaling curves and
//! peak-RSS tracking across two independent axes.
//!
//! * **Rows axis** — the paper's §5 duplicate-up applied to NBA scale
//!   0.05: each factor `f` duplicates every table `f`× with remapped
//!   keys, so factors 1/5/20 reproduce the paper's 0.05/0.25/1.0 corpus
//!   sizes with *identical* value distributions. Duplication must not
//!   change ranked explanations (regression-tested in
//!   `tests/scale_identity.rs`); here it isolates how each pipeline
//!   phase scales with row count alone.
//! * **Width axis** — the synthetic star corpus
//!   ([`cajade_datagen::synth`]) at fixed rows and varying
//!   `tables×columns`, isolating the per-table/per-column costs
//!   (enumeration, feature selection, column statistics) the NBA corpus
//!   cannot move.
//!
//! Each point runs the full service lifecycle — CSV ingest (export →
//! `ingest_dir`), register, cold ask, warm new-question ask, warm repeat
//! ask — with the kernel peak-RSS watermark reset at the start of the
//! point (`/proc/self/clear_refs`) and read at the end, so the recorded
//! `peak_rss_bytes` attributes to that point alone. Per-phase wall
//! clocks (provenance, jg_enum, materialize, prepare, featsel, mine)
//! come from the session's [`cajade_core::SessionTimings`]. The service
//! at every point uses [`ServiceConfig::scaled_for_db`], exercising the
//! scale-aware cache budgets.
//!
//! ```text
//! cargo run -p cajade-bench --release --bin scale_bench -- \
//!     [--factors 1,5,20] [--widths 3x4,6x8,9x12] [--synth-rows 20000] \
//!     [--runs 3] [--json BENCH_scale.json | --no-json]
//! ```
//!
//! Methodology: cold numbers are best-of-`--runs` over fresh services
//! (factors ≥ 5 drop to a single run — the corpus dominates wall clock
//! and the minimum stabilizes); phase minima are taken independently,
//! like every bench in this repo. `prepare_ms_per_krow` is the curve CI
//! watches: the prepare path's per-row cost must *fall* as rows grow
//! (its stats/fragment sampling is O(sample), its index build O(rows)),
//! so a superlinear regression shows up as a rising tail.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cajade_bench::ingest_workload::TempDir;
use cajade_bench::workloads::nba_db;
use cajade_core::{Params, UserQuestion};
use cajade_datagen::{scale::duplicate_scale, synth, GeneratedDb};
use cajade_service::{ExplanationService, ServiceConfig};

// Heap attribution: per-point `alloc_peak_bytes` and per-scope heap
// curves come from the tracking allocator's ledgers (the allocator-level
// companion to the kernel `VmHWM` watermark).
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;

/// Scope-chain roots that partition the point's work: every other scope
/// ("provenance" under "cache.provenance", the mining phases under
/// "mine", …) nests inside one of these, so summing their peak deltas
/// never double-counts. The attributed fraction divides that sum by the
/// point's global peak-heap growth.
const ROOT_SCOPES: &[&str] = &[
    "ingest_scan",
    "ingest_infer",
    "ingest_load",
    "ingest_discover",
    "cache.provenance",
    "cache.apt",
    "mine",
    "rank",
    "cache.answer",
    "bench.register",
];

/// Per-scope deltas over one sweep point: bytes allocated during the
/// point (cumulative over its runs) and peak net growth over the scope's
/// net level at point start.
#[derive(Clone, Default)]
struct ScopeDelta {
    allocated_bytes: u64,
    peak_bytes: u64,
    net_bytes: i64,
}

/// `(allocated, net)` per scope — the baseline captured at point start.
fn scope_baseline() -> BTreeMap<&'static str, (u64, i64)> {
    cajade_obs::alloc::scope_snapshots()
        .into_iter()
        .map(|s| (s.name, (s.allocated_bytes, s.net_bytes)))
        .collect()
}

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One sweep point's measurements. All `_ms` fields are best-of-`runs`
/// minima (phase minima independent); RSS fields are point-local maxima.
struct Point {
    axis: &'static str,
    label: String,
    /// Rows axis: duplicate factor. Width axis: 0.
    factor: usize,
    /// Width axis: dimension tables × numeric columns. Rows axis: the
    /// corpus' fixed table/column counts.
    tables: usize,
    columns: usize,
    total_rows: usize,
    graphs: usize,
    explanations: usize,
    ingest_ms: f64,
    register_ms: f64,
    cold_ask_ms: f64,
    warm_new_question_ms: f64,
    warm_repeat_ms: f64,
    provenance_ms: f64,
    jg_enum_ms: f64,
    materialize_ms: f64,
    prepare_ms: f64,
    featsel_ms: f64,
    mine_ms: f64,
    peak_rss_bytes: u64,
    peak_rss_reset: bool,
    /// Peak heap growth over the point's starting live bytes (tracking
    /// allocator; 0 when tracking is inactive).
    alloc_peak_bytes: u64,
    /// Fraction of `alloc_peak_bytes` attributed to the root scopes.
    alloc_attributed_fraction: f64,
    /// Top-3 scopes by peak net growth — who owns the watermark.
    alloc_top_scopes: Vec<&'static str>,
    /// Per-scope heap deltas over the point, by scope name.
    alloc_scopes: BTreeMap<&'static str, ScopeDelta>,
}

struct Workload<'a> {
    gen: &'a GeneratedDb,
    sql: &'a str,
    q1: UserQuestion,
    q2: UserQuestion,
}

fn measure_point(
    axis: &'static str,
    label: String,
    factor: usize,
    w: &Workload,
    runs: usize,
) -> Point {
    let gen = w.gen;
    let total_rows: usize = gen.db.tables().iter().map(|t| t.num_rows()).sum();
    let tables = gen.db.tables().len();
    let columns: usize = gen
        .db
        .tables()
        .iter()
        .map(|t| t.schema().fields.len())
        .sum();

    // Point-local peak attribution: reset the kernel watermark and the
    // allocator's global/per-scope peaks, and snapshot the baselines the
    // end-of-point deltas subtract.
    let peak_rss_reset = cajade_obs::reset_peak_rss();
    cajade_obs::alloc::reset_peak();
    cajade_obs::alloc::reset_scope_peaks();
    let heap_base = cajade_obs::alloc::heap_stats().unwrap_or_default();
    let scope_base = scope_baseline();

    // Ingest: CSV export once, re-ingest `runs`× (best-of) with type/key
    // inference and join discovery — the bring-your-own-data cost curve.
    let dir = TempDir::new("cajade_scale_ingest");
    cajade_ingest::export_csv_dir(
        &gen.db,
        &gen.schema_graph,
        dir.path(),
        &cajade_ingest::ExportOptions::default(),
    )
    .expect("export corpus");
    let mut ingest = Duration::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        std::hint::black_box(
            cajade_ingest::ingest_dir(dir.path(), &cajade_ingest::IngestOptions::default())
                .expect("ingest corpus"),
        );
        ingest = ingest.min(t0.elapsed());
    }
    drop(dir);

    // Cold lifecycle, best-of-`runs` over fresh services. The config's
    // cache budgets scale with the corpus (the 17 k-row-tuned defaults
    // would thrash at factor 20).
    let mut params = Params::fast();
    params.parallel = true;
    let mut best: Option<Point> = None;
    for _ in 0..runs {
        let config = ServiceConfig {
            params: params.clone(),
            ..ServiceConfig::scaled_for_db(&gen.db)
        };
        let service = ExplanationService::new(config);
        let t0 = Instant::now();
        {
            // The registered snapshot (a full db clone) is the service's
            // baseline residency; attribute it like the caches.
            let _mem = cajade_obs::AllocScope::enter("bench.register");
            service.register_database("db", gen.db.clone(), gen.schema_graph.clone());
        }
        let register = t0.elapsed();

        let session = service.open_session("db", w.sql).unwrap();
        let t0 = Instant::now();
        let cold = session.ask(&w.q1).unwrap();
        let cold_wall = t0.elapsed();
        assert!(!cold.answer_cache_hit && cold.apt_cache_misses > 0);

        let t0 = Instant::now();
        let warm_new = session.ask(&w.q2).unwrap();
        let warm_new_wall = t0.elapsed();
        assert!(warm_new.provenance_cache_hit && warm_new.apt_cache_misses == 0);

        let t0 = Instant::now();
        let repeat = session.ask(&w.q1).unwrap();
        let warm_repeat_wall = t0.elapsed();
        assert!(repeat.answer_cache_hit);

        let t = &cold.result.timings;
        let m = &t.mining;
        let run = Point {
            axis,
            label: label.clone(),
            factor,
            tables,
            columns,
            total_rows,
            graphs: cold.result.num_graphs_mined,
            explanations: cold.result.explanations.len(),
            ingest_ms: ms(ingest),
            register_ms: ms(register),
            cold_ask_ms: ms(cold_wall),
            warm_new_question_ms: ms(warm_new_wall),
            warm_repeat_ms: ms(warm_repeat_wall),
            provenance_ms: ms(t.provenance),
            jg_enum_ms: ms(t.jg_enum),
            materialize_ms: ms(t.materialize_apts),
            prepare_ms: ms(m.feature_selection + m.gen_pat_cand + m.sampling_for_f1 + m.prepare),
            featsel_ms: ms(m.feature_selection),
            mine_ms: ms(m.fscore_calc + m.refine_patterns),
            peak_rss_bytes: 0,
            peak_rss_reset,
            alloc_peak_bytes: 0,
            alloc_attributed_fraction: 0.0,
            alloc_top_scopes: Vec::new(),
            alloc_scopes: BTreeMap::new(),
        };
        best = Some(match best {
            None => run,
            Some(b) => Point {
                register_ms: b.register_ms.min(run.register_ms),
                cold_ask_ms: b.cold_ask_ms.min(run.cold_ask_ms),
                warm_new_question_ms: b.warm_new_question_ms.min(run.warm_new_question_ms),
                warm_repeat_ms: b.warm_repeat_ms.min(run.warm_repeat_ms),
                provenance_ms: b.provenance_ms.min(run.provenance_ms),
                jg_enum_ms: b.jg_enum_ms.min(run.jg_enum_ms),
                materialize_ms: b.materialize_ms.min(run.materialize_ms),
                prepare_ms: b.prepare_ms.min(run.prepare_ms),
                featsel_ms: b.featsel_ms.min(run.featsel_ms),
                mine_ms: b.mine_ms.min(run.mine_ms),
                ..run
            },
        });
    }
    let mut point = best.unwrap();
    // The point's high-water marks, after every phase has run: kernel
    // RSS, then the allocator ledgers diffed against the point baseline.
    point.peak_rss_bytes = cajade_obs::peak_rss_bytes().unwrap_or(0);
    if let Some(heap) = cajade_obs::alloc::heap_stats() {
        point.alloc_peak_bytes = (heap.peak_live_bytes - heap_base.live_bytes).max(0) as u64;
        for s in cajade_obs::alloc::scope_snapshots() {
            let (alloc0, net0) = scope_base.get(s.name).copied().unwrap_or((0, 0));
            let d = ScopeDelta {
                allocated_bytes: s.allocated_bytes.saturating_sub(alloc0),
                peak_bytes: (s.peak_net_bytes - net0).max(0) as u64,
                net_bytes: s.net_bytes - net0,
            };
            if d.allocated_bytes > 0 || d.peak_bytes > 0 {
                point.alloc_scopes.insert(s.name, d);
            }
        }
        let mut ranked: Vec<(&'static str, u64)> = point
            .alloc_scopes
            .iter()
            .map(|(name, d)| (*name, d.peak_bytes))
            .collect();
        ranked.sort_by_key(|(name, peak)| (std::cmp::Reverse(*peak), *name));
        point.alloc_top_scopes = ranked.iter().take(3).map(|(n, _)| *n).collect();
        let attributed: u64 = ROOT_SCOPES
            .iter()
            .filter_map(|r| point.alloc_scopes.get(r))
            .map(|d| d.peak_bytes)
            .sum();
        point.alloc_attributed_fraction = if point.alloc_peak_bytes > 0 {
            (attributed as f64 / point.alloc_peak_bytes as f64).min(1.0)
        } else {
            0.0
        };
    }
    point
}

fn rows_axis_points(base_scale: f64, factors: &[usize], runs: usize) -> Vec<Point> {
    let base = nba_db(base_scale);
    let q1 = UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")]);
    let q2 = UserQuestion::two_point(&[("season_name", "2016-17")], &[("season_name", "2012-13")]);
    factors
        .iter()
        .map(|&f| {
            let gen;
            let gen = if f == 1 {
                &base
            } else {
                gen = duplicate_scale(&base, f);
                &gen
            };
            let w = Workload {
                gen,
                sql: GSW_SQL,
                q1: q1.clone(),
                q2: q2.clone(),
            };
            // Large corpora dominate wall clock; one run suffices for a
            // stable minimum and keeps the sweep tractable.
            let point_runs = if f >= 5 { 1 } else { runs };
            let label = format!("nba {:.2} (x{f})", base_scale * f as f64);
            eprintln!("· rows axis: {label} …");
            measure_point("rows", label, f, &w, point_runs)
        })
        .collect()
}

fn width_axis_points(synth_rows: usize, widths: &[(usize, usize)], runs: usize) -> Vec<Point> {
    let q1 = UserQuestion::two_point(&[("grp", "g0")], &[("grp", "g1")]);
    let q2 = UserQuestion::two_point(&[("grp", "g2")], &[("grp", "g1")]);
    widths
        .iter()
        .map(|&(tables, columns)| {
            let cfg = synth::SynthConfig::small()
                .with_rows(synth_rows)
                .with_width(tables, columns);
            let gen = synth::generate(&cfg);
            let w = Workload {
                gen: &gen,
                sql: synth::SYNTH_SQL,
                q1: q1.clone(),
                q2: q2.clone(),
            };
            let label = format!("synth {tables}x{columns} ({synth_rows} rows)");
            eprintln!("· width axis: {label} …");
            measure_point("width", label, 0, &w, runs)
        })
        .collect()
}

fn point_json(p: &Point) -> String {
    let top_scopes: Vec<String> = p
        .alloc_top_scopes
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect();
    let scope_objs: Vec<String> = p
        .alloc_scopes
        .iter()
        .map(|(name, d)| {
            format!(
                "        \"{name}\": {{\"allocated_bytes\": {}, \"peak_bytes\": {}, \"net_bytes\": {}}}",
                d.allocated_bytes, d.peak_bytes, d.net_bytes
            )
        })
        .collect();
    format!(
        "    {{\n      \"axis\": \"{}\",\n      \"label\": \"{}\",\n      \"factor\": {},\n      \"tables\": {},\n      \"columns\": {},\n      \"total_rows\": {},\n      \"graphs\": {},\n      \"explanations\": {},\n      \"ingest_ms\": {:.3},\n      \"register_ms\": {:.3},\n      \"cold_ask_ms\": {:.3},\n      \"warm_new_question_ms\": {:.3},\n      \"warm_repeat_ms\": {:.4},\n      \"provenance_ms\": {:.3},\n      \"jg_enum_ms\": {:.3},\n      \"materialize_ms\": {:.3},\n      \"prepare_ms\": {:.3},\n      \"featsel_ms\": {:.3},\n      \"mine_ms\": {:.3},\n      \"prepare_ms_per_krow\": {:.4},\n      \"peak_rss_bytes\": {},\n      \"peak_rss_reset\": {},\n      \"alloc_peak_bytes\": {},\n      \"alloc_attributed_fraction\": {:.3},\n      \"alloc_top_scopes\": [{}],\n      \"alloc_scopes\": {{\n{}\n      }}\n    }}",
        p.axis,
        p.label,
        p.factor,
        p.tables,
        p.columns,
        p.total_rows,
        p.graphs,
        p.explanations,
        p.ingest_ms,
        p.register_ms,
        p.cold_ask_ms,
        p.warm_new_question_ms,
        p.warm_repeat_ms,
        p.provenance_ms,
        p.jg_enum_ms,
        p.materialize_ms,
        p.prepare_ms,
        p.featsel_ms,
        p.mine_ms,
        p.prepare_ms / (p.total_rows as f64 / 1e3).max(1e-9),
        p.peak_rss_bytes,
        p.peak_rss_reset,
        p.alloc_peak_bytes,
        p.alloc_attributed_fraction,
        top_scopes.join(", "),
        scope_objs.join(",\n"),
    )
}

fn print_table(points: &[Point]) {
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "point",
        "rows",
        "ingest",
        "cold",
        "warm-new",
        "repeat",
        "prov",
        "mat",
        "prepare",
        "featsel",
        "mine",
        "peakRSS",
        "peakHeap"
    );
    for p in points {
        println!(
            "{:<24} {:>9} {:>7.0}ms {:>8.1}ms {:>8.1}ms {:>8.2}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}MB {:>8.1}MB",
            p.label,
            p.total_rows,
            p.ingest_ms,
            p.cold_ask_ms,
            p.warm_new_question_ms,
            p.warm_repeat_ms,
            p.provenance_ms,
            p.materialize_ms,
            p.prepare_ms,
            p.featsel_ms,
            p.mine_ms,
            p.peak_rss_bytes as f64 / (1 << 20) as f64,
            p.alloc_peak_bytes as f64 / (1 << 20) as f64,
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut factors: Vec<usize> = vec![1, 5, 20];
    let mut widths: Vec<(usize, usize)> = vec![(3, 4), (6, 8), (9, 12)];
    let mut synth_rows = 20_000usize;
    let mut base_scale = 0.05f64;
    let mut runs = 3usize;
    let mut json_path = Some("BENCH_scale.json".to_string());
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--factors" => {
                i += 1;
                factors = argv[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--factors takes e.g. 1,5,20"))
                    .collect();
            }
            "--widths" => {
                i += 1;
                widths = argv[i]
                    .split(',')
                    .map(|s| {
                        let (t, c) = s
                            .trim()
                            .split_once('x')
                            .expect("--widths takes e.g. 3x4,6x8");
                        (t.parse().unwrap(), c.parse().unwrap())
                    })
                    .collect();
            }
            "--synth-rows" => {
                i += 1;
                synth_rows = argv[i].parse().expect("--synth-rows takes a count");
            }
            "--base-scale" => {
                i += 1;
                base_scale = argv[i].parse().expect("--base-scale takes a float");
            }
            "--runs" => {
                i += 1;
                runs = argv[i].parse().expect("--runs takes a count");
            }
            "--json" => {
                i += 1;
                json_path = Some(argv[i].clone());
            }
            "--no-json" => json_path = None,
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
        i += 1;
    }

    println!(
        "# scale-bench — rows axis: NBA {base_scale} × {factors:?} (duplicate-up); \
         width axis: synth {synth_rows} rows × {widths:?}\n"
    );
    let mut points = rows_axis_points(base_scale, &factors, runs);
    points.extend(width_axis_points(synth_rows, &widths, runs));
    println!();
    print_table(&points);

    // The headline curve: per-row prepare cost across the rows axis.
    // Strided sampling keeps the stats/fragment share O(sample), so the
    // per-kilorow cost must not *grow* with the corpus (the index build
    // is O(rows), i.e. flat per-row; everything else shrinks per-row).
    let rows_pts: Vec<&Point> = points.iter().filter(|p| p.axis == "rows").collect();
    if rows_pts.len() >= 2 {
        let first = rows_pts.first().unwrap();
        let last = rows_pts.last().unwrap();
        let per_krow = |p: &Point| p.prepare_ms / (p.total_rows as f64 / 1e3).max(1e-9);
        let ratio = per_krow(last) / per_krow(first).max(1e-9);
        println!(
            "\nprepare per-krow: {:.3} ms → {:.3} ms across {}×→{}× rows (ratio {ratio:.2}; \
             ≤ 1 means the prepare path scales no worse than linearly)",
            per_krow(first),
            per_krow(last),
            first.factor,
            last.factor
        );
        assert!(
            ratio < 3.0,
            "prepare path scaled superlinearly: {:.3} → {:.3} ms/krow",
            per_krow(first),
            per_krow(last)
        );
    }

    // Width-axis memory attribution: the superlinear growth the sweep
    // exposes must be *named* — each width point reports its top scopes
    // by peak-live growth and the fraction of the heap watermark the
    // scope ledgers account for.
    for p in points.iter().filter(|p| p.axis == "width") {
        println!(
            "width {:<22} heap peak {:>7.1} MB, {:>5.1}% attributed, top scopes: {}",
            p.label,
            p.alloc_peak_bytes as f64 / (1 << 20) as f64,
            p.alloc_attributed_fraction * 100.0,
            p.alloc_top_scopes.join(", ")
        );
        if p.alloc_peak_bytes > 0 {
            assert!(
                p.alloc_attributed_fraction >= 0.8,
                "width-axis heap growth under-attributed ({:.1}% of {} bytes): \
                 a hot allocation path is missing its AllocScope",
                p.alloc_attributed_fraction * 100.0,
                p.alloc_peak_bytes
            );
        }
    }

    if let Some(path) = json_path {
        let body: Vec<String> = points.iter().map(point_json).collect();
        let rows_points = points.iter().filter(|p| p.axis == "rows").count();
        let width_points = points.iter().filter(|p| p.axis == "width").count();
        let json = format!(
            "{{\n  \"base_scale\": {base_scale},\n  \"synth_rows\": {synth_rows},\n  \"runs\": {runs},\n  \"rows_points\": {rows_points},\n  \"width_points\": {width_points},\n  \"points\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
