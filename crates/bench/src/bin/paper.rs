//! `paper` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p cajade-bench --release --bin paper -- <experiment> [flags]
//!
//! experiments:
//!   table1   parameter defaults (Table 1)
//!   fig7     feature-selection runtime breakdown (Fig. 7 / 7a)
//!   fig8     runtime vs λ#edges × λ_F1-samp (Fig. 8)
//!   fig9     scalability in database size (Fig. 9a–d)
//!   fig10a   join-graph APT sizes (Fig. 10a)
//!   fig10be  LCA sample rate vs runtime & top-10 match (Fig. 10b–e)
//!   fig10fg  NDCG / recall vs λ_F1-samp (Fig. 10f–g)
//!   fig11    comparison with Explanation Tables (Fig. 11 + App. A.1)
//!   fig12    runtime across the 10 workload queries (Fig. 12)
//!   fig13    CAPE counterbalances (Fig. 13)
//!   table4   NBA case study (Table 4; --top20 for App. A.2 detail)
//!   table6   MIMIC case study (Table 6; --top20 for App. A.2 detail)
//!   table7   user-study explanation sets (Table 7)
//!   table8   simulated ratings + quality metrics (Table 8; SIMULATED)
//!   table9   ranking quality vs ratings (Table 9; SIMULATED ratings)
//!   ablation design-choice ablations (§3/§4 optimizations)
//!   all      everything above
//!
//! flags:
//!   --scale <f>   harness scale relative to the paper's scale-1.0
//!                 datasets (default 0.25)
//!   --edges <n>   λ#edges (default 2; paper default 3)
//!   --full        paper-scale: --scale 1.0 --edges 3 + full sweeps
//!   --top20       case studies print top-20 with join-graph detail
//! ```
//!
//! Absolute runtimes will differ from the paper's hardware; the *shape*
//! (which phase dominates, scaling slopes, who wins by how much) is the
//! reproduction target. See EXPERIMENTS.md.

use std::time::Instant;

use cajade_baselines::{explain_outlier, CapeQuestion, Direction, EtConfig, ExplanationTables};
use cajade_bench::tablefmt::{secs, Table};
use cajade_bench::user_study::{
    build_study_explanations, most_controversial, rank_quality, simulate_ratings, table8,
    StudyExplanation,
};
use cajade_bench::workloads::{
    mimic_case_questions, mimic_db, mimic_queries, nba_case_questions, nba_db, nba_queries,
    CaseQuestion, Workload,
};
use cajade_core::{ExplanationSession, Params, SessionResult, SessionTimings, UserQuestion};
use cajade_datagen::{scale::duplicate_scale, GeneratedDb};
use cajade_graph::Apt;
use cajade_metrics::{ndcg, top_k_overlap};
use cajade_mining::{lca_candidates, mine_apt, Question, Scorer, SelAttr};
use cajade_query::ProvenanceTable;

#[derive(Debug, Clone)]
struct Args {
    experiment: String,
    scale: f64,
    edges: usize,
    full: bool,
    top20: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        experiment: argv.first().cloned().unwrap_or_else(|| "all".into()),
        scale: 0.25,
        edges: 2,
        full: false,
        top20: false,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(0.25);
            }
            "--edges" => {
                i += 1;
                args.edges = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(2);
            }
            "--full" => {
                args.full = true;
                args.scale = 1.0;
                args.edges = 3;
            }
            "--top20" => args.top20 = true,
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    if cfg!(debug_assertions) {
        eprintln!("WARNING: debug build — run with --release for meaningful timings\n");
    }
    println!(
        "# CaJaDE evaluation harness — experiment `{}` (scale {}, λ#edges {})\n",
        args.experiment, args.scale, args.edges
    );
    match args.experiment.as_str() {
        "table1" => table1(&args),
        "fig7" => fig7(&args),
        "fig8" => fig8(&args),
        "fig9" => fig9(&args),
        "fig10a" => fig10a(&args),
        "fig10be" => fig10be(&args),
        "fig10fg" => fig10fg(&args),
        "fig11" => fig11(&args),
        "fig12" => fig12(&args),
        "fig13" => fig13(&args),
        "table4" => table4(&args),
        "table6" => table6(&args),
        "table7" => table7(&args),
        "table8" => table8_cmd(&args),
        "table9" => table9_cmd(&args),
        "ablation" => ablation(&args),
        "all" => {
            table1(&args);
            fig7(&args);
            fig8(&args);
            fig9(&args);
            fig10a(&args);
            fig10be(&args);
            fig10fg(&args);
            fig11(&args);
            fig12(&args);
            fig13(&args);
            table4(&args);
            table6(&args);
            table7(&args);
            table8_cmd(&args);
            table9_cmd(&args);
            ablation(&args);
        }
        other => {
            eprintln!("unknown experiment `{other}` — see the module docs");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------- helpers

fn harness_params(args: &Args) -> Params {
    let mut p = Params::paper();
    p.max_edges = args.edges;
    p.mining.forest_trees = 10;
    // Bound per-APT pattern evaluations: the timing experiments mine
    // dozens of graphs per query and the paper's own λ's keep the search
    // bounded through feature selection.
    p.mining.max_patterns = 30_000;
    p
}

fn find_workload(id: &str) -> Workload {
    nba_queries()
        .into_iter()
        .chain(mimic_queries())
        .find(|w| w.id == id)
        .unwrap_or_else(|| panic!("unknown workload {id}"))
}

fn find_case(id: &str) -> CaseQuestion {
    nba_case_questions()
        .into_iter()
        .chain(mimic_case_questions())
        .find(|c| c.query_id == id)
        .unwrap_or_else(|| panic!("no case question for {id}"))
}

fn run_case(gen: &GeneratedDb, cq: &CaseQuestion, params: Params) -> SessionResult {
    let w = find_workload(cq.query_id);
    let session = ExplanationSession::new(&gen.db, &gen.schema_graph, params);
    session
        .explain(&w.query(), &UserQuestion::two_point(&[cq.t1], &[cq.t2]))
        .unwrap_or_else(|e| panic!("{}: {e}", cq.query_id))
}

// ------------------------------------------------------------ experiments

fn table1(_args: &Args) {
    println!("## Table 1 — parameters and defaults\n");
    let mut t = Table::new(&["parameter", "default"]);
    for (k, v) in Params::paper().table1_rows() {
        t.row(vec![k, v]);
    }
    println!("{}", t.render());
}

/// Fig. 7 / 7a: runtime breakdown with feature selection at λ_F1-samp ∈
/// {0.1, 0.3, 0.5, 1.0} vs. without feature selection.
fn fig7(args: &Args) {
    for (name, gen, cq) in [
        (
            "NBA (Fig. 7a shape)",
            nba_db(args.scale),
            find_case("Q_nba4"),
        ),
        (
            "MIMIC (Fig. 7 shape)",
            mimic_db(args.scale),
            find_case("Q_mimic4"),
        ),
    ] {
        println!("## Figure 7 — feature selection, {name}\n");
        let rates = [0.1, 0.3, 0.5, 1.0];
        let mut columns: Vec<(String, SessionTimings)> = Vec::new();
        for rate in rates {
            let p = harness_params(args).with_f1_sample_rate(rate);
            let r = run_case(&gen, &cq, p);
            columns.push((format!("FS, λF1={rate}"), r.timings));
        }
        let p = harness_params(args)
            .with_f1_sample_rate(0.3)
            .with_feature_selection(false);
        let r = run_case(&gen, &cq, p);
        columns.push(("w/o FS".into(), r.timings));

        let mut header: Vec<String> = vec!["step".into()];
        header.extend(columns.iter().map(|(n, _)| n.clone()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for (i, (step, _)) in columns[0].1.breakdown_rows().iter().enumerate() {
            let mut row = vec![step.to_string()];
            for (_, timings) in &columns {
                row.push(secs(timings.breakdown_rows()[i].1));
            }
            t.row(row);
        }
        let mut total = vec!["total".to_string()];
        for (_, timings) in &columns {
            total.push(secs(timings.total()));
        }
        t.row(total);
        println!("{}", t.render());
    }
}

/// Fig. 8: total runtime varying λ#edges × λ_F1-samp (NBA, Q1).
fn fig8(args: &Args) {
    println!("## Figure 8 — varying λ#edges and λ_F1-samp (NBA Q1)\n");
    let gen = nba_db(args.scale);
    let cq = find_case("Q_nba4");
    let rates = [0.1, 0.3, 0.5, 1.0];
    let max_edges = if args.full { 3 } else { args.edges.max(2) };
    let mut t = Table::new(&[
        "λ#edges",
        "graphs mined",
        "λF1=0.1",
        "λF1=0.3",
        "λF1=0.5",
        "λF1=1.0",
    ]);
    for edges in 1..=max_edges {
        let mut row = vec![edges.to_string(), String::new()];
        for rate in rates {
            let mut p = harness_params(args).with_f1_sample_rate(rate);
            p.max_edges = edges;
            let r = run_case(&gen, &cq, p);
            row[1] = r.num_graphs_mined.to_string();
            row.push(secs(r.timings.total()));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

/// Fig. 9: scalability in database size.
fn fig9(args: &Args) {
    let scales: Vec<f64> = if args.full {
        vec![0.1, 0.5, 1.0, 2.0, 4.0, 8.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0]
            .into_iter()
            .map(|s| s * args.scale)
            .collect()
    };
    let rates = [0.1, 0.3, 0.7];
    for dataset in ["NBA", "MIMIC"] {
        println!("## Figure 9 — scalability, {dataset}\n");
        let mut t = {
            let mut header = vec!["scale".to_string(), "total rows".to_string()];
            header.extend(rates.iter().map(|r| format!("λF1={r}")));
            let refs: Vec<&str> = header.iter().map(String::as_str).collect();
            Table::new(&refs)
        };
        let mut last_breakdown: Option<SessionTimings> = None;
        for &s in &scales {
            let gen = build_scaled(dataset, s);
            let cq = find_case(if dataset == "NBA" {
                "Q_nba4"
            } else {
                "Q_mimic4"
            });
            let mut row = vec![format!("{s}"), gen.db.total_rows().to_string()];
            for &rate in &rates {
                let p = harness_params(args).with_f1_sample_rate(rate);
                let r = run_case(&gen, &cq, p);
                row.push(secs(r.timings.total()));
                if (rate - 0.7).abs() < 1e-9 {
                    last_breakdown = Some(r.timings);
                }
            }
            t.row(row);
        }
        println!("{}", t.render());
        if let Some(b) = last_breakdown {
            println!(
                "breakdown at the largest scale, λF1=0.7 (Fig. 9c/9d shape):\n{}",
                b.render()
            );
        }
    }
}

/// Integer up-scales ≥ 2 use the paper's duplicate-with-remapped-keys
/// procedure; fractional scales regenerate at size.
fn build_scaled(dataset: &str, s: f64) -> GeneratedDb {
    let near_int = (s - s.round()).abs() < 1e-9 && s >= 2.0;
    if near_int {
        let base = if dataset == "NBA" {
            nba_db(1.0)
        } else {
            mimic_db(1.0)
        };
        duplicate_scale(&base, s.round() as usize)
    } else if dataset == "NBA" {
        nba_db(s)
    } else {
        mimic_db(s)
    }
}

/// Fig. 10a: APT sizes for representative join graphs.
fn fig10a(args: &Args) {
    println!("## Figure 10a — join-graph APT sizes\n");
    let mut t = Table::new(&["dataset", "join graph", "APT rows", "# attributes"]);
    for (name, gen, cq) in [
        ("NBA", nba_db(args.scale), find_case("Q_nba4")),
        ("MIMIC", mimic_db(args.scale), find_case("Q_mimic4")),
    ] {
        let r = run_case(&gen, &cq, harness_params(args));
        for (structure, rows, attrs) in r.apt_stats.iter().take(4) {
            t.row(vec![
                name.to_string(),
                structure.clone(),
                rows.to_string(),
                attrs.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Fig. 10b–e: LCA sample rate vs runtime and top-10 pattern match.
fn fig10be(args: &Args) {
    println!("## Figure 10b–e — LCA sampling (runtime quadratic in sample size)\n");
    for (name, gen, cq, want_graph) in [
        (
            "Ω1 (NBA, PT only)",
            nba_db(args.scale),
            find_case("Q_nba4"),
            "PT",
        ),
        (
            "Ω2 (NBA, PT - player_salary - player)",
            nba_db(args.scale),
            find_case("Q_nba4"),
            "player_salary",
        ),
        (
            "Ω3 (MIMIC, PT only)",
            mimic_db(args.scale),
            find_case("Q_mimic4"),
            "PT",
        ),
        (
            "Ω4 (MIMIC, PT - patients_admit_info - patients)",
            mimic_db(args.scale),
            find_case("Q_mimic4"),
            "patients_admit_info",
        ),
    ] {
        let w = find_workload(cq.query_id);
        let query = w.query();
        let pt = ProvenanceTable::compute(&gen.db, &query).unwrap();
        let graphs = cajade_graph::enumerate_join_graphs(
            &gen.schema_graph,
            &gen.db,
            &query,
            pt.num_rows,
            &cajade_graph::EnumConfig {
                max_edges: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let target = graphs
            .iter()
            .filter(|g| g.valid)
            .find(|g| {
                if want_graph == "PT" {
                    g.graph.num_edges() == 0
                } else {
                    g.graph.structure_string().contains(want_graph)
                }
            })
            .map(|g| g.graph.clone());
        let Some(graph) = target else {
            println!("({name}: target join graph not found — skipped)\n");
            continue;
        };
        let apt = Apt::materialize(&gen.db, &pt, &graph).unwrap();
        println!(
            "### {name}: APT {} rows × {} attrs",
            apt.num_rows,
            apt.fields.len()
        );

        let cat_fields: Vec<usize> = apt
            .pattern_fields()
            .into_iter()
            .filter(|&f| apt.fields[f].kind == cajade_storage::AttrKind::Categorical)
            .collect();
        let scorer = Scorer::exact(&apt, &pt);
        let t1 = pt.find_group(&gen.db, &query, &[cq.t1]).unwrap();
        let t2 = pt.find_group(&gen.db, &query, &[cq.t2]).unwrap();
        let top10 = |rows: &[u32]| -> Vec<String> {
            let mut scored: Vec<(String, f64)> = lca_candidates(&apt, rows, &cat_fields)
                .into_iter()
                .map(|p| {
                    let recall = scorer
                        .score(&p, t1, Some(t2))
                        .recall
                        .max(scorer.score(&p, t2, Some(t1)).recall);
                    (p.render(&apt, gen.db.pool()), recall)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.into_iter().take(10).map(|(s, _)| s).collect()
        };

        let all_rows: Vec<u32> = (0..apt.num_rows as u32).collect();
        let cap = 2000.min(all_rows.len());
        let truth = top10(&all_rows[..cap]);

        let mut t = Table::new(&["sample rate", "rows", "time (s)", "top-10 match"]);
        for rate in [0.03, 0.05, 0.1, 0.2, 0.4] {
            let rows = cajade_ml::sampling::bernoulli_sample(cap, rate, 0xF16);
            let sample: Vec<u32> = rows.iter().map(|&i| all_rows[i]).collect();
            let t0 = Instant::now();
            let predicted = top10(&sample);
            let elapsed = t0.elapsed();
            t.row(vec![
                rate.to_string(),
                sample.len().to_string(),
                secs(elapsed),
                top_k_overlap(&truth, &predicted, 10).to_string(),
            ]);
        }
        println!("{}", t.render());
    }
}

/// Fig. 10f–g: NDCG and top-10 recall of sampled F-score ranking vs the
/// full-data ranking, per λ#edges.
fn fig10fg(args: &Args) {
    println!("## Figure 10f–g — ranking quality under λ_F1-samp\n");
    for (name, gen, cq) in [
        ("NBA", nba_db(args.scale), find_case("Q_nba4")),
        ("MIMIC", mimic_db(args.scale), find_case("Q_mimic4")),
    ] {
        let max_edges = if args.full { 3 } else { 2 };
        for edges in 1..=max_edges {
            let key_list = |r: &SessionResult| -> Vec<String> {
                r.explanations
                    .iter()
                    .map(|e| format!("{}|{}", e.pattern_desc, e.primary))
                    .take(10)
                    .collect()
            };
            let mut p = harness_params(args).with_f1_sample_rate(1.0);
            p.max_edges = edges;
            let truth = key_list(&run_case(&gen, &cq, p));

            let mut t = Table::new(&["λF1-samp", "NDCG", "top-10 recall"]);
            for rate in [0.1, 0.3, 0.5, 0.7] {
                let mut p = harness_params(args).with_f1_sample_rate(rate);
                p.max_edges = edges;
                let predicted = key_list(&run_case(&gen, &cq, p));
                let gains: Vec<f64> = predicted
                    .iter()
                    .map(|k| {
                        truth
                            .iter()
                            .position(|t| t == k)
                            .map(|pos| (10 - pos) as f64)
                            .unwrap_or(0.0)
                    })
                    .collect();
                t.row(vec![
                    rate.to_string(),
                    format!("{:.3}", ndcg(&gains)),
                    format!("{:.2}", top_k_overlap(&truth, &predicted, 10) as f64 / 10.0),
                ]);
            }
            println!("### {name}, λ#edges={edges}\n{}", t.render());
        }
    }
}

/// Fig. 11 + App. A.1: Explanation Tables comparison.
fn fig11(args: &Args) {
    println!("## Figure 11 — comparison with Explanation Tables (ET)\n");
    let gen = nba_db(args.scale);
    let cq = find_case("Q_nba4");
    let w = find_workload(cq.query_id);
    let query = w.query();
    let pt = ProvenanceTable::compute(&gen.db, &query).unwrap();
    let t1 = pt.find_group(&gen.db, &query, &[cq.t1]).unwrap();
    let t2 = pt.find_group(&gen.db, &query, &[cq.t2]).unwrap();

    // The paper's comparison APT: PT - player_game_stats - player.
    let graphs = cajade_graph::enumerate_join_graphs(
        &gen.schema_graph,
        &gen.db,
        &query,
        pt.num_rows,
        &cajade_graph::EnumConfig {
            max_edges: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let graph = graphs
        .iter()
        .filter(|g| g.valid)
        .find(|g| {
            let s = g.graph.structure_string();
            s.contains("player_game_stats") && s.contains("player")
        })
        .map(|g| g.graph.clone())
        .expect("PT - player_game_stats - player graph");
    let apt = Apt::materialize(&gen.db, &pt, &graph).unwrap();
    println!(
        "APT: {} ({} rows × {} attrs)\n",
        graph.structure_string(),
        apt.num_rows,
        apt.fields.len()
    );
    let outcome: Vec<bool> = (0..apt.num_rows)
        .map(|r| pt.group_of[apt.pt_row[r] as usize] as usize == t1)
        .collect();

    let mut t = Table::new(&["sample size", "CaJaDE (s)", "ET (s)"]);
    let mut last_et = None;
    for sample_size in [16usize, 64, 256, 512] {
        let mut mp = harness_params(args).mining;
        mp.lambda_pat_samp = 1.0;
        mp.pat_samp_cap = sample_size;
        mp.lambda_f1_samp = 0.3;
        let t0 = Instant::now();
        let _ = mine_apt(&apt, &pt, &Question::TwoPoint { t1, t2 }, &mp);
        let cajade_time = t0.elapsed();

        let cfg = EtConfig {
            sample_size,
            num_patterns: 20,
            ..Default::default()
        };
        let t0 = Instant::now();
        let et = ExplanationTables::fit(&apt, &outcome, &cfg);
        let et_time = t0.elapsed();
        t.row(vec![
            sample_size.to_string(),
            secs(cajade_time),
            secs(et_time),
        ]);
        last_et = Some((et, cfg));
    }
    println!("{}", t.render());

    if let Some((et, cfg)) = last_et {
        println!("first ET patterns at sample 512 (App. A.1 shape):");
        for (i, desc) in et
            .render(&apt, gen.db.pool(), &cfg)
            .iter()
            .take(10)
            .enumerate()
        {
            println!("  {:>2}. {desc}", i + 1);
        }
        println!();
    }
}

/// Fig. 12: runtime across the ten workload queries.
fn fig12(args: &Args) {
    println!(
        "## Figure 12 — varying queries (λF1=0.3, λ#edges={})\n",
        args.edges
    );
    let nba = nba_db(args.scale);
    let mimic = mimic_db(args.scale);
    let mut t = Table::new(&["query", "join graphs", "mined", "runtime (s)"]);
    for cq in nba_case_questions() {
        let r = run_case(&nba, &cq, harness_params(args).with_f1_sample_rate(0.3));
        t.row(vec![
            cq.query_id.to_string(),
            r.num_graphs_enumerated.to_string(),
            r.num_graphs_mined.to_string(),
            secs(r.timings.total()),
        ]);
    }
    for cq in mimic_case_questions() {
        let r = run_case(&mimic, &cq, harness_params(args).with_f1_sample_rate(0.3));
        t.row(vec![
            cq.query_id.to_string(),
            r.num_graphs_enumerated.to_string(),
            r.num_graphs_mined.to_string(),
            secs(r.timings.total()),
        ]);
    }
    println!("{}", t.render());
}

/// Fig. 13: CAPE's counterbalance explanations.
fn fig13(args: &Args) {
    println!("## Figure 13 — CAPE explanations (counterbalances)\n");
    let gen = nba_db(args.scale);
    for (uq, wid, col, sel, dir) in [
        (
            "UQ_cape1: why was GSW's win count HIGH in 2015-16?",
            "Q_nba4",
            "win",
            ("season_name", "2015-16"),
            Direction::High,
        ),
        (
            "UQ_cape2: why were LeBron's average points LOW in 2010-11?",
            "Q_nba3",
            "avg_pts",
            ("season_name", "2010-11"),
            Direction::Low,
        ),
    ] {
        let w = find_workload(wid);
        let result = cajade_query::execute(&gen.db, &w.query()).unwrap();
        let row = result.find_row(&gen.db, &[sel]).expect("question tuple");
        let expl = explain_outlier(
            &gen.db,
            &result,
            col,
            &CapeQuestion {
                row,
                direction: dir,
            },
            3,
        );
        println!("### {uq}");
        for (i, e) in expl.iter().enumerate() {
            println!("  {}. {} (residual {:+.2})", i + 1, e.rendered, e.residual);
        }
        println!();
    }
    println!(
        "CAPE returns opposite-direction outliers — orthogonal to CaJaDE's\n\
         context explanations (the paper's §5.6 takeaway).\n"
    );
}

fn case_params(args: &Args, cq: &CaseQuestion) -> Params {
    let mut p = Params::case_study();
    p.max_edges = args.edges;
    p.mining.forest_trees = 10;
    p.mining.lambda_f1_samp = 1.0; // exact metrics for the quality tables
    p.mining.banned_attrs = cq.banned.iter().map(|s| s.to_string()).collect();
    // Keep the per-graph search bounded: the wider λ#sel-attr=8 budget
    // explodes refinement otherwise.
    p.mining.num_frags = 4;
    p.mining.k_cat_patterns = 15;
    p.mining.max_patterns = 20_000;
    p.mining.top_k = 10;
    p
}

fn print_case_study(args: &Args, name: &str, gen: &GeneratedDb, cases: Vec<CaseQuestion>) {
    println!("## {name}\n");
    for cq in cases {
        let r = run_case(gen, &cq, case_params(args, &cq));
        println!("### {} — {}", cq.query_id, cq.description);
        let take = if args.top20 { 20 } else { 3 };
        for (i, e) in r.explanations.iter().take(take).enumerate() {
            println!("  {:>2}. {}", i + 1, e.render_line());
            if args.top20 {
                for edge in &e.graph_edges {
                    println!("      ⋈ {edge}");
                }
            }
        }
        println!();
    }
}

/// Table 4 (+ App. Figures 17–21 with --top20).
fn table4(args: &Args) {
    let gen = nba_db(args.scale);
    print_case_study(args, "Table 4 — NBA case study", &gen, nba_case_questions());
}

/// Table 6 (+ App. Figures 22–24 with --top20).
fn table6(args: &Args) {
    let gen = mimic_db(args.scale);
    print_case_study(
        args,
        "Table 6 — MIMIC case study",
        &gen,
        mimic_case_questions(),
    );
}

fn study_inputs(args: &Args) -> (Vec<StudyExplanation>, Vec<Vec<f64>>) {
    let gen = nba_db(args.scale);
    let w = find_workload("Q_nba4");
    let explanations = build_study_explanations(&gen, &w.query());
    let ratings = simulate_ratings(&explanations, 20, 5, 0x57D);
    (explanations, ratings)
}

/// Table 7: the ten explanations shown to raters.
fn table7(args: &Args) {
    println!("## Table 7 — user-study explanation sets (UQ1)\n");
    let (explanations, _) = study_inputs(args);
    println!("Provenance-based explanations:");
    for e in explanations.iter().filter(|e| !e.cajade_arm) {
        println!("  {}: {}", e.label, e.description);
    }
    println!("\nCaJaDE explanations:");
    for e in explanations.iter().filter(|e| e.cajade_arm) {
        println!("  {}: {}", e.label, e.description);
    }
    println!();
}

/// Table 8: simulated ratings + the explanations' quality metrics.
fn table8_cmd(args: &Args) {
    println!("## Table 8 — ratings (SIMULATED raters; see user_study docs) + metrics\n");
    let (explanations, ratings) = study_inputs(args);
    let t8 = table8(&ratings, 5);
    let mut t = Table::new(&[
        "",
        "mean(all)",
        "stdev",
        "mean(fans)",
        "mean(other)",
        "F-score",
        "recall",
        "precision",
    ]);
    for (e, row) in explanations.iter().zip(&t8.rows) {
        t.row(vec![
            e.label.clone(),
            format!("{:.2}", row.0),
            format!("{:.2}", row.1),
            format!("{:.2}", row.2),
            format!("{:.2}", row.3),
            format!("{:.2}", e.f_score),
            format!("{:.2}", e.recall),
            format!("{:.2}", e.precision),
        ]);
    }
    println!("{}", t.render());
    let cajade_mean = arm_mean(&t8.rows, &explanations, true);
    let prov_mean = arm_mean(&t8.rows, &explanations, false);
    println!(
        "arm means: CaJaDE {:.2} vs provenance-based {:.2}\n",
        cajade_mean, prov_mean
    );
}

fn arm_mean(rows: &[(f64, f64, f64, f64)], expl: &[StudyExplanation], cajade_arm: bool) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .zip(expl)
        .filter(|(_, e)| e.cajade_arm == cajade_arm)
        .map(|(r, _)| r.0)
        .collect();
    cajade_metrics::mean(&v)
}

/// Table 9: Kendall-tau / NDCG of metric-based rankings vs ratings.
fn table9_cmd(args: &Args) {
    println!("## Table 9 — ranking quality vs (SIMULATED) ratings\n");
    let (explanations, ratings) = study_inputs(args);
    let prov_idx: Vec<usize> = (0..explanations.len())
        .filter(|&i| !explanations[i].cajade_arm)
        .collect();
    let caj_idx: Vec<usize> = (0..explanations.len())
        .filter(|&i| explanations[i].cajade_arm)
        .collect();

    let metric =
        |f: fn(&StudyExplanation) -> f64| -> Vec<f64> { explanations.iter().map(f).collect() };
    let metrics: [(&str, Vec<f64>); 3] = [
        ("F-score", metric(|e| e.f_score)),
        ("recall", metric(|e| e.recall)),
        ("precision", metric(|e| e.precision)),
    ];

    let mut t = Table::new(&["metric", "arm", "Kendall pairs (All/-1)", "NDCG (All/-1)"]);
    for (name, scores) in &metrics {
        for (arm, idx) in [("prov", &prov_idx), ("CaJaDE", &caj_idx)] {
            let all = rank_quality(&ratings, scores, idx);
            let drop = most_controversial(&ratings, idx);
            let reduced: Vec<usize> = idx.iter().copied().filter(|&i| i != drop).collect();
            let minus1 = rank_quality(&ratings, scores, &reduced);
            t.row(vec![
                name.to_string(),
                arm.to_string(),
                format!("{:.2} / {:.2}", all.kendall_pairs, minus1.kendall_pairs),
                format!("{:.3} / {:.3}", all.ndcg, minus1.ndcg),
            ]);
        }
    }
    println!("{}", t.render());
}

/// Design-choice ablations: the §3/§4 optimizations toggled one at a time.
fn ablation(args: &Args) {
    println!("## Ablations — design choices (NBA Q1)\n");
    let gen = nba_db(args.scale);
    let cq = find_case("Q_nba4");

    let baseline = harness_params(args).with_f1_sample_rate(0.3);
    let base_run = run_case(&gen, &cq, baseline.clone());
    let truth: Vec<String> = base_run
        .explanations
        .iter()
        .take(10)
        .map(|e| format!("{}|{}", e.pattern_desc, e.primary))
        .collect();

    let mut variants: Vec<(&str, Params)> = vec![("baseline", baseline.clone())];
    variants.push((
        "no feature selection",
        baseline.clone().with_feature_selection(false),
    ));
    variants.push((
        "no F1 sampling (λF1=1)",
        baseline.clone().with_f1_sample_rate(1.0),
    ));
    let mut v = baseline.clone();
    v.mining.lambda_recall = 0.0;
    variants.push(("no recall pruning", v));
    let mut v = baseline.clone();
    v.check_pk_coverage = false;
    variants.push(("no PK-coverage check", v));
    let mut v = baseline.clone();
    v.collapse_near_duplicates = false;
    variants.push(("no duplicate collapse", v));
    let mut v = baseline.clone();
    v.mining.sel_attr = SelAttr::Count(6);
    variants.push(("λ#sel-attr = 6", v));

    let mut t = Table::new(&[
        "variant",
        "graphs mined",
        "patterns eval.",
        "runtime (s)",
        "top-10 overlap vs baseline",
    ]);
    for (name, params) in variants {
        let r = run_case(&gen, &cq, params);
        let predicted: Vec<String> = r
            .explanations
            .iter()
            .take(10)
            .map(|e| format!("{}|{}", e.pattern_desc, e.primary))
            .collect();
        t.row(vec![
            name.to_string(),
            r.num_graphs_mined.to_string(),
            r.patterns_evaluated.to_string(),
            secs(r.timings.total()),
            top_k_overlap(&truth, &predicted, 10).to_string(),
        ]);
    }
    println!("{}", t.render());
}
