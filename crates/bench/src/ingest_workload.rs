//! The ingestion round-trip workload: export a synthetic corpus to a CSV
//! directory (plus the `dataset.toml` facts CSV cannot carry), re-ingest
//! it with type/key inference and containment-based join discovery, and
//! compare the schema graphs by what actually matters — the set of join
//! graphs they enumerate.
//!
//! The exported manifest pins keys, kinds, and the joins containment
//! discovery cannot propose (composite conditions, self-joins); every
//! single-column join is left for discovery to recover. Parity between
//! the declared-schema and round-tripped enumerations therefore measures
//! discovery's recall *and* precision on a corpus with known ground
//! truth.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cajade_datagen::GeneratedDb;
use cajade_graph::{enumerate_join_graphs, EnumConfig, SchemaGraph};
use cajade_ingest::{export_csv_dir, ingest_dir, ExportOptions, IngestOptions, IngestedDataset};
use cajade_query::parse_sql;
use cajade_storage::Database;

use crate::workloads::nba_db;

/// The GSW-wins workload query the round-trip enumerates against.
pub const ROUND_TRIP_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

/// Outcome of one export→ingest round-trip.
pub struct RoundTrip {
    /// The generated corpus with its declared schema graph.
    pub declared: GeneratedDb,
    /// The re-ingested dataset (inferred schemas + pinned/discovered
    /// joins) and its report.
    pub ingested: IngestedDataset,
}

/// Exports `gen` to `dir` and ingests it back. The directory is created;
/// callers own cleanup.
pub fn round_trip(gen: GeneratedDb, dir: &Path) -> RoundTrip {
    export_csv_dir(&gen.db, &gen.schema_graph, dir, &ExportOptions::default()).expect("export");
    let ingested = ingest_dir(dir, &IngestOptions::default()).expect("ingest");
    RoundTrip {
        declared: gen,
        ingested,
    }
}

/// NBA round-trip at `scale` in a fresh temp directory (removed on drop
/// via [`TempDir`]).
pub fn nba_round_trip(scale: f64) -> (RoundTrip, TempDir) {
    let dir = TempDir::new("cajade_nba_roundtrip");
    (round_trip(nba_db(scale), &dir.0), dir)
}

/// Canonical keys of the *valid* join graphs `schema_graph` enumerates
/// for the workload query — the equivalence class the round-trip is
/// judged on. The provenance-table row count only feeds cost estimates,
/// so a nominal constant keeps this independent of query execution.
pub fn enumerated_keys(
    db: &Database,
    schema_graph: &SchemaGraph,
    max_edges: usize,
) -> BTreeSet<String> {
    enumerated_keys_for(db, schema_graph, ROUND_TRIP_SQL, max_edges)
}

/// [`enumerated_keys`] for an arbitrary workload query — the synthetic
/// scale-sweep corpora carry their own SQL ([`cajade_datagen::synth::SYNTH_SQL`]).
pub fn enumerated_keys_for(
    db: &Database,
    schema_graph: &SchemaGraph,
    sql: &str,
    max_edges: usize,
) -> BTreeSet<String> {
    let query = parse_sql(sql).expect("workload SQL");
    let cfg = EnumConfig {
        max_edges,
        ..EnumConfig::default()
    };
    enumerate_join_graphs(schema_graph, db, &query, 100, &cfg)
        .expect("enumerate")
        .into_iter()
        .filter(|g| g.valid)
        .map(|g| g.graph.semantic_key())
        .collect()
}

/// A mkdir-on-new, remove-on-drop temp directory (no tempfile crate in
/// the offline build environment).
pub struct TempDir(pub PathBuf);

impl TempDir {
    /// Creates `$TMPDIR/<prefix>_<pid>_<seq>`.
    pub fn new(prefix: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("{prefix}_{}_{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}
