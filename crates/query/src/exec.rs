//! Query evaluation: selection pushdown, hash equi-joins over the FROM
//! list, residual filters, and hash aggregation.
//!
//! The intermediate representation is a flattened row-id matrix
//! ([`Joined`]): for every surviving combination, one `u32` row id per FROM
//! entry. Provenance capture ([`crate::ProvenanceTable`]) reuses the same
//! evaluation, so the provenance is by construction exactly the
//! why-provenance of the aggregation (Definition 1).

use std::collections::HashMap;

use bytes::BytesMut;
use cajade_storage::rowkey::{encode_group_key, encode_key_into};
use cajade_storage::{AttrKind, DataType, Database, Table, Value};

use crate::ast::*;
use crate::{QueryError, Result};

/// A resolved column: FROM-entry index + column index within that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BoundCol {
    pub from_idx: usize,
    pub col_idx: usize,
}

/// Column-resolution context for a query.
pub(crate) struct Binder<'a> {
    pub db: &'a Database,
    pub query: &'a Query,
    /// Base tables in FROM order.
    pub tables: Vec<&'a Table>,
}

impl<'a> Binder<'a> {
    pub fn new(db: &'a Database, query: &'a Query) -> Result<Self> {
        let mut tables = Vec::with_capacity(query.from.len());
        for t in &query.from {
            tables.push(db.table(&t.table)?);
        }
        // Alias uniqueness.
        for (i, a) in query.from.iter().enumerate() {
            for b in &query.from[i + 1..] {
                if a.alias == b.alias {
                    return Err(QueryError::Unsupported(format!(
                        "duplicate alias `{}` in FROM",
                        a.alias
                    )));
                }
            }
        }
        Ok(Self { db, query, tables })
    }

    /// Resolves a column reference to its FROM entry and column index.
    pub fn bind(&self, col: &ColRef) -> Result<BoundCol> {
        match &col.qualifier {
            Some(q) => {
                let from_idx = self
                    .query
                    .from
                    .iter()
                    .position(|t| t.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| QueryError::UnknownAlias(q.clone()))?;
                let col_idx = self.tables[from_idx]
                    .schema()
                    .field_index(&col.column)
                    .ok_or_else(|| QueryError::UnknownColumn(col.to_string()))?;
                Ok(BoundCol { from_idx, col_idx })
            }
            None => {
                let mut hit = None;
                for (from_idx, t) in self.tables.iter().enumerate() {
                    if let Some(col_idx) = t.schema().field_index(&col.column) {
                        if hit.is_some() {
                            return Err(QueryError::AmbiguousColumn(col.column.clone()));
                        }
                        hit = Some(BoundCol { from_idx, col_idx });
                    }
                }
                hit.ok_or_else(|| QueryError::UnknownColumn(col.column.clone()))
            }
        }
    }

    /// Interns/resolves a literal into a runtime [`Value`]. Unknown string
    /// literals resolve to a value that matches nothing (id lookup miss).
    pub fn literal_value(&self, lit: &Literal) -> Option<Value> {
        match lit {
            Literal::Int(i) => Some(Value::Int(*i)),
            Literal::Float(f) => Some(Value::Float(*f)),
            Literal::Str(s) => self.db.lookup_str(s).map(Value::Str),
        }
    }
}

/// Flattened join result: `data[row * stride + k]` is the row id in FROM
/// entry `k` for surviving combination `row`.
#[derive(Debug, Clone)]
pub(crate) struct Joined {
    pub stride: usize,
    pub data: Vec<u32>,
}

impl Joined {
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }
}

/// Classified predicates after binding.
struct Classified {
    /// Per-FROM-entry single-table predicates (literal comparisons and
    /// intra-table column comparisons) — pushed down before joining.
    per_entry: Vec<Vec<EntryPred>>,
    /// Cross-entry equality predicates, used for hash joins.
    equi: Vec<(BoundCol, BoundCol)>,
    /// Cross-entry non-equality predicates — residual filters.
    residual: Vec<(BoundCol, CmpOp, BoundCol)>,
}

enum EntryPred {
    Lit(usize, CmpOp, Value),
    /// Literal string that is not in the pool: matches nothing for Eq,
    /// everything for Ne (SQL three-valued logic collapsed: unknown strings
    /// are simply absent from the data).
    ImpossibleEq,
    Cols(usize, CmpOp, usize),
}

fn classify(binder: &Binder<'_>) -> Result<Classified> {
    let n = binder.query.from.len();
    let mut per_entry: Vec<Vec<EntryPred>> = (0..n).map(|_| Vec::new()).collect();
    let mut equi = Vec::new();
    let mut residual = Vec::new();

    for p in &binder.query.predicates {
        match p {
            Predicate::ColLit(col, op, lit) => {
                let b = binder.bind(col)?;
                match binder.literal_value(lit) {
                    Some(v) => per_entry[b.from_idx].push(EntryPred::Lit(b.col_idx, *op, v)),
                    None => {
                        // Unknown interned string.
                        if *op == CmpOp::Eq {
                            per_entry[b.from_idx].push(EntryPred::ImpossibleEq);
                        }
                        // For Ne against an unknown string every non-null row
                        // passes; nulls fail but comparing Null via sql
                        // semantics already fails, handled below by treating
                        // the predicate as absent — acceptable for this
                        // query class.
                    }
                }
            }
            Predicate::ColCol(a, op, b) => {
                let ba = binder.bind(a)?;
                let bb = binder.bind(b)?;
                if ba.from_idx == bb.from_idx {
                    per_entry[ba.from_idx].push(EntryPred::Cols(ba.col_idx, *op, bb.col_idx));
                } else if *op == CmpOp::Eq {
                    equi.push((ba, bb));
                } else {
                    residual.push((ba, *op, bb));
                }
            }
        }
    }
    Ok(Classified {
        per_entry,
        equi,
        residual,
    })
}

/// Evaluates the FROM/WHERE part of the query, returning surviving row-id
/// combinations.
pub(crate) fn join_rows(binder: &Binder<'_>) -> Result<Joined> {
    let classified = classify(binder)?;
    let n = binder.query.from.len();

    // Selection pushdown: candidate row ids per FROM entry.
    let mut candidates: Vec<Vec<u32>> = Vec::with_capacity(n);
    for (idx, table) in binder.tables.iter().enumerate() {
        let preds = &classified.per_entry[idx];
        let mut rows = Vec::new();
        'rows: for r in 0..table.num_rows() {
            for p in preds {
                match p {
                    EntryPred::ImpossibleEq => continue 'rows,
                    EntryPred::Lit(c, op, v) => {
                        let cell = table.column(*c).value(r);
                        if cell.is_null() {
                            continue 'rows;
                        }
                        if !op.eval(cell.total_cmp(v)) {
                            continue 'rows;
                        }
                    }
                    EntryPred::Cols(a, op, b) => {
                        let va = table.column(*a).value(r);
                        let vb = table.column(*b).value(r);
                        if va.is_null() || vb.is_null() {
                            continue 'rows;
                        }
                        if !op.eval(va.total_cmp(&vb)) {
                            continue 'rows;
                        }
                    }
                }
            }
            rows.push(r as u32);
        }
        candidates.push(rows);
    }

    // Iteratively join entries 0..n in FROM order.
    let mut joined = Joined {
        stride: 1,
        data: candidates[0].clone(),
    };

    let mut scratch = BytesMut::new();
    #[allow(clippy::needless_range_loop)] // k indexes tables, candidates, and combos in lockstep
    for k in 1..n {
        let table_k = binder.tables[k];
        // Equi-join conditions connecting entry k to entries < k
        // (normalized so `.0` is the earlier side and `.1` is entry k).
        let conds: Vec<(BoundCol, BoundCol)> = classified
            .equi
            .iter()
            .filter_map(|(a, b)| {
                if a.from_idx == k && b.from_idx < k {
                    Some((*b, *a))
                } else if b.from_idx == k && a.from_idx < k {
                    Some((*a, *b))
                } else {
                    None
                }
            })
            .collect();

        let mut next = Vec::new();
        if conds.is_empty() {
            // Cross join with candidates of k.
            for i in 0..joined.num_rows() {
                for &r in &candidates[k] {
                    next.extend_from_slice(joined.row(i));
                    next.push(r);
                }
            }
        } else {
            // Build hash table on entry k side.
            let mut build: HashMap<Vec<u8>, Vec<u32>> = HashMap::with_capacity(candidates[k].len());
            let key_cols_k: Vec<usize> = conds.iter().map(|(_, b)| b.col_idx).collect();
            let mut key_vals = Vec::with_capacity(key_cols_k.len());
            for &r in &candidates[k] {
                key_vals.clear();
                for &c in &key_cols_k {
                    key_vals.push(table_k.column(c).value(r as usize));
                }
                if let Some(key) = encode_key_into(&mut scratch, &key_vals) {
                    build.entry(key.to_vec()).or_default().push(r);
                }
            }
            // Probe with earlier combinations.
            let probe_cols: Vec<BoundCol> = conds.iter().map(|(a, _)| *a).collect();
            for i in 0..joined.num_rows() {
                let row = joined.row(i);
                key_vals.clear();
                for bc in &probe_cols {
                    let base_row = row[bc.from_idx] as usize;
                    key_vals.push(
                        binder.tables[bc.from_idx]
                            .column(bc.col_idx)
                            .value(base_row),
                    );
                }
                let Some(key) = encode_key_into(&mut scratch, &key_vals) else {
                    continue;
                };
                if let Some(matches) = build.get(key) {
                    for &r in matches {
                        next.extend_from_slice(row);
                        next.push(r);
                    }
                }
            }
        }
        joined = Joined {
            stride: k + 1,
            data: next,
        };
    }

    // Residual cross-entry non-equality predicates.
    if !classified.residual.is_empty() {
        let mut filtered = Vec::with_capacity(joined.data.len());
        'combo: for i in 0..joined.num_rows() {
            let row = joined.row(i);
            for (a, op, b) in &classified.residual {
                let va = binder.tables[a.from_idx]
                    .column(a.col_idx)
                    .value(row[a.from_idx] as usize);
                let vb = binder.tables[b.from_idx]
                    .column(b.col_idx)
                    .value(row[b.from_idx] as usize);
                if va.is_null() || vb.is_null() || !op.eval(va.total_cmp(&vb)) {
                    continue 'combo;
                }
            }
            filtered.extend_from_slice(row);
        }
        joined.data = filtered;
    }

    Ok(joined)
}

/// Grouping of joined rows by the GROUP BY key.
pub(crate) struct Grouping {
    /// Joined-row → group index.
    pub group_of: Vec<u32>,
    /// Group key values, one vector per group, in first-seen order.
    pub keys: Vec<Vec<Value>>,
}

pub(crate) fn group(binder: &Binder<'_>, joined: &Joined) -> Result<Grouping> {
    let bound_keys: Vec<BoundCol> = binder
        .query
        .group_by
        .iter()
        .map(|c| binder.bind(c))
        .collect::<Result<_>>()?;

    let mut by_key: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut group_of = Vec::with_capacity(joined.num_rows());

    let mut key_vals = Vec::with_capacity(bound_keys.len());
    for i in 0..joined.num_rows() {
        let row = joined.row(i);
        key_vals.clear();
        for bc in &bound_keys {
            key_vals.push(
                binder.tables[bc.from_idx]
                    .column(bc.col_idx)
                    .value(row[bc.from_idx] as usize),
            );
        }
        let key = encode_group_key(&key_vals);
        let g = *by_key.entry(key).or_insert_with(|| {
            keys.push(key_vals.clone());
            (keys.len() - 1) as u32
        });
        group_of.push(g);
    }
    Ok(Grouping { group_of, keys })
}

/// Result of executing a query: an output table whose first columns are the
/// GROUP BY attributes (schema order of the query) followed by the
/// aggregates.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output rows.
    pub table: Table,
    /// Names of the group-by columns in the output.
    pub group_cols: Vec<String>,
    /// Names of the aggregate columns in the output.
    pub agg_cols: Vec<String>,
}

impl QueryResult {
    /// Number of output tuples.
    pub fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Finds the output tuple whose listed columns render (via `db`'s pool)
    /// to the given strings. Numeric cells compare numerically.
    pub fn find_row(&self, db: &Database, wanted: &[(&str, &str)]) -> Option<usize> {
        'rows: for r in 0..self.table.num_rows() {
            for (col, text) in wanted {
                let idx = self.table.schema().field_index(col)?;
                let cell = self.table.value(r, idx);
                let matches = match cell {
                    Value::Str(id) => db.resolve(id) == *text,
                    Value::Int(i) => text.parse::<i64>().is_ok_and(|t| t == i),
                    Value::Float(f) => text.parse::<f64>().is_ok_and(|t| (t - f).abs() < 1e-9),
                    Value::Null => text.eq_ignore_ascii_case("null"),
                };
                if !matches {
                    continue 'rows;
                }
            }
            return Some(r);
        }
        None
    }

    /// Renders the result as an aligned text table (examples / harness).
    pub fn render(&self, db: &Database) -> String {
        let schema = self.table.schema();
        let mut widths: Vec<usize> = schema.fields.iter().map(|f| f.name.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.table.num_rows());
        for r in 0..self.table.num_rows() {
            let row: Vec<String> = (0..schema.arity())
                .map(|c| self.table.value(r, c).render(db.pool()))
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (i, f) in schema.fields.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", f.name, w = widths[i]));
        }
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Executes a query against `db`.
pub fn execute(db: &Database, query: &Query) -> Result<QueryResult> {
    let binder = Binder::new(db, query)?;
    let joined = join_rows(&binder)?;
    let grouping = group(&binder, &joined)?;
    aggregate(&binder, &joined, &grouping)
}

fn agg_output_type(binder: &Binder<'_>, func: &AggFunc) -> Result<DataType> {
    Ok(match func {
        AggFunc::CountStar | AggFunc::Count(_) => DataType::Int,
        AggFunc::Avg(_) | AggFunc::RateSumCount(_) => DataType::Float,
        AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => {
            let b = binder.bind(c)?;
            let dt = binder.tables[b.from_idx].schema().fields[b.col_idx].dtype;
            if dt == DataType::Str {
                return Err(QueryError::BadAggregate(format!(
                    "cannot aggregate string column `{c}`"
                )));
            }
            dt
        }
    })
}

fn aggregate(binder: &Binder<'_>, joined: &Joined, grouping: &Grouping) -> Result<QueryResult> {
    let num_groups = grouping.keys.len();

    // Output schema: group-by columns then aggregates.
    let mut fields: Vec<(String, DataType, AttrKind)> = Vec::new();
    let mut group_cols = Vec::new();
    for col in &binder.query.group_by {
        let b = binder.bind(col)?;
        let f = &binder.tables[b.from_idx].schema().fields[b.col_idx];
        group_cols.push(f.name.clone());
        fields.push((f.name.clone(), f.dtype, f.kind));
    }
    let mut agg_cols = Vec::new();
    for agg in &binder.query.aggregates {
        agg_cols.push(agg.alias.clone());
        fields.push((
            agg.alias.clone(),
            agg_output_type(binder, &agg.func)?,
            AttrKind::Numeric,
        ));
    }

    // Accumulators: per aggregate, per group.
    #[derive(Clone, Copy)]
    struct Acc {
        count: u64,
        nonnull: u64,
        sum: f64,
        min: f64,
        max: f64,
    }
    let zero = Acc {
        count: 0,
        nonnull: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };
    let bound_args: Vec<Option<BoundCol>> = binder
        .query
        .aggregates
        .iter()
        .map(|a| match &a.func {
            AggFunc::CountStar => Ok(None),
            AggFunc::Count(c)
            | AggFunc::Sum(c)
            | AggFunc::Avg(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c)
            | AggFunc::RateSumCount(c) => binder.bind(c).map(Some),
        })
        .collect::<Result<_>>()?;

    let mut accs: Vec<Vec<Acc>> = vec![vec![zero; num_groups]; binder.query.aggregates.len()];
    for i in 0..joined.num_rows() {
        let g = grouping.group_of[i] as usize;
        let row = joined.row(i);
        for (ai, arg) in bound_args.iter().enumerate() {
            let acc = &mut accs[ai][g];
            acc.count += 1;
            if let Some(bc) = arg {
                let v = binder.tables[bc.from_idx]
                    .column(bc.col_idx)
                    .value(row[bc.from_idx] as usize);
                if let Some(x) = v.as_f64() {
                    acc.nonnull += 1;
                    acc.sum += x;
                    acc.min = acc.min.min(x);
                    acc.max = acc.max.max(x);
                }
            }
        }
    }

    // Materialize output table.
    let mut sb = cajade_storage::SchemaBuilder::new("query_result");
    for (name, dtype, kind) in &fields {
        sb = sb.column(name.clone(), *dtype, *kind);
    }
    let mut table = Table::with_capacity(sb.build(), num_groups);
    #[allow(clippy::needless_range_loop)]
    // g indexes both group keys and per-aggregate accumulators
    for g in 0..num_groups {
        let mut row: Vec<Value> = grouping.keys[g].clone();
        for (ai, agg) in binder.query.aggregates.iter().enumerate() {
            let acc = &accs[ai][g];
            let v = match &agg.func {
                AggFunc::CountStar => Value::Int(acc.count as i64),
                AggFunc::Count(_) => Value::Int(acc.nonnull as i64),
                AggFunc::Sum(c) => {
                    let b = binder.bind(c)?;
                    match binder.tables[b.from_idx].schema().fields[b.col_idx].dtype {
                        DataType::Int => Value::Int(acc.sum as i64),
                        _ => Value::Float(acc.sum),
                    }
                }
                AggFunc::Avg(_) => {
                    if acc.nonnull == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sum / acc.nonnull as f64)
                    }
                }
                AggFunc::RateSumCount(_) => {
                    if acc.count == 0 {
                        Value::Null
                    } else {
                        Value::Float(acc.sum / acc.count as f64)
                    }
                }
                AggFunc::Min(c) => {
                    if acc.nonnull == 0 {
                        Value::Null
                    } else {
                        let b = binder.bind(c)?;
                        match binder.tables[b.from_idx].schema().fields[b.col_idx].dtype {
                            DataType::Int => Value::Int(acc.min as i64),
                            _ => Value::Float(acc.min),
                        }
                    }
                }
                AggFunc::Max(c) => {
                    if acc.nonnull == 0 {
                        Value::Null
                    } else {
                        let b = binder.bind(c)?;
                        match binder.tables[b.from_idx].schema().fields[b.col_idx].dtype {
                            DataType::Int => Value::Int(acc.max as i64),
                            _ => Value::Float(acc.max),
                        }
                    }
                }
            };
            row.push(v);
        }
        table.push_row(row)?;
    }

    Ok(QueryResult {
        table,
        group_cols,
        agg_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sql;
    use cajade_storage::{AttrKind, DataType, SchemaBuilder};

    /// Tiny two-season NBA-flavoured database.
    fn mini_db() -> Database {
        let mut db = Database::new("mini");
        db.create_table(
            SchemaBuilder::new("team")
                .column_pk("team_id", DataType::Int, AttrKind::Categorical)
                .column("team", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("game_id", DataType::Int, AttrKind::Categorical)
                .column("winner_id", DataType::Int, AttrKind::Categorical)
                .column("season", DataType::Str, AttrKind::Categorical)
                .column("home_points", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let gsw = db.intern("GSW");
        let mia = db.intern("MIA");
        let s12 = db.intern("2012-13");
        let s15 = db.intern("2015-16");
        db.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(1), Value::Str(gsw)])
            .unwrap();
        db.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(2), Value::Str(mia)])
            .unwrap();
        let games = [
            (1, 1, s12, 100),
            (2, 1, s12, 90),
            (3, 2, s12, 95),
            (4, 1, s15, 110),
            (5, 1, s15, 120),
            (6, 1, s15, 105),
            (7, 2, s15, 99),
        ];
        for (id, w, s, p) in games {
            db.table_mut("game")
                .unwrap()
                .push_row(vec![
                    Value::Int(id),
                    Value::Int(w),
                    Value::Str(s),
                    Value::Int(p),
                ])
                .unwrap();
        }
        db
    }

    #[test]
    fn count_star_group_by() {
        let db = mini_db();
        let q = parse_sql(
            "SELECT count(*) AS win, g.season FROM team t, game g \
             WHERE t.team_id = g.winner_id AND t.team = 'GSW' GROUP BY g.season",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.num_rows(), 2);
        let r12 = r.find_row(&db, &[("season", "2012-13")]).unwrap();
        let r15 = r.find_row(&db, &[("season", "2015-16")]).unwrap();
        let win_idx = r.table.schema().field_index("win").unwrap();
        assert_eq!(r.table.value(r12, win_idx), Value::Int(2));
        assert_eq!(r.table.value(r15, win_idx), Value::Int(3));
    }

    #[test]
    fn avg_and_minmax() {
        let db = mini_db();
        let q = parse_sql(
            "SELECT avg(home_points) AS ap, min(home_points) AS mn, max(home_points) AS mx, \
             season FROM game GROUP BY season",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        let r15 = r.find_row(&db, &[("season", "2015-16")]).unwrap();
        let ap = r
            .table
            .value(r15, r.table.schema().field_index("ap").unwrap());
        assert_eq!(ap, Value::Float((110 + 120 + 105 + 99) as f64 / 4.0));
        let mn = r
            .table
            .value(r15, r.table.schema().field_index("mn").unwrap());
        assert_eq!(mn, Value::Int(99));
        let mx = r
            .table
            .value(r15, r.table.schema().field_index("mx").unwrap());
        assert_eq!(mx, Value::Int(120));
    }

    #[test]
    fn rate_sum_count() {
        let mut db = Database::new("m");
        db.create_table(
            SchemaBuilder::new("admissions")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .column("insurance", DataType::Str, AttrKind::Categorical)
                .column("dead", DataType::Int, AttrKind::Numeric)
                .build(),
        )
        .unwrap();
        let med = db.intern("Medicare");
        let prv = db.intern("Private");
        for (i, ins, d) in [
            (1, med, 1),
            (2, med, 0),
            (3, med, 1),
            (4, med, 0),
            (5, prv, 0),
            (6, prv, 1),
        ] {
            db.table_mut("admissions")
                .unwrap()
                .push_row(vec![Value::Int(i), Value::Str(ins), Value::Int(d)])
                .unwrap();
        }
        let q = parse_sql(
            "SELECT insurance, 1.0*sum(dead)/count(*) AS death_rate \
             FROM admissions GROUP BY insurance",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        let m = r.find_row(&db, &[("insurance", "Medicare")]).unwrap();
        let dr = r
            .table
            .value(m, r.table.schema().field_index("death_rate").unwrap());
        assert_eq!(dr, Value::Float(0.5));
    }

    #[test]
    fn unknown_string_literal_matches_nothing() {
        let db = mini_db();
        let q = parse_sql(
            "SELECT count(*) AS c, season FROM game, team \
             WHERE team_id = winner_id AND team = 'NOPE' GROUP BY season",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    fn cross_join_when_no_equi_pred() {
        let db = mini_db();
        let q = parse_sql("SELECT count(*) AS c FROM team, game GROUP BY team").unwrap();
        let r = execute(&db, &q).unwrap();
        // Two teams, each paired with all 7 games.
        assert_eq!(r.num_rows(), 2);
        let idx = r.table.schema().field_index("c").unwrap();
        assert_eq!(r.table.value(0, idx), Value::Int(7));
        assert_eq!(r.table.value(1, idx), Value::Int(7));
    }

    #[test]
    fn residual_non_eq_join_pred() {
        let db = mini_db();
        // Pair each game with strictly-higher-scoring games.
        let q = parse_sql(
            "SELECT count(*) AS c, a.game_id FROM game a, game b \
             WHERE a.home_points < b.home_points GROUP BY a.game_id",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        // Game 5 (120 pts, the max) pairs with nothing → absent from output.
        assert!(r.find_row(&db, &[("game_id", "5")]).is_none());
        // Game 2 (90 pts, the min) pairs with all 6 others.
        let g2 = r.find_row(&db, &[("game_id", "2")]).unwrap();
        let c = r
            .table
            .value(g2, r.table.schema().field_index("c").unwrap());
        assert_eq!(c, Value::Int(6));
    }

    #[test]
    fn ambiguous_column_is_error() {
        let mut db = mini_db();
        // Add a second table that also has `season`.
        db.create_table(
            SchemaBuilder::new("other")
                .column("season", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let q = parse_sql("SELECT count(*) AS c FROM game, other GROUP BY season").unwrap();
        assert!(matches!(
            execute(&db, &q),
            Err(QueryError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn duplicate_alias_is_error() {
        let db = mini_db();
        let q = parse_sql("SELECT count(*) AS c FROM game g, team g GROUP BY season").unwrap();
        assert!(matches!(execute(&db, &q), Err(QueryError::Unsupported(_))));
    }

    #[test]
    fn render_produces_header_and_rows() {
        let db = mini_db();
        let q = parse_sql("SELECT count(*) AS c, season FROM game GROUP BY season").unwrap();
        let r = execute(&db, &q).unwrap();
        let text = r.render(&db);
        assert!(text.contains("season"));
        assert!(text.contains("2015-16"));
    }
}
