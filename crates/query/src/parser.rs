//! A hand-written tokenizer + recursive-descent parser for the paper's SQL
//! subset:
//!
//! ```sql
//! SELECT <agg | col> [AS alias] (, ...)*
//! FROM   <table> [alias] (, <table> [alias])*
//! [WHERE <pred> (AND <pred>)*]
//! [GROUP BY <col> (, <col>)*]
//! ```
//!
//! Aggregates: `COUNT(*)`, `COUNT(col)`, `SUM`, `AVG`, `MIN`, `MAX`, and the
//! rate form `[1.0 *] SUM(col) / COUNT(*)` used by the MIMIC death-rate
//! queries. Predicates compare a column against a column or a literal with
//! `=, <>, !=, <, <=, >, >=`.

use crate::ast::*;
use crate::{QueryError, Result};

/// Parses a SQL string into a [`Query`].
///
/// ```
/// use cajade_query::parse_sql;
/// let q = parse_sql(
///     "SELECT count(*) AS win, s.season_name \
///      FROM team t, game g, season s \
///      WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
///        AND t.team = 'GSW' \
///      GROUP BY s.season_name",
/// ).unwrap();
/// assert_eq!(q.from.len(), 3);
/// assert_eq!(q.group_by.len(), 1);
/// ```
pub fn parse_sql(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    Parser {
        tokens,
        pos: 0,
        sql_len: sql.len(),
    }
    .parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(&'static str),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    offset: usize,
}

fn tokenize(sql: &str) -> Result<Vec<SpannedTok>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '\'' => {
                // Single-quoted string, '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(QueryError::Parse {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Number(sql[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(sql[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedTok {
                        tok: Tok::Symbol("<="),
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(SpannedTok {
                        tok: Tok::Symbol("<>"),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Symbol("<"),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedTok {
                        tok: Tok::Symbol(">="),
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(SpannedTok {
                        tok: Tok::Symbol(">"),
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(SpannedTok {
                        tok: Tok::Symbol("!="),
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Parse {
                        message: "unexpected `!`".into(),
                        offset: start,
                    });
                }
            }
            '=' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol("="),
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                // Negative numeric literal: consume the digits directly so
                // `x = -5` and `y <= -1.5` parse (no binary minus in this
                // query class).
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(QueryError::Parse {
                        message: "expected digits after `-`".into(),
                        offset: start,
                    });
                }
                out.push(SpannedTok {
                    tok: Tok::Number(sql[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '*' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol("*"),
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol("/"),
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol(","),
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol("("),
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol(")"),
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(SpannedTok {
                    tok: Tok::Symbol("."),
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                // Trailing semicolons are allowed and ignored.
                i += 1;
            }
            other => {
                return Err(QueryError::Parse {
                    message: format!("unexpected character `{other}`"),
                    offset: start,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    sql_len: usize,
}

/// A SELECT-list item before aggregate/group-by classification.
enum SelectItem {
    Agg(AggFunc),
    Col(ColRef),
}

impl Parser {
    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.sql_len)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    /// Case-insensitive keyword check.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(id)) => Ok(id),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected identifier")
            }
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        if !self.eat_keyword("select") {
            return self.err("expected SELECT");
        }
        let mut items: Vec<(SelectItem, Option<String>)> = Vec::new();
        loop {
            let item = self.parse_select_item()?;
            let alias = if self.eat_keyword("as") {
                Some(self.expect_ident()?)
            } else {
                None
            };
            items.push((item, alias));
            if !self.eat_symbol(",") {
                break;
            }
        }

        if !self.eat_keyword("from") {
            return self.err("expected FROM");
        }
        let mut from = Vec::new();
        loop {
            let table = self.expect_ident()?;
            // Optional alias: next ident that is not a keyword.
            let alias = match self.peek() {
                Some(Tok::Ident(id))
                    if !["where", "group", "order", "as"]
                        .iter()
                        .any(|k| id.eq_ignore_ascii_case(k)) =>
                {
                    let a = id.clone();
                    self.pos += 1;
                    a
                }
                _ => table.clone(),
            };
            from.push(TableRef { table, alias });
            if !self.eat_symbol(",") {
                break;
            }
        }

        let mut predicates = Vec::new();
        if self.eat_keyword("where") {
            loop {
                predicates.push(self.parse_predicate()?);
                if !self.eat_keyword("and") {
                    break;
                }
            }
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            if !self.eat_keyword("by") {
                return self.err("expected BY after GROUP");
            }
            loop {
                group_by.push(self.parse_colref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        if self.pos != self.tokens.len() {
            return self.err("unexpected trailing tokens");
        }

        // Classify SELECT items: aggregates get aliases (default agg1, …);
        // plain columns must appear in GROUP BY (checked at bind time).
        let mut aggregates = Vec::new();
        for (idx, (item, alias)) in items.into_iter().enumerate() {
            match item {
                SelectItem::Agg(func) => aggregates.push(Aggregate {
                    func,
                    alias: alias.unwrap_or_else(|| format!("agg{}", idx + 1)),
                }),
                SelectItem::Col(col) => {
                    // Non-aggregate select item: it must be one of the
                    // group-by columns (paper's query class). We accept and
                    // ignore it — the output always carries all group-by
                    // columns.
                    if !group_by.iter().any(|g| g.column == col.column) {
                        return Err(QueryError::Unsupported(format!(
                            "non-aggregate SELECT item `{col}` is not in GROUP BY"
                        )));
                    }
                }
            }
        }
        if aggregates.is_empty() {
            return Err(QueryError::Unsupported(
                "query must contain at least one aggregate".into(),
            ));
        }

        Ok(Query {
            from,
            predicates,
            group_by,
            aggregates,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        // Optional numeric coefficient: `1.0 * SUM(..) / COUNT(*)`.
        if let Some(Tok::Number(_)) = self.peek() {
            self.pos += 1;
            self.expect_symbol("*")?;
            let func = self.parse_agg_func()?;
            return self.maybe_rate(func);
        }
        if let Some(Tok::Ident(id)) = self.peek() {
            let lower = id.to_ascii_lowercase();
            if ["count", "sum", "avg", "min", "max"].contains(&lower.as_str()) {
                let func = self.parse_agg_func()?;
                return self.maybe_rate(func);
            }
        }
        let col = self.parse_colref()?;
        Ok(SelectItem::Col(col))
    }

    /// After a SUM aggregate, check for `/ COUNT(*)` to form the rate form.
    fn maybe_rate(&mut self, func: AggFunc) -> Result<SelectItem> {
        if self.eat_symbol("/") {
            let denom = self.parse_agg_func()?;
            match (func, denom) {
                (AggFunc::Sum(col), AggFunc::CountStar) => {
                    Ok(SelectItem::Agg(AggFunc::RateSumCount(col)))
                }
                _ => self.err("only SUM(col) / COUNT(*) is supported as a ratio"),
            }
        } else {
            Ok(SelectItem::Agg(func))
        }
    }

    fn parse_agg_func(&mut self) -> Result<AggFunc> {
        let name = self.expect_ident()?.to_ascii_lowercase();
        self.expect_symbol("(")?;
        let func = match name.as_str() {
            "count" => {
                if self.eat_symbol("*") {
                    AggFunc::CountStar
                } else {
                    AggFunc::Count(self.parse_colref()?)
                }
            }
            "sum" => AggFunc::Sum(self.parse_colref()?),
            "avg" => AggFunc::Avg(self.parse_colref()?),
            "min" => AggFunc::Min(self.parse_colref()?),
            "max" => AggFunc::Max(self.parse_colref()?),
            other => return self.err(format!("unknown aggregate `{other}`")),
        };
        self.expect_symbol(")")?;
        Ok(func)
    }

    fn parse_colref(&mut self) -> Result<ColRef> {
        let first = self.expect_ident()?;
        if self.eat_symbol(".") {
            let col = self.expect_ident()?;
            Ok(ColRef::qualified(first, col))
        } else {
            Ok(ColRef::new(first))
        }
    }

    fn parse_predicate(&mut self) -> Result<Predicate> {
        let lhs = self.parse_colref()?;
        let op = match self.next() {
            Some(Tok::Symbol("=")) => CmpOp::Eq,
            Some(Tok::Symbol("<>")) | Some(Tok::Symbol("!=")) => CmpOp::Ne,
            Some(Tok::Symbol("<")) => CmpOp::Lt,
            Some(Tok::Symbol("<=")) => CmpOp::Le,
            Some(Tok::Symbol(">")) => CmpOp::Gt,
            Some(Tok::Symbol(">=")) => CmpOp::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return self.err("expected comparison operator");
            }
        };
        match self.peek() {
            Some(Tok::Number(n)) => {
                let lit = if n.contains('.') {
                    Literal::Float(n.parse().map_err(|_| QueryError::Parse {
                        message: format!("bad number `{n}`"),
                        offset: self.offset(),
                    })?)
                } else {
                    Literal::Int(n.parse().map_err(|_| QueryError::Parse {
                        message: format!("bad number `{n}`"),
                        offset: self.offset(),
                    })?)
                };
                self.pos += 1;
                Ok(Predicate::ColLit(lhs, op, lit))
            }
            Some(Tok::Str(s)) => {
                let lit = Literal::Str(s.clone());
                self.pos += 1;
                Ok(Predicate::ColLit(lhs, op, lit))
            }
            Some(Tok::Ident(_)) => {
                let rhs = self.parse_colref()?;
                Ok(Predicate::ColCol(lhs, op, rhs))
            }
            _ => self.err("expected literal or column after operator"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        // Q1 from Example 1 (modulo the simplified schema's column names).
        let q = parse_sql(
            "SELECT winner as team, season, count(*) as win \
             FROM Game g WHERE winner = 'GSW' GROUP BY winner, season",
        )
        .unwrap();
        assert_eq!(q.from, vec![TableRef::aliased("Game", "g")]);
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.aggregates.len(), 1);
        assert!(matches!(q.aggregates[0].func, AggFunc::CountStar));
        assert_eq!(q.aggregates[0].alias, "win");
        assert_eq!(
            q.predicates,
            vec![Predicate::ColLit(
                ColRef::new("winner"),
                CmpOp::Eq,
                Literal::Str("GSW".into())
            )]
        );
    }

    #[test]
    fn parses_rate_query() {
        // Q_mimi2: death rate by insurance.
        let q = parse_sql(
            "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
             FROM admissions GROUP BY insurance;",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 1);
        assert!(matches!(
            q.aggregates[0].func,
            AggFunc::RateSumCount(ref c) if c.column == "hospital_expire_flag"
        ));
        assert_eq!(q.aggregates[0].alias, "death_rate");
    }

    #[test]
    fn parses_rate_without_coefficient() {
        let q = parse_sql(
            "SELECT sum(isdead)/count(*) AS death_rate, count(*) AS admit_cnt \
             FROM Admissions GROUP BY insurance",
        );
        // `insurance` group-by column not in SELECT is fine; but here
        // SELECT has no bare columns at all, also fine.
        let q = q.unwrap();
        assert_eq!(q.aggregates.len(), 2);
    }

    #[test]
    fn parses_multi_join_avg() {
        let q = parse_sql(
            "SELECT AVG(points) as avp_pts, s.season_name \
             FROM player p, player_game_stats pgs, game g, season s \
             WHERE p.player_id=pgs.player_id AND \
               g.game_date = pgs.game_date AND \
               g.home_id = pgs.home_id AND \
               s.season_id = g.season_id \
               AND p.player_name= 'Draymond Green' \
             GROUP BY s.season_name",
        )
        .unwrap();
        assert_eq!(q.from.len(), 4);
        assert_eq!(q.predicates.len(), 5);
        assert!(matches!(q.aggregates[0].func, AggFunc::Avg(_)));
    }

    #[test]
    fn string_escapes() {
        let q =
            parse_sql("SELECT count(*) AS c FROM t WHERE name = 'O''Neal' GROUP BY name").unwrap();
        match &q.predicates[0] {
            Predicate::ColLit(_, _, Literal::Str(s)) => assert_eq!(s, "O'Neal"),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn inequality_predicates() {
        let q = parse_sql(
            "SELECT count(*) AS c FROM t WHERE x >= 10 AND y <> 3 AND z < 1.5 GROUP BY g",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(
            q.predicates[0],
            Predicate::ColLit(_, CmpOp::Ge, Literal::Int(10))
        ));
        assert!(matches!(
            q.predicates[1],
            Predicate::ColLit(_, CmpOp::Ne, Literal::Int(3))
        ));
        assert!(matches!(
            q.predicates[2],
            Predicate::ColLit(_, CmpOp::Lt, Literal::Float(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_sql("SELEC x FROM t").is_err());
        assert!(parse_sql("SELECT count(*) FROM").is_err());
        assert!(parse_sql("SELECT count(*) AS c FROM t WHERE x ~ 3").is_err());
        assert!(parse_sql("SELECT count(*) AS c FROM t GROUP x").is_err());
        assert!(parse_sql("SELECT x FROM t").is_err(), "no aggregate");
    }

    #[test]
    fn rejects_non_grouped_select_column() {
        let err = parse_sql("SELECT x, count(*) AS c FROM t GROUP BY y").unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)));
    }

    #[test]
    fn unterminated_string_reports_offset() {
        let err = parse_sql("SELECT count(*) AS c FROM t WHERE a = 'oops").unwrap_err();
        match err {
            QueryError::Parse { offset, .. } => assert!(offset > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn default_agg_aliases_are_generated() {
        let q = parse_sql("SELECT count(*), sum(x) FROM t GROUP BY g").unwrap();
        assert_eq!(q.aggregates[0].alias, "agg1");
        assert_eq!(q.aggregates[1].alias, "agg2");
    }
}
