//! Why-provenance capture (paper Definition 1).
//!
//! `PT(Q, D)` is the subset of `R_{j1} × … × R_{jp}` (the relations accessed
//! by `Q`) that satisfies the query's WHERE clause; `PT(Q, D, t)` is the
//! subset contributing to output tuple `t` (its group). We materialize the
//! full-width rows with attributes renamed using the paper's convention —
//! `prov_<rel>_<attr>` with underscores inside names doubled, e.g.
//! `player_game_stats.minutes` → `prov_player__game__stats_minutes` — and
//! record for every provenance row the output tuple it belongs to.
//!
//! This mirrors what the paper obtains from GProM/Perm, and it is the `PT`
//! node that every join graph hangs off (paper §2.2).

use cajade_storage::{AttrKind, Column, DataType, Database, Value};

use crate::ast::Query;
use crate::exec::{group, join_rows, Binder, Joined};
use crate::Result;

/// Renames `rel.attr` into the paper's provenance-attribute style:
/// `prov_` + rel with `_` doubled + `_` + attr with `_` doubled.
///
/// ```
/// use cajade_query::prov_attr_name;
/// assert_eq!(
///     prov_attr_name("player_game_stats", "minutes"),
///     "prov_player__game__stats_minutes"
/// );
/// assert_eq!(
///     prov_attr_name("game", "away_points"),
///     "prov_game_away__points"
/// );
/// ```
pub fn prov_attr_name(rel: &str, attr: &str) -> String {
    format!(
        "prov_{}_{}",
        rel.replace('_', "__"),
        attr.replace('_', "__")
    )
}

/// One attribute of the provenance table.
#[derive(Debug, Clone)]
pub struct PtField {
    /// Wide (renamed) attribute name.
    pub name: String,
    /// FROM entry index this attribute came from.
    pub from_idx: usize,
    /// Source relation name.
    pub table: String,
    /// Source alias in the query.
    pub alias: String,
    /// Original attribute name.
    pub attr: String,
    /// Physical type.
    pub dtype: DataType,
    /// Mining kind.
    pub kind: AttrKind,
    /// True iff this attribute is used in GROUP BY — such attributes are
    /// excluded from patterns (paper §2.4: "patterns are not allowed to
    /// include attributes used in grouping").
    pub is_group_by: bool,
}

/// Materialized why-provenance of an aggregate query.
#[derive(Debug, Clone)]
pub struct ProvenanceTable {
    /// Wide schema.
    pub fields: Vec<PtField>,
    /// Wide columns, parallel to `fields`.
    pub columns: Vec<Column>,
    /// Number of provenance rows.
    pub num_rows: usize,
    /// Provenance row → output-tuple (group) index.
    pub group_of: Vec<u32>,
    /// Group keys (values of the GROUP BY columns), one per output tuple.
    pub group_keys: Vec<Vec<Value>>,
    /// For each output tuple, the provenance row ids contributing to it.
    pub rows_of_group: Vec<Vec<u32>>,
    /// `(table, alias)` of each FROM entry (wide column provenance).
    pub from_entries: Vec<(String, String)>,
    /// Raw base-table row ids per provenance row (stride =
    /// `from_entries.len()`), kept for tests and debugging.
    pub base_rows: Vec<u32>,
}

impl ProvenanceTable {
    /// Computes `PT(Q, D)` with the group mapping (Definition 1).
    pub fn compute(db: &Database, query: &Query) -> Result<ProvenanceTable> {
        let binder = Binder::new(db, query)?;
        let joined = join_rows(&binder)?;
        let grouping = group(&binder, &joined)?;
        Self::from_parts(
            db,
            query,
            &binder,
            &joined,
            grouping.group_of,
            grouping.keys,
        )
    }

    fn from_parts(
        _db: &Database,
        query: &Query,
        binder: &Binder<'_>,
        joined: &Joined,
        group_of: Vec<u32>,
        group_keys: Vec<Vec<Value>>,
    ) -> Result<ProvenanceTable> {
        // Which (from_idx, col_idx) pairs are group-by attributes?
        let mut gb_cols = Vec::new();
        for col in &query.group_by {
            let b = binder.bind(col)?;
            gb_cols.push((b.from_idx, b.col_idx));
        }

        // Duplicate-table detection: if a relation appears under several
        // aliases, the alias (not the table name) disambiguates the wide
        // attribute names.
        let mut fields = Vec::new();
        let mut per_entry_rows: Vec<Vec<usize>> =
            vec![Vec::with_capacity(joined.num_rows()); query.from.len()];
        for i in 0..joined.num_rows() {
            let row = joined.row(i);
            for (k, r) in row.iter().enumerate() {
                per_entry_rows[k].push(*r as usize);
            }
        }

        let mut columns = Vec::new();
        for (k, tref) in query.from.iter().enumerate() {
            let table = binder.tables[k];
            let dup = query.from.iter().filter(|t| t.table == tref.table).count() > 1;
            let rel_label = if dup { &tref.alias } else { &tref.table };
            for (ci, f) in table.schema().fields.iter().enumerate() {
                fields.push(PtField {
                    name: prov_attr_name(rel_label, &f.name),
                    from_idx: k,
                    table: tref.table.clone(),
                    alias: tref.alias.clone(),
                    attr: f.name.clone(),
                    dtype: f.dtype,
                    kind: f.kind,
                    is_group_by: gb_cols.contains(&(k, ci)),
                });
                columns.push(table.column(ci).gather(&per_entry_rows[k]));
            }
        }

        let num_rows = joined.num_rows();
        let mut rows_of_group: Vec<Vec<u32>> = vec![Vec::new(); group_keys.len()];
        for (i, &g) in group_of.iter().enumerate() {
            rows_of_group[g as usize].push(i as u32);
        }

        Ok(ProvenanceTable {
            fields,
            columns,
            num_rows,
            group_of,
            group_keys,
            rows_of_group,
            from_entries: query
                .from
                .iter()
                .map(|t| (t.table.clone(), t.alias.clone()))
                .collect(),
            base_rows: joined.data.clone(),
        })
    }

    /// Index of the wide field with the given name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Number of output tuples (groups).
    pub fn num_groups(&self) -> usize {
        self.group_keys.len()
    }

    /// Size of `PT(Q, D, t)` for output tuple `t`.
    pub fn group_size(&self, group: usize) -> usize {
        self.rows_of_group[group].len()
    }

    /// Approximate heap footprint in bytes: wide columns plus the
    /// group-mapping vectors. Drives the service cache's byte budget.
    pub fn approx_bytes(&self) -> usize {
        let u32sz = std::mem::size_of::<u32>();
        self.columns.iter().map(|c| c.approx_bytes()).sum::<usize>()
            + self.group_of.len() * u32sz
            + self.base_rows.len() * u32sz
            + self
                .rows_of_group
                .iter()
                .map(|g| g.len() * u32sz)
                .sum::<usize>()
            + self
                .group_keys
                .iter()
                .map(|k| std::mem::size_of::<Vec<Value>>() + k.len() * std::mem::size_of::<Value>())
                .sum::<usize>()
            + self
                .fields
                .iter()
                .map(|f| f.name.len() + std::mem::size_of::<PtField>())
                .sum::<usize>()
    }

    /// Cell accessor.
    #[inline]
    pub fn value(&self, row: usize, field: usize) -> Value {
        self.columns[field].value(row)
    }

    /// Finds the output tuple whose group key matches the given
    /// `(column, rendered value)` pairs (column names are the *original*
    /// group-by column names).
    pub fn find_group(
        &self,
        db: &Database,
        query: &Query,
        wanted: &[(&str, &str)],
    ) -> Option<usize> {
        'groups: for (g, key) in self.group_keys.iter().enumerate() {
            for (col, text) in wanted {
                let pos = query.group_by.iter().position(|c| c.column == *col)?;
                let cell = &key[pos];
                let ok = match cell {
                    Value::Str(id) => db.resolve(*id) == *text,
                    Value::Int(i) => text.parse::<i64>().is_ok_and(|t| t == *i),
                    Value::Float(f) => text.parse::<f64>().is_ok_and(|t| (t - f).abs() < 1e-9),
                    Value::Null => text.eq_ignore_ascii_case("null"),
                };
                if !ok {
                    continue 'groups;
                }
            }
            return Some(g);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_sql;
    use cajade_storage::{AttrKind, DataType, SchemaBuilder};

    /// The Example-1 Game table from Figure 1a.
    fn example1_db() -> Database {
        let mut db = Database::new("nba-example1");
        db.create_table(
            SchemaBuilder::new("game")
                .column_pk("year", DataType::Int, AttrKind::Categorical)
                .column_pk("month", DataType::Int, AttrKind::Categorical)
                .column_pk("day", DataType::Int, AttrKind::Categorical)
                .column_pk("home", DataType::Str, AttrKind::Categorical)
                .column("away", DataType::Str, AttrKind::Categorical)
                .column("home_pts", DataType::Int, AttrKind::Numeric)
                .column("away_pts", DataType::Int, AttrKind::Numeric)
                .column("winner", DataType::Str, AttrKind::Categorical)
                .column("season", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let vals = [
            (2013, 1, 2, "MIA", "DAL", 119, 109, "MIA", "2012-13"),
            (2012, 12, 5, "DET", "GSW", 97, 104, "GSW", "2012-13"),
            (2015, 10, 27, "GSW", "NOP", 111, 95, "GSW", "2015-16"),
            (2014, 1, 5, "GSW", "WAS", 96, 112, "GSW", "2013-14"),
            (2016, 1, 22, "GSW", "IND", 122, 110, "GSW", "2015-16"),
        ];
        for (y, m, d, h, a, hp, ap, w, s) in vals {
            let h = db.intern(h);
            let a = db.intern(a);
            let w = db.intern(w);
            let s = db.intern(s);
            db.table_mut("game")
                .unwrap()
                .push_row(vec![
                    Value::Int(y),
                    Value::Int(m),
                    Value::Int(d),
                    Value::Str(h),
                    Value::Str(a),
                    Value::Int(hp),
                    Value::Int(ap),
                    Value::Str(w),
                    Value::Str(s),
                ])
                .unwrap();
        }
        db
    }

    fn q1() -> Query {
        parse_sql(
            "SELECT winner as team, season, count(*) as win \
             FROM game WHERE winner = 'GSW' GROUP BY winner, season",
        )
        .unwrap()
    }

    /// Example 2: PT(Q1, D) contains g2..g5; PT(Q1, D, t1) = {g2};
    /// PT(Q1, D, t2) = {g3, g5}.
    #[test]
    fn example2_provenance_partition() {
        let db = example1_db();
        let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
        assert_eq!(pt.num_rows, 4, "g2, g3, g4, g5 won by GSW");

        let t1 = pt.find_group(&db, &q1(), &[("season", "2012-13")]).unwrap();
        let t2 = pt.find_group(&db, &q1(), &[("season", "2015-16")]).unwrap();
        assert_eq!(pt.group_size(t1), 1);
        assert_eq!(pt.group_size(t2), 2);
        // And 2013-14 exists with one row.
        let t3 = pt.find_group(&db, &q1(), &[("season", "2013-14")]).unwrap();
        assert_eq!(pt.group_size(t3), 1);
    }

    #[test]
    fn wide_names_follow_paper_convention() {
        let db = example1_db();
        let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
        assert!(pt.field_index("prov_game_home__pts").is_some());
        assert!(pt.field_index("prov_game_winner").is_some());
    }

    #[test]
    fn group_by_attrs_flagged() {
        let db = example1_db();
        let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
        let winner = pt.field_index("prov_game_winner").unwrap();
        let season = pt.field_index("prov_game_season").unwrap();
        let pts = pt.field_index("prov_game_home__pts").unwrap();
        assert!(pt.fields[winner].is_group_by);
        assert!(pt.fields[season].is_group_by);
        assert!(!pt.fields[pts].is_group_by);
    }

    #[test]
    fn self_join_uses_aliases() {
        let mut db = Database::new("x");
        db.create_table(
            SchemaBuilder::new("lineup_player")
                .column_pk("lineupid", DataType::Int, AttrKind::Categorical)
                .column_pk("player", DataType::Str, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        let a = db.intern("A");
        let b = db.intern("B");
        for (l, p) in [(1, a), (1, b)] {
            db.table_mut("lineup_player")
                .unwrap()
                .push_row(vec![Value::Int(l), Value::Str(p)])
                .unwrap();
        }
        let q = parse_sql(
            "SELECT count(*) AS c, l1.player FROM lineup_player l1, lineup_player l2 \
             WHERE l1.lineupid = l2.lineupid GROUP BY l1.player",
        )
        .unwrap();
        let pt = ProvenanceTable::compute(&db, &q).unwrap();
        // Aliases disambiguate the wide names.
        assert!(pt.field_index("prov_l1_player").is_some());
        assert!(pt.field_index("prov_l2_player").is_some());
        assert_eq!(pt.num_rows, 4); // 2x2 pairs sharing lineup 1
    }

    #[test]
    fn base_rows_recorded() {
        let db = example1_db();
        let pt = ProvenanceTable::compute(&db, &q1()).unwrap();
        assert_eq!(pt.base_rows.len(), pt.num_rows * pt.from_entries.len());
        // All base rows point at GSW wins (indices 1..=4 in insertion order).
        for &r in &pt.base_rows {
            assert!((1..=4).contains(&r));
        }
    }
}
