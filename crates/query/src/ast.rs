//! AST for the paper's query class: single-block SQL with equi-joins,
//! conjunctive WHERE, GROUP BY, and one or more aggregates (§2: "simple
//! single-block SQL queries with a single aggregate function … extensions
//! are discussed in Section 8" — we also allow several aggregates, which
//! the paper's own workload queries use, e.g. `Q2` over MIMIC).

use std::fmt;

/// A FROM-list entry: relation name plus alias (`game g`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Relation name in the catalog.
    pub table: String,
    /// Alias; defaults to the relation name.
    pub alias: String,
}

impl TableRef {
    /// A table reference with an explicit alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            alias: alias.into(),
        }
    }

    /// A table reference whose alias is the table name.
    pub fn named(table: impl Into<String>) -> Self {
        let t = table.into();
        Self {
            alias: t.clone(),
            table: t,
        }
    }
}

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Qualifier (table alias), if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Unqualified reference.
    pub fn new(column: impl Into<String>) -> Self {
        Self {
            qualifier: None,
            column: column.into(),
        }
    }

    /// Qualified reference (`alias.column`).
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal constant in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (interned lazily at execution time).
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an [`std::cmp::Ordering`].
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `a.x <op> b.y` — column against column. Only `Eq` participates in
    /// join planning; other ops become residual filters.
    ColCol(ColRef, CmpOp, ColRef),
    /// `a.x <op> literal`.
    ColLit(ColRef, CmpOp, Literal),
}

/// Aggregate function.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)` (non-null count)
    Count(ColRef),
    /// `SUM(col)`
    Sum(ColRef),
    /// `AVG(col)`
    Avg(ColRef),
    /// `MIN(col)`
    Min(ColRef),
    /// `MAX(col)`
    Max(ColRef),
    /// `SUM(col) / COUNT(*)` — the "rate" form of the MIMIC queries
    /// (`1.0 * SUM(hospital_expire_flag) / COUNT(*)`).
    RateSumCount(ColRef),
}

/// One aggregate in the SELECT list, with its output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Aggregate function.
    pub func: AggFunc,
    /// Output column name.
    pub alias: String,
}

/// A single-block SPJA query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// FROM list (aliases must be unique).
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE clause.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns, in order. The output exposes them under their
    /// column name (the paper's queries never alias group-by columns).
    pub group_by: Vec<ColRef>,
    /// Aggregates of the SELECT list.
    pub aggregates: Vec<Aggregate>,
}

impl Query {
    /// Names of the relations the query accesses (`rels_Q(D)`), deduplicated
    /// but in FROM order.
    pub fn accessed_relations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.from {
            if !out.contains(&t.table.as_str()) {
                out.push(&t.table);
            }
        }
        out
    }

    /// Finds the FROM entry for `alias`.
    pub fn from_entry(&self, alias: &str) -> Option<&TableRef> {
        self.from.iter().find(|t| t.alias == alias)
    }

    /// Renders the query back to SQL text. The output re-parses to an
    /// equal AST (`parse_sql(q.to_sql()) == q`), which makes queries
    /// loggable and serializable without a second representation.
    pub fn to_sql(&self) -> String {
        let mut out = String::from("SELECT ");
        let agg_text = |f: &AggFunc| -> String {
            match f {
                AggFunc::CountStar => "COUNT(*)".into(),
                AggFunc::Count(c) => format!("COUNT({c})"),
                AggFunc::Sum(c) => format!("SUM({c})"),
                AggFunc::Avg(c) => format!("AVG({c})"),
                AggFunc::Min(c) => format!("MIN({c})"),
                AggFunc::Max(c) => format!("MAX({c})"),
                AggFunc::RateSumCount(c) => format!("SUM({c}) / COUNT(*)"),
            }
        };
        let mut items: Vec<String> = self
            .aggregates
            .iter()
            .map(|a| format!("{} AS {}", agg_text(&a.func), a.alias))
            .collect();
        items.extend(self.group_by.iter().map(|c| c.to_string()));
        out.push_str(&items.join(", "));

        out.push_str(" FROM ");
        let from: Vec<String> = self
            .from
            .iter()
            .map(|t| {
                if t.alias == t.table {
                    t.table.clone()
                } else {
                    format!("{} {}", t.table, t.alias)
                }
            })
            .collect();
        out.push_str(&from.join(", "));

        if !self.predicates.is_empty() {
            out.push_str(" WHERE ");
            let preds: Vec<String> = self
                .predicates
                .iter()
                .map(|p| match p {
                    Predicate::ColCol(a, op, b) => format!("{a} {} {b}", op.symbol()),
                    Predicate::ColLit(a, op, lit) => {
                        let lit = match lit {
                            Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
                            other => other.to_string(),
                        };
                        format!("{a} {} {lit}", op.symbol())
                    }
                })
                .collect();
            out.push_str(&preds.join(" AND "));
        }

        if !self.group_by.is_empty() {
            out.push_str(" GROUP BY ");
            let cols: Vec<String> = self.group_by.iter().map(|c| c.to_string()).collect();
            out.push_str(&cols.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval_covers_all_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
    }

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::qualified("g", "home_id").to_string(), "g.home_id");
        assert_eq!(ColRef::new("season_name").to_string(), "season_name");
    }

    #[test]
    fn to_sql_round_trips_examples() {
        use crate::parse_sql;
        for sql in [
            "SELECT winner AS team, season, COUNT(*) AS win FROM Game g \
             WHERE winner = 'GSW' GROUP BY winner, season",
            "SELECT insurance, 1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
             FROM admissions GROUP BY insurance",
            "SELECT AVG(points) AS avg_pts, s.season_name \
             FROM player p, player_game_stats pgs, game g, season s \
             WHERE p.player_id = pgs.player_id AND g.game_date = pgs.game_date \
               AND g.home_id = pgs.home_id AND s.season_id = g.season_id \
               AND p.player_name = 'O''Neal' \
             GROUP BY s.season_name",
            "SELECT COUNT(*) AS c FROM t WHERE x >= 10 AND y <> 3 AND z < 1.5 GROUP BY g",
        ] {
            let q = parse_sql(sql).unwrap();
            let rendered = q.to_sql();
            let reparsed = parse_sql(&rendered)
                .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {rendered}: {e}"));
            assert_eq!(q, reparsed, "round trip changed the AST for {rendered}");
        }
    }

    #[test]
    fn prop_to_sql_round_trip_random_queries() {
        use crate::parse_sql;
        use proptest::prelude::*;

        // `z`-prefixed identifiers can never collide with SQL keywords.
        let ident = "z[a-z0-9_]{0,8}";
        let strategy = (
            proptest::string::string_regex(ident).unwrap(),
            proptest::string::string_regex(ident).unwrap(),
            proptest::collection::vec(
                (
                    proptest::string::string_regex(ident).unwrap(),
                    prop_oneof![
                        any::<i64>().prop_map(Literal::Int),
                        (-1000i64..1000).prop_map(|i| Literal::Float(i as f64 / 8.0 + 0.0625)),
                        proptest::string::string_regex("[a-zA-Z '0-9]{0,12}")
                            .unwrap()
                            .prop_map(Literal::Str),
                    ],
                    prop_oneof![
                        Just(CmpOp::Eq),
                        Just(CmpOp::Ne),
                        Just(CmpOp::Le),
                        Just(CmpOp::Ge),
                        Just(CmpOp::Lt),
                        Just(CmpOp::Gt)
                    ],
                ),
                0..4,
            ),
        );
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        runner
            .run(&strategy, |(table, group_col, preds)| {
                let q = Query {
                    from: vec![TableRef::named(table)],
                    predicates: preds
                        .into_iter()
                        .map(|(col, lit, op)| Predicate::ColLit(ColRef::new(col), op, lit))
                        .collect(),
                    group_by: vec![ColRef::new(group_col)],
                    aggregates: vec![Aggregate {
                        func: AggFunc::CountStar,
                        alias: "c".into(),
                    }],
                };
                let rendered = q.to_sql();
                let reparsed = parse_sql(&rendered).map_err(|e| {
                    proptest::test_runner::TestCaseError::fail(format!("{rendered}: {e}"))
                })?;
                prop_assert_eq!(q, reparsed);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn accessed_relations_dedups_preserving_order() {
        let q = Query {
            from: vec![
                TableRef::aliased("lineup_player", "l1"),
                TableRef::aliased("lineup_player", "l2"),
                TableRef::named("game"),
            ],
            predicates: vec![],
            group_by: vec![],
            aggregates: vec![],
        };
        assert_eq!(q.accessed_relations(), vec!["lineup_player", "game"]);
    }
}
