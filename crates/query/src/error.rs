use std::fmt;

use cajade_storage::StorageError;

/// Errors from parsing or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Underlying storage error.
    Storage(StorageError),
    /// SQL text could not be parsed.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset into the SQL text (best effort).
        offset: usize,
    },
    /// A column reference could not be resolved against the FROM list.
    UnknownColumn(String),
    /// A column name matches more than one FROM entry and no alias was given.
    AmbiguousColumn(String),
    /// A table alias in the query does not exist.
    UnknownAlias(String),
    /// The query shape is outside the supported single-block SPJA class.
    Unsupported(String),
    /// An aggregate was applied to an incompatible column.
    BadAggregate(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Parse { message, offset } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            QueryError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            QueryError::UnknownAlias(a) => write!(f, "unknown table alias `{a}`"),
            QueryError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            QueryError::BadAggregate(msg) => write!(f, "bad aggregate: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QueryError::AmbiguousColumn("home_id".into());
        assert!(e.to_string().contains("home_id"));
        let e = QueryError::Parse {
            message: "expected FROM".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn storage_error_converts() {
        let e: QueryError = StorageError::NoSuchTable("x".into()).into();
        assert!(matches!(e, QueryError::Storage(_)));
    }
}
