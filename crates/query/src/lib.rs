//! # cajade-query
//!
//! Query substrate for the CaJaDE reproduction: a single-block SPJA
//! (select–project–join–aggregate) executor with **why-provenance**, plus a
//! small SQL parser for the paper's query class
//! (`SELECT … FROM … WHERE … GROUP BY …`, equi-joins, one or more
//! aggregates).
//!
//! The paper ran on PostgreSQL + GProM; here both the evaluation and the
//! provenance capture are implemented directly:
//!
//! * [`Query`] — the AST (also buildable programmatically),
//! * [`parse_sql`] — text front end used by the examples and the
//!   benchmark harness (the paper lists all workload queries as SQL),
//! * [`execute`] — hash joins + hash aggregation producing a
//!   [`QueryResult`],
//! * [`ProvenanceTable`] — Definition 1: the subset of
//!   `R_{j1} × … × R_{jp}` contributing to the answer, with full-width rows
//!   renamed `prov_<rel>_<attr>` and a row → output-tuple mapping.

#![warn(missing_docs)]

pub mod ast;
mod error;
mod exec;
pub mod parser;
pub mod provenance;

pub use ast::{AggFunc, Aggregate, CmpOp, ColRef, Literal, Predicate, Query, TableRef};
pub use error::QueryError;
pub use exec::{execute, QueryResult};
pub use parser::parse_sql;
pub use provenance::{prov_attr_name, ProvenanceTable, PtField};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
