//! Service-level errors.

use std::fmt;

use cajade_core::CoreError;
use cajade_ingest::IngestError;
use cajade_query::QueryError;

/// Errors surfaced by the explanation service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No database registered under this name.
    UnknownDatabase(String),
    /// No open session with this id.
    UnknownSession(u64),
    /// The session's SQL failed to parse.
    Parse(QueryError),
    /// The underlying pipeline failed.
    Core(CoreError),
    /// CSV-directory ingestion failed during `register`.
    Ingest(IngestError),
    /// The owning [`crate::ExplanationService`] was dropped while a
    /// session handle was still alive.
    ServiceDropped,
}

/// The complete stable error-code taxonomy, mirroring the table in
/// `docs/PROTOCOL.md` one-for-one. It is wider than [`ServiceError`]:
/// `bad_request` and `internal_panic` are minted at the protocol
/// boundary (see `protocol.rs`), and `timeout` is reserved — a deadline
/// alone never produces it, budgeted asks degrade with `ok: true`
/// instead. `cajade-lint`'s doc-catalog-drift rule cross-checks this
/// list against the doc table.
pub const ERROR_CODES: &[&str] = &[
    "bad_request",
    "unknown_database",
    "unknown_session",
    "parse",
    "pipeline",
    "ingest",
    "timeout",
    "internal_panic",
    "shutdown",
];

impl ServiceError {
    /// Stable machine-readable error code, from the fixed taxonomy in
    /// [`ERROR_CODES`] / `docs/PROTOCOL.md`. Clients should branch on
    /// this, never on the human-readable message (which may be reworded
    /// freely).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownDatabase(_) => "unknown_database",
            ServiceError::UnknownSession(_) => "unknown_session",
            ServiceError::Parse(_) => "parse",
            ServiceError::Core(_) => "pipeline",
            ServiceError::Ingest(_) => "ingest",
            ServiceError::ServiceDropped => "shutdown",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDatabase(name) => {
                write!(f, "no database registered as `{name}`")
            }
            ServiceError::UnknownSession(id) => write!(f, "no open session #{id}"),
            // QueryError's own rendering already says "SQL parse error".
            ServiceError::Parse(e) => write!(f, "{e}"),
            ServiceError::Core(e) => write!(f, "pipeline error: {e}"),
            ServiceError::Ingest(e) => write!(f, "ingest error: {e}"),
            ServiceError::ServiceDropped => {
                write!(f, "explanation service was shut down")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::Parse(e)
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_database_and_session() {
        assert!(ServiceError::UnknownDatabase("nba".into())
            .to_string()
            .contains("nba"));
        assert!(ServiceError::UnknownSession(7).to_string().contains('7'));
        let e: ServiceError = CoreError::NoSuchOutputTuple("x=1".into()).into();
        assert!(e.to_string().contains("x=1"));
    }

    #[test]
    fn codes_are_stable_snake_case() {
        let cases = [
            (
                ServiceError::UnknownDatabase("x".into()),
                "unknown_database",
            ),
            (ServiceError::UnknownSession(1), "unknown_session"),
            (
                ServiceError::Core(CoreError::NoSuchOutputTuple("x".into())),
                "pipeline",
            ),
            (ServiceError::ServiceDropped, "shutdown"),
        ];
        for (e, code) in cases {
            assert_eq!(e.code(), code);
        }
    }

    #[test]
    fn every_code_is_in_the_documented_taxonomy() {
        let all = [
            ServiceError::UnknownDatabase("x".into()),
            ServiceError::UnknownSession(1),
            ServiceError::Parse(QueryError::UnknownColumn("c".into())),
            ServiceError::Core(CoreError::NoSuchOutputTuple("x".into())),
            ServiceError::Ingest(IngestError::EmptyDirectory("d".into())),
            ServiceError::ServiceDropped,
        ];
        for e in all {
            assert!(
                ERROR_CODES.contains(&e.code()),
                "`{}` missing from ERROR_CODES",
                e.code()
            );
        }
        // The taxonomy is exactly the documented nine, in table order.
        assert_eq!(ERROR_CODES.len(), 9);
    }
}
