//! The `cajade-serve` JSON-lines protocol.
//!
//! One request per input line, one response per output line. Every
//! response is an object with `"ok": true|false`; errors carry
//! `"error": {"code": "<stable_code>", "message": "<human text>"}` —
//! clients branch on `code` (fixed taxonomy, see `docs/PROTOCOL.md`),
//! never on the message.
//!
//! | op | request fields | response fields |
//! |---|---|---|
//! | `register` | `db`, plus either `dataset` (`nba`\|`mimic`) with `scale`? (synthetic source) or `source:"csv_dir"` with `path`, `strict`?, `max_joins`? | `epoch`, `fingerprint`, `replaced`, `tables`, `rows`; csv_dir adds an `ingest` report (per-stage timings, per-table stats, join provenance, warnings) |
//! | `query` | `db`, `sql`, `preview`? (default `true`) | `session`, `columns`, `rows` (≤ `max_rows`, default 50); with `preview: true` warms the provenance cache; reuses an existing session on the same `(db, sql)` |
//! | `ask` | `session`, `t1`+`t2` or `t` (objects of col→value), `trace`? (default `false`), `timeout_ms`? (request budget) | `explanations`, `cache`, `timings`; with `trace: true` adds a `trace` span-tree array; a budget-truncated answer adds `degraded: true` plus the `truncated` site list |
//! | `stats` | — | service counters + the four caches + cumulative ingest stats |
//! | `metrics` | `format`? (`"json"` default, or `"prometheus"`) | registry snapshot: `counters`, `gauges`, `histograms` (count/sum/max/mean + p50/p90/p99/p999), or `{"text": ...}` in the Prometheus exposition format |
//! | `close` | `session` | `closed` |
//!
//! Example exchange:
//!
//! ```text
//! → {"op":"register","db":"nba","dataset":"nba","scale":0.25}
//! ← {"ok":true,"db":"nba","epoch":0,"replaced":false,"tables":11,"rows":123456,...}
//! → {"op":"register","db":"retail","source":"csv_dir","path":"tests/data/retail_csv"}
//! ← {"ok":true,"db":"retail","tables":2,"rows":605,"ingest":{"timings_ms":{...},"tables":[...],"joins":[{"condition":"sales.store_id = stores.store_id","origin":"discovered",...}],...},...}
//! → {"op":"query","db":"nba","sql":"SELECT COUNT(*) AS win, s.season_name FROM team t, game g, season s WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' GROUP BY s.season_name"}
//! ← {"ok":true,"session":1,"columns":["win","season_name"],"rows":[...]}
//! → {"op":"ask","session":1,"t1":{"season_name":"2015-16"},"t2":{"season_name":"2012-13"}}
//! ← {"ok":true,"explanations":[...],"cache":{"provenance":"miss","apt_hits":0,"apt_misses":9},...}
//! ```

use cajade_core::UserQuestion;
use cajade_datagen::{mimic, nba};
use cajade_storage::Database;

use crate::cache::CacheStats;
use crate::json::Json;
use crate::session::AskOptions;
use crate::{AskResult, ExplanationService, ServiceError};

/// Handles one protocol line, returning the response object. Never
/// panics on malformed input — all failures become `ok: false` — and
/// isolates panics escaping any handler: the panic is caught, counted
/// (`requests_panicked_total`), and answered as an `internal_panic`
/// error so one poisoned request cannot take the serve loop down.
pub fn handle_line(service: &ExplanationService, line: &str) -> Json {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_line_inner(service, line)
    })) {
        Ok(resp) => resp,
        Err(payload) => {
            service.obs().requests_panicked_total.inc();
            err(
                "internal_panic",
                &format!("request panicked: {}", panic_message(&payload)),
            )
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

fn handle_line_inner(service: &ExplanationService, line: &str) -> Json {
    cajade_obs::faults::failpoint_infallible("serve.request");
    let line = line.trim();
    if line.is_empty() {
        return err("bad_request", "empty request");
    }
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return err("bad_request", &format!("bad JSON: {e}")),
    };
    let op = match req.get("op").and_then(Json::as_str) {
        Some(op) => op,
        None => return err("bad_request", "missing \"op\""),
    };
    match op {
        "register" => handle_register(service, &req),
        "query" => handle_query(service, &req),
        "ask" => handle_ask(service, &req),
        "stats" => handle_stats(service),
        "metrics" => handle_metrics(service, &req),
        "close" => handle_close(service, &req),
        other => err("bad_request", &format!("unknown op `{other}`")),
    }
}

fn err(code: &str, message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([("code", Json::str(code)), ("message", Json::str(message))]),
        ),
    ])
}

fn service_err(e: &ServiceError) -> Json {
    err(e.code(), &e.to_string())
}

fn str_field<'a>(req: &'a Json, field: &str) -> Result<&'a str, Json> {
    req.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| err("bad_request", &format!("missing string field \"{field}\"")))
}

fn handle_register(service: &ExplanationService, req: &Json) -> Json {
    let db_name = match str_field(req, "db") {
        Ok(v) => v,
        Err(e) => return e,
    };
    match req.get("source").and_then(Json::as_str) {
        Some("csv_dir") => return handle_register_csv_dir(service, req, db_name),
        Some("synthetic") | None => {}
        Some(other) => {
            return err(
                "bad_request",
                &format!("unknown source `{other}` (expected \"synthetic\" or \"csv_dir\")"),
            )
        }
    }
    let dataset = match str_field(req, "dataset") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let scale = req
        .get("scale")
        .and_then(Json::as_f64)
        .unwrap_or(0.1)
        .clamp(0.01, 10.0);
    let generated = match dataset {
        "nba" => nba::generate(nba::NbaConfig::scaled(scale)),
        "mimic" => mimic::generate(mimic::MimicConfig::scaled(scale)),
        other => {
            return err(
                "bad_request",
                &format!("unknown dataset `{other}` (expected \"nba\" or \"mimic\")"),
            )
        }
    };
    let tables = generated.db.tables().len();
    let rows = generated.db.total_rows();
    let outcome = service.register_database(db_name, generated.db, generated.schema_graph);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("db", Json::str(db_name)),
        ("epoch", Json::num(outcome.epoch as f64)),
        (
            "fingerprint",
            Json::str(format!("{:016x}", outcome.fingerprint)),
        ),
        ("replaced", Json::Bool(outcome.replaced)),
        (
            "invalidated_entries",
            Json::num(outcome.invalidated_entries as f64),
        ),
        ("tables", Json::num(tables as f64)),
        ("rows", Json::num(rows as f64)),
    ])
}

fn handle_register_csv_dir(service: &ExplanationService, req: &Json, db_name: &str) -> Json {
    let path = match str_field(req, "path") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let mut options = cajade_ingest::IngestOptions::default();
    if let Some(strict) = req.get("strict").and_then(Json::as_bool) {
        options.strict_types = strict;
    }
    if let Some(max_joins) = req.get("max_joins").and_then(Json::as_u64) {
        options.max_discovered_joins = Some(max_joins as usize);
    }
    let (outcome, report) = match service.register_csv_dir(db_name, path, &options) {
        Ok(r) => r,
        Err(e) => return service_err(&e),
    };
    Json::obj([
        ("ok", Json::Bool(true)),
        ("db", Json::str(db_name)),
        ("epoch", Json::num(outcome.epoch as f64)),
        (
            "fingerprint",
            Json::str(format!("{:016x}", outcome.fingerprint)),
        ),
        ("replaced", Json::Bool(outcome.replaced)),
        (
            "invalidated_entries",
            Json::num(outcome.invalidated_entries as f64),
        ),
        ("tables", Json::num(report.tables.len() as f64)),
        ("rows", Json::num(report.total_rows() as f64)),
        ("ingest", ingest_report_json(&report)),
    ])
}

fn ingest_report_json(report: &cajade_ingest::IngestReport) -> Json {
    let ms = |d: std::time::Duration| Json::num(d.as_secs_f64() * 1e3);
    let tables: Vec<Json> = report
        .tables
        .iter()
        .map(|t| {
            Json::obj([
                ("name", Json::str(t.name.clone())),
                ("rows", Json::num(t.rows as f64)),
                ("columns", Json::num(t.columns as f64)),
                (
                    "key",
                    Json::Arr(t.key.iter().map(|k| Json::str(k.clone())).collect()),
                ),
                ("key_pinned", Json::Bool(t.key_pinned)),
                ("ragged_rows", Json::num(t.ragged_rows as f64)),
                ("coerced_nulls", Json::num(t.coerced_nulls as f64)),
            ])
        })
        .collect();
    let joins: Vec<Json> = report
        .joins
        .iter()
        .map(|j| {
            let mut fields = vec![
                ("condition", Json::str(j.condition.clone())),
                ("origin", Json::str(j.origin.label())),
            ];
            if let Some(e) = &j.evidence {
                fields.push(("containment", Json::num(e.containment)));
                fields.push(("uniqueness", Json::num(e.to_uniqueness)));
                fields.push(("coverage", Json::num(e.to_coverage)));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj([
        ("dataset", Json::str(report.dataset.clone())),
        ("manifest_used", Json::Bool(report.manifest_used)),
        (
            "timings_ms",
            Json::obj([
                ("scan", ms(report.timings.scan)),
                ("infer", ms(report.timings.infer)),
                ("load", ms(report.timings.load)),
                ("discover", ms(report.timings.discover)),
                ("total", ms(report.timings.total())),
            ]),
        ),
        ("tables", Json::Arr(tables)),
        ("joins", Json::Arr(joins)),
        (
            "warnings",
            Json::Arr(
                report
                    .warnings
                    .iter()
                    .map(|w| Json::str(w.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn handle_query(service: &ExplanationService, req: &Json) -> Json {
    let db_name = match str_field(req, "db") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let sql = match str_field(req, "sql") {
        Ok(v) => v,
        Err(e) => return e,
    };
    let max_rows = req.get("max_rows").and_then(Json::as_u64).unwrap_or(50) as usize;
    let preview = req.get("preview").and_then(Json::as_bool).unwrap_or(true);
    let handle = match service.open_or_reuse_session(db_name, sql) {
        Ok(h) => h,
        Err(e) => return service_err(&e),
    };
    if !preview {
        // `preview: false` leaves every pipeline stage cold, so a
        // subsequent traced ask shows the full provenance → jg_enum →
        // materialize → prepare → mine span tree.
        return Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::num(handle.id() as f64)),
            ("db", Json::str(db_name)),
            ("sql", Json::str(handle.sql())),
            ("preview", Json::Bool(false)),
        ]);
    }
    // Preview runs the prepared stages through the provenance cache, so
    // the caller sees the output tuples they can ask about AND the
    // session's first ask skips preparation. If it fails (e.g. unknown
    // column), close the just-opened session rather than leaking it.
    let result = match handle.preview() {
        Ok(r) => r,
        Err(e) => {
            service.close_session(handle.id());
            return service_err(&e);
        }
    };
    let reg = match service.database(db_name) {
        Some(r) => r,
        None => {
            service.close_session(handle.id());
            return err(
                "unknown_database",
                &format!("no database registered as `{db_name}`"),
            );
        }
    };
    let columns: Vec<Json> = result
        .table
        .schema()
        .fields
        .iter()
        .map(|f| Json::str(f.name.clone()))
        .collect();
    let rows = render_rows(&reg.db, &result.table, max_rows);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("session", Json::num(handle.id() as f64)),
        ("db", Json::str(db_name)),
        ("sql", Json::str(handle.sql())),
        ("columns", Json::Arr(columns)),
        ("rows", Json::Arr(rows)),
        ("total_rows", Json::num(result.table.num_rows() as f64)),
    ])
}

fn render_rows(db: &Database, table: &cajade_storage::Table, max_rows: usize) -> Vec<Json> {
    (0..table.num_rows().min(max_rows))
        .map(|r| {
            Json::Arr(
                (0..table.num_columns())
                    .map(|c| Json::str(table.value(r, c).render(db.pool())))
                    .collect(),
            )
        })
        .collect()
}

/// Reads a `{"col": "value", ...}` object into question pairs.
fn tuple_spec(req: &Json, field: &str) -> Option<Vec<(String, String)>> {
    let obj = req.get(field)?.as_object()?;
    Some(
        obj.iter()
            .map(|(k, v)| {
                let rendered = match v {
                    Json::Str(s) => s.clone(),
                    other => other.render(),
                };
                (k.clone(), rendered)
            })
            .collect(),
    )
}

fn handle_ask(service: &ExplanationService, req: &Json) -> Json {
    let session_id = match req.get("session").and_then(Json::as_u64) {
        Some(id) => id,
        None => return err("bad_request", "missing numeric field \"session\""),
    };
    let handle = match service.session(session_id) {
        Ok(h) => h,
        Err(e) => return service_err(&e),
    };
    let question = match (
        tuple_spec(req, "t1"),
        tuple_spec(req, "t2"),
        tuple_spec(req, "t"),
    ) {
        (Some(t1), Some(t2), _) => UserQuestion::TwoPoint { t1, t2 },
        (None, None, Some(t)) => UserQuestion::SinglePoint { t },
        _ => {
            return err(
                "bad_request",
                "expected \"t1\"+\"t2\" (two-point) or \"t\" (single-point)",
            )
        }
    };
    let trace = req.get("trace").and_then(Json::as_bool).unwrap_or(false);
    let timeout = match req.get("timeout_ms") {
        None => None,
        Some(v) => match v.as_f64().filter(|ms| *ms > 0.0 && ms.is_finite()) {
            Some(ms) => Some(std::time::Duration::from_secs_f64(ms / 1e3)),
            None => {
                return err(
                    "bad_request",
                    "\"timeout_ms\" must be a positive number of milliseconds",
                )
            }
        },
    };
    match handle.ask_with(&question, &AskOptions { trace, timeout }) {
        Ok(outcome) => ask_response(&outcome),
        Err(e) => service_err(&e),
    }
}

fn ask_response(outcome: &AskResult) -> Json {
    let explanations: Vec<Json> = outcome
        .result
        .explanations
        .iter()
        .map(|e| {
            Json::obj([
                ("pattern", Json::str(e.pattern_desc.clone())),
                (
                    "predicates",
                    Json::Arr(
                        e.preds
                            .iter()
                            .map(|(a, op, v)| {
                                Json::Arr(vec![
                                    Json::str(a.clone()),
                                    Json::str(op.clone()),
                                    Json::str(v.clone()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("join_graph", Json::str(e.graph_structure.clone())),
                (
                    "join_conditions",
                    Json::Arr(e.graph_edges.iter().map(|s| Json::str(s.clone())).collect()),
                ),
                ("primary", Json::str(e.primary.clone())),
                ("f_score", Json::num(e.metrics.f_score)),
                ("precision", Json::num(e.metrics.precision)),
                ("recall", Json::num(e.metrics.recall)),
                ("provenance_only", Json::Bool(e.from_pt_only)),
            ])
        })
        .collect();
    let r = &outcome.result;
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("explanations", Json::Arr(explanations)),
        (
            "cache",
            Json::obj([
                (
                    "answer",
                    Json::str(if outcome.answer_cache_hit {
                        "hit"
                    } else {
                        "miss"
                    }),
                ),
                (
                    "provenance",
                    Json::str(if outcome.provenance_cache_hit {
                        "hit"
                    } else {
                        "miss"
                    }),
                ),
                ("apt_hits", Json::num(outcome.apt_cache_hits as f64)),
                ("apt_misses", Json::num(outcome.apt_cache_misses as f64)),
            ]),
        ),
        (
            "pipeline",
            Json::obj([
                (
                    "graphs_enumerated",
                    Json::num(r.num_graphs_enumerated as f64),
                ),
                ("graphs_mined", Json::num(r.num_graphs_mined as f64)),
                ("pt_rows", Json::num(r.pt_rows as f64)),
                ("patterns_evaluated", Json::num(r.patterns_evaluated as f64)),
            ]),
        ),
        (
            "timings_ms",
            Json::obj([
                ("wall", Json::num(outcome.wall.as_secs_f64() * 1e3)),
                (
                    "provenance",
                    Json::num(r.timings.provenance.as_secs_f64() * 1e3),
                ),
                ("jg_enum", Json::num(r.timings.jg_enum.as_secs_f64() * 1e3)),
                (
                    "materialize_apts",
                    Json::num(r.timings.materialize_apts.as_secs_f64() * 1e3),
                ),
                (
                    "mining",
                    Json::num(r.timings.mining.total().as_secs_f64() * 1e3),
                ),
            ]),
        ),
    ];
    // Budget-truncated answers are flagged; unbudgeted (or in-time) asks
    // omit both fields, keeping their responses byte-identical to a build
    // without the budget subsystem.
    if r.degraded {
        fields.push(("degraded", Json::Bool(true)));
        fields.push((
            "truncated",
            Json::Arr(r.truncated.iter().map(|s| Json::str(s.clone())).collect()),
        ));
    }
    if let Some(spans) = &outcome.trace {
        let tree: Vec<Json> = spans
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::str(s.name)),
                    ("span", Json::num(s.id as f64)),
                    (
                        "parent",
                        match s.parent {
                            Some(p) => Json::num(p as f64),
                            None => Json::Null,
                        },
                    ),
                    ("start_us", Json::num(s.start_us as f64)),
                    ("wall_us", Json::num(s.wall_us as f64)),
                    ("alloc_bytes", Json::num(s.alloc_bytes as f64)),
                    ("peak_bytes", Json::num(s.peak_bytes as f64)),
                ])
            })
            .collect();
        fields.push(("trace", Json::Arr(tree)));
    }
    Json::obj(fields)
}

fn handle_metrics(service: &ExplanationService, req: &Json) -> Json {
    let snap = service.metrics_snapshot();
    match req.get("format").and_then(Json::as_str) {
        Some("prometheus") => Json::obj([
            ("ok", Json::Bool(true)),
            ("format", Json::str("prometheus")),
            ("text", Json::str(snap.render_prometheus())),
        ]),
        Some("json") | None => Json::obj([
            ("ok", Json::Bool(true)),
            (
                "counters",
                Json::Obj(
                    snap.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    snap.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    snap.hists
                        .iter()
                        .map(|(k, h)| {
                            let mut fields = vec![
                                ("count".to_string(), Json::num(h.count as f64)),
                                ("sum".to_string(), Json::num(h.sum as f64)),
                                ("max".to_string(), Json::num(h.max as f64)),
                                ("mean".to_string(), Json::num(h.mean())),
                            ];
                            for (q, label) in cajade_obs::registry::QUANTILES {
                                // "0.5" → p50, "0.9" → p90, "0.99" → p99,
                                // "0.999" → p999.
                                let digits = label.trim_start_matches("0.");
                                let key = if digits.len() == 1 {
                                    format!("p{digits}0")
                                } else {
                                    format!("p{digits}")
                                };
                                fields.push((key, Json::num(h.quantile(q) as f64)));
                            }
                            (k.clone(), Json::Obj(fields.into_iter().collect()))
                        })
                        .collect(),
                ),
            ),
            ("memory", memory_json()),
        ]),
        Some(other) => err(
            "bad_request",
            &format!("unknown format `{other}` (expected \"json\" or \"prometheus\")"),
        ),
    }
}

/// The `metrics` op's `memory` block: process RSS watermarks (Linux,
/// `null` elsewhere) plus the heap-attribution ledgers. `tracking` is
/// `false` — and `heap`/`scopes` are absent — when the binary did not
/// install `cajade_obs::alloc::TrackingAlloc`; RSS fields are reported
/// either way. Scopes are ranked by peak net bytes, descending.
fn memory_json() -> Json {
    let opt_num = |v: Option<u64>| match v {
        Some(n) => Json::num(n as f64),
        None => Json::Null,
    };
    let mut fields = vec![
        ("tracking", Json::Bool(cajade_obs::alloc::tracking_active())),
        (
            "rss",
            Json::obj([
                ("peak_bytes", opt_num(cajade_obs::peak_rss_bytes())),
                ("current_bytes", opt_num(cajade_obs::current_rss_bytes())),
            ]),
        ),
    ];
    if let Some(h) = cajade_obs::alloc::heap_stats() {
        fields.push((
            "heap",
            Json::obj([
                ("allocated_bytes", Json::num(h.allocated_bytes as f64)),
                ("freed_bytes", Json::num(h.freed_bytes as f64)),
                ("allocated_blocks", Json::num(h.allocated_blocks as f64)),
                ("freed_blocks", Json::num(h.freed_blocks as f64)),
                ("live_bytes", Json::num(h.live_bytes.max(0) as f64)),
                (
                    "peak_live_bytes",
                    Json::num(h.peak_live_bytes.max(0) as f64),
                ),
            ]),
        ));
        let mut scopes = cajade_obs::alloc::scope_snapshots();
        scopes.sort_by_key(|s| std::cmp::Reverse(s.peak_net_bytes));
        fields.push((
            "scopes",
            Json::Arr(
                scopes
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("name", Json::str(s.name)),
                            ("allocated_bytes", Json::num(s.allocated_bytes as f64)),
                            ("freed_bytes", Json::num(s.freed_bytes as f64)),
                            ("net_bytes", Json::num(s.net_bytes as f64)),
                            ("peak_net_bytes", Json::num(s.peak_net_bytes as f64)),
                            ("allocated_blocks", Json::num(s.allocated_blocks as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

fn cache_json(s: &CacheStats) -> Json {
    Json::obj([
        ("entries", Json::num(s.entries as f64)),
        ("bytes", Json::num(s.bytes as f64)),
        ("budget_bytes", Json::num(s.budget_bytes as f64)),
        ("hits", Json::num(s.hits as f64)),
        ("misses", Json::num(s.misses as f64)),
        ("evictions", Json::num(s.evictions as f64)),
        ("inserts", Json::num(s.inserts as f64)),
        ("rejected", Json::num(s.rejected as f64)),
        ("coalesced", Json::num(s.coalesced as f64)),
    ])
}

fn handle_stats(service: &ExplanationService) -> Json {
    let s = service.stats();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("databases", Json::num(s.databases as f64)),
        ("open_sessions", Json::num(s.open_sessions as f64)),
        ("sessions_opened", Json::num(s.sessions_opened as f64)),
        ("questions_answered", Json::num(s.questions_answered as f64)),
        ("prepared_apt_hits", Json::num(s.prepared_apt_hits as f64)),
        (
            "prepared_apt_misses",
            Json::num(s.prepared_apt_misses as f64),
        ),
        ("hit_rate", Json::num(s.hit_rate())),
        ("provenance_cache", cache_json(&s.provenance_cache)),
        ("apt_cache", cache_json(&s.apt_cache)),
        ("answer_cache", cache_json(&s.answer_cache)),
        ("column_stats_cache", cache_json(&s.column_stats_cache)),
        (
            "ingest",
            Json::obj([
                ("ingests", Json::num(s.ingest.ingests as f64)),
                ("tables", Json::num(s.ingest.tables as f64)),
                ("rows", Json::num(s.ingest.rows as f64)),
                ("joins_pinned", Json::num(s.ingest.joins_pinned as f64)),
                (
                    "joins_discovered",
                    Json::num(s.ingest.joins_discovered as f64),
                ),
                ("scan_ms", Json::num(s.ingest.scan_us as f64 / 1e3)),
                ("infer_ms", Json::num(s.ingest.infer_us as f64 / 1e3)),
                ("load_ms", Json::num(s.ingest.load_us as f64 / 1e3)),
                ("discover_ms", Json::num(s.ingest.discover_us as f64 / 1e3)),
            ]),
        ),
    ])
}

fn handle_close(service: &ExplanationService, req: &Json) -> Json {
    let session_id = match req.get("session").and_then(Json::as_u64) {
        Some(id) => id,
        None => return err("bad_request", "missing numeric field \"session\""),
    };
    Json::obj([
        ("ok", Json::Bool(true)),
        ("closed", Json::Bool(service.close_session(session_id))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    fn service_with_tiny_nba() -> ExplanationService {
        let service = ExplanationService::new(ServiceConfig::default());
        let gen = nba::generate(nba::NbaConfig::tiny());
        service.register_database("nba", gen.db, gen.schema_graph);
        service
    }

    const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
         FROM team t, game g, season s \
         WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
           AND t.team = 'GSW' GROUP BY s.season_name";

    #[test]
    fn malformed_lines_answer_ok_false() {
        let service = ExplanationService::default();
        for line in ["", "not json", "{}", r#"{"op":"wat"}"#, r#"{"op":"ask"}"#] {
            let resp = handle_line(&service, line);
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line}"
            );
            // Errors are objects with a stable code + human message.
            let error = resp.get("error").unwrap_or_else(|| panic!("{line}"));
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some("bad_request"),
                "{line}"
            );
            assert!(
                error.get("message").and_then(Json::as_str).is_some(),
                "{line}"
            );
        }
    }

    #[test]
    fn error_codes_follow_the_taxonomy() {
        let service = service_with_tiny_nba();
        let cases = [
            (
                r#"{"op":"query","db":"ghost","sql":"SELECT 1"}"#,
                "unknown_database",
            ),
            (
                r#"{"op":"ask","session":999,"t1":{"a":"b"},"t2":{"a":"c"}}"#,
                "unknown_session",
            ),
            (
                r#"{"op":"query","db":"nba","sql":"NOT SQL AT ALL"}"#,
                "parse",
            ),
            (
                r#"{"op":"register","db":"x","source":"csv_dir","path":"/nonexistent/cajade"}"#,
                "ingest",
            ),
        ];
        for (line, code) in cases {
            let resp = handle_line(&service, line);
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line}"
            );
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some(code),
                "{line}: {resp:?}"
            );
        }
    }

    #[test]
    fn invalid_timeout_is_a_bad_request() {
        let service = service_with_tiny_nba();
        let q = handle_line(
            &service,
            &Json::obj([
                ("op", Json::str("query")),
                ("db", Json::str("nba")),
                ("sql", Json::str(GSW_SQL)),
            ])
            .render(),
        );
        let session = q.get("session").and_then(Json::as_u64).unwrap();
        for timeout in ["0", "-5", "\"fast\"", "null"] {
            let resp = handle_line(
                &service,
                &format!(
                    r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}},"timeout_ms":{timeout}}}"#
                ),
            );
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("bad_request"),
                "timeout_ms={timeout}: {resp:?}"
            );
        }
    }

    #[test]
    fn panicking_request_is_isolated_and_coded() {
        let _guard = cajade_obs::faults::test_guard();
        let service = service_with_tiny_nba();
        let query_line = Json::obj([
            ("op", Json::str("query")),
            ("db", Json::str("nba")),
            ("sql", Json::str(GSW_SQL)),
        ])
        .render();
        let q = handle_line(&service, &query_line);
        let session = q.get("session").and_then(Json::as_u64).unwrap();
        let ask = format!(
            r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}}}}"#
        );

        cajade_obs::faults::set_plan("serve.request=panic@1").unwrap();
        let resp = handle_line(&service, &ask);
        cajade_obs::faults::clear();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("internal_panic"),
            "{resp:?}"
        );

        // The service keeps answering after the isolated panic.
        let resp = handle_line(&service, &ask);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        let snap = service.metrics_snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .find(|(k, _)| k == "requests_panicked_total")
                .map(|(_, v)| *v),
            Some(1)
        );
    }

    #[test]
    fn register_query_ask_round_trip() {
        let service = service_with_tiny_nba();

        let query_line = Json::obj([
            ("op", Json::str("query")),
            ("db", Json::str("nba")),
            ("sql", Json::str(GSW_SQL)),
        ])
        .render();
        let q = handle_line(&service, &query_line);
        assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q:?}");
        let session = q.get("session").and_then(Json::as_u64).unwrap();
        // Re-issuing the same query reuses the session instead of
        // growing the registry.
        let q_again = handle_line(&service, &query_line);
        assert_eq!(q_again.get("session").and_then(Json::as_u64), Some(session));
        assert!(q.get("rows").and_then(Json::as_array).unwrap().len() > 2);

        let ask = format!(
            r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}}}}"#
        );
        let a1 = handle_line(&service, &ask);
        assert_eq!(a1.get("ok").and_then(Json::as_bool), Some(true), "{a1:?}");
        assert!(!a1
            .get("explanations")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        // The `query` op previews through the provenance cache, so even
        // the first ask skips preparation (but must still materialize).
        assert_eq!(
            a1.get("cache")
                .and_then(|c| c.get("provenance"))
                .and_then(Json::as_str),
            Some("hit")
        );
        assert!(
            a1.get("cache")
                .and_then(|c| c.get("apt_misses"))
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );

        // Second ask: everything question-independent must be a hit.
        let a2 = handle_line(&service, &ask);
        assert_eq!(
            a2.get("cache")
                .and_then(|c| c.get("provenance"))
                .and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(
            a2.get("cache")
                .and_then(|c| c.get("apt_misses"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            a1.get("explanations").unwrap().render(),
            a2.get("explanations").unwrap().render(),
            "warm ask returns identical explanations"
        );

        let stats = handle_line(&service, r#"{"op":"stats"}"#);
        assert_eq!(
            stats.get("questions_answered").and_then(Json::as_u64),
            Some(2)
        );

        let close = handle_line(
            &service,
            &format!(r#"{{"op":"close","session":{session}}}"#),
        );
        assert_eq!(close.get("closed").and_then(Json::as_bool), Some(true));
        let again = handle_line(&service, &ask);
        assert_eq!(again.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn register_via_protocol_generates_dataset() {
        let service = ExplanationService::default();
        let resp = handle_line(
            &service,
            r#"{"op":"register","db":"demo","dataset":"nba","scale":0.02}"#,
        );
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        assert!(resp.get("rows").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(service.database_names(), vec!["demo".to_string()]);
    }
}
