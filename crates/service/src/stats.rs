//! Service statistics snapshots.

use crate::cache::CacheStats;

/// One consistent-enough snapshot of the service's counters (each counter
/// is read atomically; the set is not transactional).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Databases currently registered.
    pub databases: usize,
    /// Sessions currently open.
    pub open_sessions: usize,
    /// Sessions opened since construction.
    pub sessions_opened: u64,
    /// Questions answered since construction.
    pub questions_answered: u64,
    /// Per-APT mining preparations reused from a warm cache entry (the
    /// ask skipped feature selection, LCA candidates, and fragments).
    pub prepared_apt_hits: u64,
    /// Per-APT mining preparations computed (cold entry or new mining
    /// parameter fingerprint).
    pub prepared_apt_misses: u64,
    /// Provenance/enumeration cache counters.
    pub provenance_cache: CacheStats,
    /// Materialized-APT cache counters.
    pub apt_cache: CacheStats,
    /// Answered-question cache counters.
    pub answer_cache: CacheStats,
}

impl ServiceStats {
    /// Overall cache hit rate across all three caches (0.0 when no
    /// lookups).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.provenance_cache.hits + self.apt_cache.hits + self.answer_cache.hits;
        let total =
            hits + self.provenance_cache.misses + self.apt_cache.misses + self.answer_cache.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(ServiceStats::default().hit_rate(), 0.0);
        let mut s = ServiceStats::default();
        s.provenance_cache.hits = 3;
        s.provenance_cache.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
