//! Service statistics snapshots.

use crate::cache::CacheStats;

/// Cumulative ingestion counters (CSV-directory `register` path). Stage
/// durations accumulate in microseconds so the snapshot stays `Copy`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// CSV-directory registrations performed.
    pub ingests: u64,
    /// Tables loaded across all ingests.
    pub tables: u64,
    /// Rows loaded across all ingests.
    pub rows: u64,
    /// Manifest-pinned joins across all ingests.
    pub joins_pinned: u64,
    /// Discovery-proposed joins across all ingests.
    pub joins_discovered: u64,
    /// Cumulative scan-stage time (µs).
    pub scan_us: u64,
    /// Cumulative infer-stage time (µs).
    pub infer_us: u64,
    /// Cumulative load-stage time (µs).
    pub load_us: u64,
    /// Cumulative discover-stage time (µs).
    pub discover_us: u64,
}

impl IngestStats {
    /// Folds one [`cajade_ingest::IngestReport`] into the totals. All
    /// arithmetic saturates: durations longer than `u64::MAX` µs clamp,
    /// and a report whose discovered-join count exceeds its join list
    /// (impossible today, but nothing in the type enforces it) pins zero
    /// joins rather than wrapping.
    pub fn record(&mut self, report: &cajade_ingest::IngestReport) {
        let us = |d: std::time::Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.ingests = self.ingests.saturating_add(1);
        self.tables = self.tables.saturating_add(report.tables.len() as u64);
        self.rows = self.rows.saturating_add(report.total_rows() as u64);
        let total_joins = report.joins.len() as u64;
        let discovered = (report.discovered_join_count() as u64).min(total_joins);
        self.joins_discovered = self.joins_discovered.saturating_add(discovered);
        self.joins_pinned = self
            .joins_pinned
            .saturating_add(total_joins.saturating_sub(discovered));
        self.scan_us = self.scan_us.saturating_add(us(report.timings.scan));
        self.infer_us = self.infer_us.saturating_add(us(report.timings.infer));
        self.load_us = self.load_us.saturating_add(us(report.timings.load));
        self.discover_us = self.discover_us.saturating_add(us(report.timings.discover));
    }
}

/// One consistent-enough snapshot of the service's counters (each counter
/// is read atomically; the set is not transactional).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Databases currently registered.
    pub databases: usize,
    /// Sessions currently open.
    pub open_sessions: usize,
    /// Sessions opened since construction.
    pub sessions_opened: u64,
    /// Questions answered since construction.
    pub questions_answered: u64,
    /// Per-APT mining preparations reused from a warm cache entry (the
    /// ask skipped feature selection, LCA candidates, and fragments).
    pub prepared_apt_hits: u64,
    /// Per-APT mining preparations computed (cold entry or new mining
    /// parameter fingerprint).
    pub prepared_apt_misses: u64,
    /// CSV-directory ingestion counters.
    pub ingest: IngestStats,
    /// Provenance/enumeration cache counters.
    pub provenance_cache: CacheStats,
    /// Materialized-APT cache counters.
    pub apt_cache: CacheStats,
    /// Answered-question cache counters.
    pub answer_cache: CacheStats,
    /// Shared column-statistics cache counters (per-base-column bin specs
    /// and fragment boundaries reused across join graphs; a hit means a
    /// preparation skipped one column's quantile/dictionary pass).
    pub column_stats_cache: CacheStats,
}

impl ServiceStats {
    /// Overall cache hit rate across all three caches (0.0 when no
    /// lookups).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.provenance_cache.hits + self.apt_cache.hits + self.answer_cache.hits;
        let total =
            hits + self.provenance_cache.misses + self.apt_cache.misses + self.answer_cache.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_stats_fold_reports() {
        use cajade_ingest::{IngestReport, IngestTimings, JoinOrigin, JoinReport, TableReport};
        let report = IngestReport {
            dataset: "d".into(),
            manifest_used: false,
            tables: vec![TableReport {
                name: "t".into(),
                rows: 7,
                columns: 2,
                key: vec![],
                key_pinned: false,
                ragged_rows: 0,
                coerced_nulls: 0,
            }],
            joins: vec![
                JoinReport {
                    condition: "a.x = b.x".into(),
                    origin: JoinOrigin::Pinned,
                    evidence: None,
                },
                JoinReport {
                    condition: "a.y = c.y".into(),
                    origin: JoinOrigin::Discovered,
                    evidence: None,
                },
            ],
            warnings: vec![],
            timings: IngestTimings {
                scan: std::time::Duration::from_micros(10),
                infer: std::time::Duration::from_micros(20),
                load: std::time::Duration::from_micros(30),
                discover: std::time::Duration::from_micros(40),
            },
        };
        let mut s = IngestStats::default();
        s.record(&report);
        s.record(&report);
        assert_eq!(s.ingests, 2);
        assert_eq!(s.rows, 14);
        assert_eq!(s.joins_pinned, 2);
        assert_eq!(s.joins_discovered, 2);
        assert_eq!(s.scan_us, 20);
        assert_eq!(s.discover_us, 80);
    }

    #[test]
    fn ingest_stats_saturate_instead_of_wrapping() {
        use cajade_ingest::{IngestReport, IngestTimings};
        let report = IngestReport {
            dataset: "d".into(),
            manifest_used: false,
            tables: vec![],
            joins: vec![],
            warnings: vec![],
            timings: IngestTimings {
                // > u64::MAX microseconds: must clamp, not truncate.
                scan: std::time::Duration::MAX,
                infer: std::time::Duration::from_micros(1),
                load: std::time::Duration::ZERO,
                discover: std::time::Duration::ZERO,
            },
        };
        let mut s = IngestStats {
            ingests: u64::MAX,
            infer_us: u64::MAX - 1,
            ..IngestStats::default()
        };
        s.record(&report);
        assert_eq!(s.ingests, u64::MAX);
        assert_eq!(s.scan_us, u64::MAX);
        assert_eq!(s.infer_us, u64::MAX);
        // No joins at all: pinned count must stay 0 even if a (buggy)
        // discovered count were reported; here it exercises the
        // `total - discovered` guard path with an empty list.
        assert_eq!(s.joins_pinned, 0);
        assert_eq!(s.joins_discovered, 0);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(ServiceStats::default().hit_rate(), 0.0);
        let mut s = ServiceStats::default();
        s.provenance_cache.hits = 3;
        s.provenance_cache.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
