//! Interactive session handles.
//!
//! A [`SessionHandle`] pins one `(database, query)` pair and answers
//! repeated [`ask`](SessionHandle::ask) calls. The first question pays
//! for provenance, join-graph enumeration, and APT materialization; the
//! service caches all three keyed by database epoch, canonical SQL, and
//! canonical join-graph key, so later questions — from this handle or any
//! other session on the same query — skip straight to mining (§2.4's
//! interactive usage pattern).

use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use cajade_core::pipeline::{self, GraphOutcome, PreparedQuery};
use cajade_core::{Params, SessionResult, UserQuestion};
use cajade_mining::PreparedApt;
use cajade_obs::{span, Collector, SpanRecord};
use cajade_query::Query;
use rayon::prelude::*;

use crate::colstats::DbColumnStats;
use crate::keys::{AnswerKey, AptKey, ProvKey};
use crate::service::{AptEntry, RegisteredDb, ServiceInner};
use crate::{Result, ServiceError};

/// Per-ask knobs beyond the question itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct AskOptions {
    /// Capture a per-request span tree ([`AskResult::trace`]).
    pub trace: bool,
    /// Request budget: the deadline after which every pipeline phase
    /// stops at its next cooperative check and the ask returns a
    /// best-so-far, [`SessionResult::degraded`] answer. `None` runs to
    /// completion (the disabled budget check costs ~ns).
    pub timeout: Option<Duration>,
}

/// One answered question plus its cache telemetry.
#[derive(Debug)]
pub struct AskResult {
    /// The ranked explanations and pipeline statistics. On a warm ask the
    /// provenance / enumeration / materialization timings reflect work
    /// actually done (zero on cache hits), mirroring the latency the
    /// caller observed.
    pub result: SessionResult,
    /// Whether the fully-ranked answer came straight from the answer
    /// cache (same db epoch, query, parameters, and question). When true,
    /// no pipeline stage ran at all.
    pub answer_cache_hit: bool,
    /// Whether provenance + enumeration came from cache.
    pub provenance_cache_hit: bool,
    /// Join graphs whose APT came from cache.
    pub apt_cache_hits: usize,
    /// Join graphs whose APT had to be materialized.
    pub apt_cache_misses: usize,
    /// End-to-end wall clock of this ask.
    pub wall: Duration,
    /// The request's span tree (flat records with parent pointers),
    /// captured when the ask was issued with
    /// [`ask_traced`](SessionHandle::ask_traced)`(…, true)`; `None`
    /// otherwise. Spans cover the pipeline stages actually executed —
    /// a warm ask has no `provenance`/`jg_enum` spans because those
    /// stages never ran.
    pub trace: Option<Vec<SpanRecord>>,
}

/// An open interactive session. Cheap to share across threads; all
/// mutable state lives in the service's caches.
pub struct SessionHandle {
    id: u64,
    db_name: String,
    query: Query,
    sql: String,
    params: Params,
    params_fingerprint: u64,
    prep_fingerprint: u64,
    service: Weak<ServiceInner>,
}

impl SessionHandle {
    pub(crate) fn new(
        id: u64,
        db_name: String,
        query: Query,
        params: Params,
        service: Weak<ServiceInner>,
    ) -> Self {
        let sql = query.to_sql();
        let params_fingerprint = SessionHandle::params_fingerprint_of(&params);
        // Only the enumeration-relevant knobs key the prepared-query
        // cache: two sessions differing purely in mining parameters can
        // safely share one prepared result.
        let prep_fingerprint = fnv1a(
            format!(
                "{}|{}|{}|{}",
                params.max_edges,
                params.max_cost.to_bits(),
                params.check_pk_coverage,
                params.include_pt_only
            )
            .as_bytes(),
        );
        SessionHandle {
            id,
            db_name,
            query,
            sql,
            params,
            params_fingerprint,
            prep_fingerprint,
            service,
        }
    }

    /// The cache fingerprint of a parameter set. The Debug rendering
    /// covers every λ; hashing it is a pragmatic fingerprint without a
    /// bespoke Hash impl across crates.
    pub(crate) fn params_fingerprint_of(params: &Params) -> u64 {
        fnv1a(format!("{params:?}").as_bytes())
    }

    /// Session id (stable for the lifetime of the service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The registered database name this session queries.
    pub fn db_name(&self) -> &str {
        &self.db_name
    }

    /// Canonical SQL of the session's query.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The session's pipeline parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Answers one user question.
    ///
    /// Stage reuse: provenance + enumeration are fetched from (or
    /// inserted into) the provenance cache; each valid join graph's APT
    /// is fetched from (or materialized into) the APT cache; mining and
    /// ranking always run because they depend on the question.
    pub fn ask(&self, question: &UserQuestion) -> Result<AskResult> {
        self.ask_traced(question, false)
    }

    /// Like [`ask`](SessionHandle::ask); with `trace` set, the request
    /// additionally runs under a per-request span
    /// [`Collector`] and [`AskResult::trace`] carries
    /// the full span tree (one record per executed pipeline phase, with
    /// parent pointers). Tracing changes nothing about the answer; it
    /// adds one collector allocation plus a few µs of span bookkeeping.
    pub fn ask_traced(&self, question: &UserQuestion, trace: bool) -> Result<AskResult> {
        self.ask_with(
            question,
            &AskOptions {
                trace,
                timeout: None,
            },
        )
    }

    /// The fully-optioned ask: tracing and/or a request budget.
    ///
    /// With [`AskOptions::timeout`] set, a [`cajade_obs::Budget`] is
    /// installed around the whole pipeline; phases check it cooperatively
    /// (join-graph materialization boundaries, mining-preparation phase
    /// boundaries, forest-training task boundaries, every 64 refinement
    /// patterns) and stop early when the deadline passes. The ask still
    /// returns `Ok` with valid, merely less-refined explanations and
    /// [`SessionResult::degraded`] set; degraded results are never
    /// cached.
    pub fn ask_with(&self, question: &UserQuestion, opts: &AskOptions) -> Result<AskResult> {
        let run = || {
            if !opts.trace {
                return self.ask_inner(question, None);
            }
            let collector = Collector::new();
            let mut result = collector.with(None, || self.ask_inner(question, Some(&collector)))?;
            result.trace = Some(collector.finish());
            Ok(result)
        };
        match opts.timeout {
            None => run(),
            Some(timeout) => cajade_obs::Budget::with_timeout(timeout).install(run),
        }
    }

    fn ask_inner(
        &self,
        question: &UserQuestion,
        collector: Option<&Arc<Collector>>,
    ) -> Result<AskResult> {
        let inner = self.service.upgrade().ok_or(ServiceError::ServiceDropped)?;
        let t_start = Instant::now();
        let ask_span = span("ask");
        // The request budget (if any) and the caller's alloc-scope chain
        // live in thread-local state; rayon worker closures re-install
        // both via `in_scope` below, exactly like the span collector.
        let budget = cajade_obs::budget::current();
        let mem_scope = cajade_obs::alloc::current_scope();
        let reg: Arc<RegisteredDb> = inner.registered(&self.db_name)?;

        // ---- Stage 0: the fully-ranked answer may already be cached. ----
        let answer_key = AnswerKey {
            db: self.db_name.clone(),
            epoch: reg.epoch,
            sql: self.sql.clone(),
            params_fingerprint: self.params_fingerprint,
            question: AnswerKey::canonical_question(question),
        };
        if let Some(cached) = inner.answer_cache.get(&answer_key) {
            inner
                .questions_answered
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut result = (*cached).clone();
            // No pipeline stage ran; the cold run's stage timings would
            // misreport this request's work.
            result.timings = cajade_core::SessionTimings::default();
            let wall = t_start.elapsed();
            inner.obs.record_ask(wall, &result.timings);
            return Ok(AskResult {
                result,
                answer_cache_hit: true,
                provenance_cache_hit: true,
                apt_cache_hits: 0,
                apt_cache_misses: 0,
                wall,
                trace: None,
            });
        }

        // ---- Stage 1+2: provenance + enumeration, cached. ---------------
        let resolve_span = span("resolve_query");
        let (prepared, provenance_cache_hit) = self.prepare_cached(&inner, &reg)?;

        let mining_question =
            pipeline::resolve_question(&reg.db, &self.query, &prepared.pt, question)?;
        drop(resolve_span);

        // ---- Stage 3: APTs, cached per canonical join-graph key. --------
        // Each APT is resolved through the cache's single-flight latch, so
        // two concurrent cold asks on the same query share one `AptEntry`
        // per graph: one thread materializes, the other coalesces — and
        // because the entry object is shared, the (more expensive) mining
        // preparation below is deduplicated by the entry's own lock too.
        let valid = prepared.valid_graph_indices();
        let mat_span = span("materialize");
        let mat_parent = mat_span.id();
        type ReadyRow = (usize, AptKey, Arc<AptEntry>, bool, Duration);
        // Worker threads have their own (empty) span stacks, so the
        // parallel closures re-enter the request's collector scope with
        // this stage's span as the explicit parent (`in_scope`).
        let resolve_one = |gi: usize| -> Result<Option<ReadyRow>> {
            in_scope(collector, budget.as_ref(), &mem_scope, mat_parent, || {
                // Budget check at the per-graph boundary: an expired
                // deadline skips the remaining graphs entirely — the ones
                // already materialized still get mined, so the answer
                // covers fewer join graphs rather than failing.
                if cajade_obs::budget::stop("materialize") {
                    return Ok(None);
                }
                let key = AptKey {
                    db: self.db_name.clone(),
                    epoch: reg.epoch,
                    sql: self.sql.clone(),
                    graph: prepared.graphs[gi].graph.key(),
                };
                let t0 = Instant::now();
                let (entry, hit) = inner.apt_cache.get_or_try_compute(
                    &key,
                    || -> Result<(Arc<AptEntry>, Option<usize>)> {
                        cajade_obs::faults::failpoint_infallible("cache.apt_compute");
                        // Attribute the retained APT to the cache that
                        // will hold it (inclusive with "materialize").
                        let _mem = cajade_obs::AllocScope::enter("cache.apt");
                        let apt =
                            pipeline::materialize(&reg.db, &prepared.pt, &prepared.graphs[gi])?;
                        let entry = AptEntry::new(Arc::new(apt));
                        // Skip caching if the database was re-registered
                        // mid-ask: keys of a stale epoch would be unreachable
                        // yet hold cache budget.
                        let bytes = inner
                            .epoch_is_current(&self.db_name, reg.epoch)
                            .then(|| entry.approx_bytes());
                        Ok((entry, bytes))
                    },
                )?;
                let mat = if hit { Duration::ZERO } else { t0.elapsed() };
                Ok(Some((gi, key, entry, hit, mat)))
            })
        };
        let mut ready: Vec<ReadyRow> = if self.params.parallel && valid.len() > 1 {
            valid
                .par_iter()
                .map(|&gi| resolve_one(gi))
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .flatten()
                .collect()
        } else {
            valid
                .into_iter()
                .map(resolve_one)
                .collect::<Result<Vec<_>>>()?
                .into_iter()
                .flatten()
                .collect()
        };
        ready.sort_by_key(|(gi, _, _, _, _)| *gi);
        drop(mat_span);
        let apt_cache_hits = ready.iter().filter(|(_, _, _, hit, _)| *hit).count();
        let apt_cache_misses = ready.len() - apt_cache_hits;

        // ---- Stage 3.5: question-independent mining preparation. --------
        // Feature selection, the LCA candidate pool, fragment boundaries,
        // and the scoring index/bitmaps depend only on (APT, mining
        // params); they are computed once per cached entry and reused by
        // every later question. Per-column statistics (bin specs,
        // fragment boundaries) are shared even further: the service's
        // column-stats cache hands every graph after the first — and
        // every later preparation touching the same context column — the
        // entry computed once per database epoch.
        let mining_fp = fnv1a(format!("{:?}", self.params.mining).as_bytes());
        let col_stats = DbColumnStats::new(&inner, &reg, &self.params);
        let prep_span = span("prepare");
        let prep_parent = prep_span.id();
        let prepare_one = |(gi, key, entry, _, mat): &ReadyRow| {
            in_scope(collector, budget.as_ref(), &mem_scope, prep_parent, || {
                let (prep, hit) = entry.prepared_for(mining_fp, || {
                    // The prepared state is retained by the APT cache
                    // entry; account it under "cache.apt" alongside the
                    // gather it decorates.
                    let _mem = cajade_obs::AllocScope::enter("cache.apt");
                    pipeline::prepare_mining(&entry.apt, &prepared.pt, &self.params, &col_stats)
                });
                (*gi, key.clone(), Arc::clone(entry), prep, hit, *mat)
            })
        };
        type PreppedRow = (
            usize,
            AptKey,
            Arc<AptEntry>,
            Arc<PreparedApt>,
            bool,
            Duration,
        );
        let prepped: Vec<PreppedRow> = if self.params.parallel && ready.len() > 1 {
            ready.par_iter().map(prepare_one).collect()
        } else {
            ready.iter().map(prepare_one).collect()
        };
        let mut prep_hits = 0u64;
        let mut prep_misses = 0u64;
        // (Re-)insert entries so the cache accounts the APT *and* its
        // prepared state; skip if the database was re-registered mid-ask —
        // keys of a stale epoch would be unreachable yet hold budget.
        let epoch_current = inner.epoch_is_current(&self.db_name, reg.epoch);
        for (_, key, entry, _, hit, _) in &prepped {
            if *hit {
                prep_hits += 1;
                continue;
            }
            prep_misses += 1;
            if epoch_current
                && !inner
                    .apt_cache
                    .insert(key.clone(), Arc::clone(entry), entry.approx_bytes())
            {
                // Too big for the budget with prepared state attached:
                // drop the prepared variants rather than hold unaccounted
                // memory in a shared entry.
                entry.clear_prepared();
            }
        }
        inner
            .prepared_apt_hits
            .fetch_add(prep_hits, std::sync::atomic::Ordering::Relaxed);
        inner
            .prepared_apt_misses
            .fetch_add(prep_misses, std::sync::atomic::Ordering::Relaxed);
        inner.obs.prepared_apt_hits_total.add(prep_hits);
        inner.obs.prepared_apt_misses_total.add(prep_misses);
        drop(prep_span);

        // ---- Stage 4: mining (only the question-specific half). ---------
        let mine_span = span("mine");
        let mine_parent = mine_span.id();
        let mine_one = |(gi, _, entry, prep, hit, mat): &PreppedRow| -> GraphOutcome {
            in_scope(collector, budget.as_ref(), &mem_scope, mine_parent, || {
                pipeline::mine_one_prepared(
                    &reg.db,
                    &self.query,
                    &prepared.pt,
                    &entry.apt,
                    prep,
                    &mining_question,
                    &self.params,
                    *gi,
                    *mat,
                    !*hit,
                )
            })
        };
        let outcomes: Vec<GraphOutcome> = if self.params.parallel && prepped.len() > 1 {
            prepped.par_iter().map(mine_one).collect()
        } else {
            prepped.iter().map(mine_one).collect()
        };
        drop(mine_span);

        // ---- Stage 5: assemble + rank. ----------------------------------
        let mut result = pipeline::assemble(&prepared, outcomes, &self.params);
        if provenance_cache_hit {
            // Those phases were skipped; report the latency actually paid.
            result.timings.provenance = Duration::ZERO;
            result.timings.jg_enum = Duration::ZERO;
        }
        // A degraded (budget-truncated) answer is correct for *this*
        // request but must never serve a future, unbudgeted one.
        if !result.degraded && inner.epoch_is_current(&self.db_name, reg.epoch) {
            let _mem = cajade_obs::AllocScope::enter("cache.answer");
            let retained = Arc::new(result.clone());
            inner
                .answer_cache
                .insert(answer_key, retained, answer_bytes(&result));
        }
        if result.degraded {
            inner.obs.ask_degraded_total.inc();
        }
        if cajade_obs::budget::expired() {
            inner.obs.ask_deadline_exceeded_total.inc();
        }
        inner
            .questions_answered
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        drop(ask_span);
        let wall = t_start.elapsed();
        inner.obs.record_ask(wall, &result.timings);
        Ok(AskResult {
            result,
            answer_cache_hit: false,
            provenance_cache_hit,
            apt_cache_hits,
            apt_cache_misses,
            wall,
            trace: None,
        })
    }

    /// Convenience: two-point question from `(column, value)` pairs.
    pub fn ask_between(&self, t1: &[(&str, &str)], t2: &[(&str, &str)]) -> Result<AskResult> {
        self.ask(&UserQuestion::two_point(t1, t2))
    }

    /// Runs (or fetches) the session's prepared stages and returns the
    /// query's answer relation. Used by the serve protocol's `query` op:
    /// previewing the output tuples warms the provenance cache, so the
    /// session's first `ask` already skips preparation.
    pub fn preview(&self) -> Result<cajade_query::QueryResult> {
        let inner = self.service.upgrade().ok_or(ServiceError::ServiceDropped)?;
        let reg = inner.registered(&self.db_name)?;
        let (prepared, _) = self.prepare_cached(&inner, &reg)?;
        Ok(prepared.result.clone())
    }

    /// Provenance-cache get-or-compute for this session's `(db, query,
    /// enumeration params)` coordinates.
    ///
    /// Computation is **single-flighted**: two concurrent cold asks on the
    /// same coordinates serialize on a per-key latch, one computes
    /// provenance + enumeration, and the other receives the cached result
    /// (`provenance_cache.coalesced` counts the deduplicated work).
    fn prepare_cached(
        &self,
        inner: &ServiceInner,
        reg: &RegisteredDb,
    ) -> Result<(Arc<PreparedQuery>, bool)> {
        let prov_key = ProvKey {
            db: self.db_name.clone(),
            epoch: reg.epoch,
            sql: self.sql.clone(),
            prep_fingerprint: self.prep_fingerprint,
        };
        inner.prov_cache.get_or_try_compute(&prov_key, || {
            cajade_obs::faults::failpoint_infallible("cache.provenance_compute");
            // Attribute the retained prepared query (provenance table +
            // enumeration) to the cache holding it.
            let _mem = cajade_obs::AllocScope::enter("cache.provenance");
            let p = Arc::new(pipeline::prepare(
                &reg.db,
                &reg.schema_graph,
                &self.query,
                &self.params,
            )?);
            // Skip caching if the database was re-registered mid-compute:
            // a stale-epoch key would hold budget nothing can look up.
            let bytes = inner
                .epoch_is_current(&self.db_name, reg.epoch)
                .then(|| prepared_bytes(&p));
            Ok((p, bytes))
        })
    }
}

/// Runs `f` inside the request's collector scope with `parent` as the
/// enclosing span, under the request's budget, and inside the request
/// thread's alloc-scope chain. The parallel stages' closures execute on
/// rayon worker threads whose thread-local span, budget, and alloc-scope
/// state is empty; without this explicit re-entry their spans would
/// neither reach the collector nor parent correctly, their budget checks
/// would silently see "no budget", and their heap bytes would escape the
/// caller's memory attribution. A no-op passthrough when the ask is
/// untraced, unbudgeted, and unscoped.
fn in_scope<R>(
    collector: Option<&Arc<Collector>>,
    budget: Option<&cajade_obs::Budget>,
    mem: &cajade_obs::ScopeHandle,
    parent: Option<u64>,
    f: impl FnOnce() -> R,
) -> R {
    let scoped = || mem.install(f);
    let traced = || match collector {
        Some(c) => c.with(parent, scoped),
        None => scoped(),
    };
    match budget {
        Some(b) => b.install(traced),
        None => traced(),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Cache accounting for an answered question: the ranked explanation list
/// plus the result preview table.
fn answer_bytes(r: &SessionResult) -> usize {
    r.explanations
        .iter()
        .map(|e| {
            e.pattern_desc.len()
                + e.primary.len()
                + e.graph_structure.len()
                + e.graph_edges.iter().map(String::len).sum::<usize>()
                + e.preds
                    .iter()
                    .map(|(a, b, c)| a.len() + b.len() + c.len())
                    .sum::<usize>()
                + 128
        })
        .sum::<usize>()
        + r.apt_stats
            .iter()
            .map(|(s, _, _)| s.len() + 32)
            .sum::<usize>()
        + (0..r.result.table.num_columns())
            .map(|c| r.result.table.column(c).approx_bytes())
            .sum::<usize>()
        + 512
}

/// Cache accounting for a prepared query: the provenance table dominates;
/// enumeration output and the query result are small but counted.
fn prepared_bytes(p: &PreparedQuery) -> usize {
    let graphs = p
        .graphs
        .iter()
        .map(|g| 64 + g.graph.nodes.len() * 32 + g.graph.edges.len() * 96)
        .sum::<usize>();
    p.pt.approx_bytes() + graphs + 256
}
