//! Interactive session handles.
//!
//! A [`SessionHandle`] pins one `(database, query)` pair and answers
//! repeated [`ask`](SessionHandle::ask) calls. The first question pays
//! for provenance, join-graph enumeration, and APT materialization; the
//! service caches all three keyed by database epoch, canonical SQL, and
//! canonical join-graph key, so later questions — from this handle or any
//! other session on the same query — skip straight to mining (§2.4's
//! interactive usage pattern).

use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use cajade_core::pipeline::{self, GraphOutcome, PreparedQuery};
use cajade_core::{Params, SessionResult, UserQuestion};
use cajade_graph::Apt;
use cajade_query::Query;
use rayon::prelude::*;

use crate::keys::{AnswerKey, AptKey, ProvKey};
use crate::service::{RegisteredDb, ServiceInner};
use crate::{Result, ServiceError};

/// One answered question plus its cache telemetry.
#[derive(Debug)]
pub struct AskResult {
    /// The ranked explanations and pipeline statistics. On a warm ask the
    /// provenance / enumeration / materialization timings reflect work
    /// actually done (zero on cache hits), mirroring the latency the
    /// caller observed.
    pub result: SessionResult,
    /// Whether the fully-ranked answer came straight from the answer
    /// cache (same db epoch, query, parameters, and question). When true,
    /// no pipeline stage ran at all.
    pub answer_cache_hit: bool,
    /// Whether provenance + enumeration came from cache.
    pub provenance_cache_hit: bool,
    /// Join graphs whose APT came from cache.
    pub apt_cache_hits: usize,
    /// Join graphs whose APT had to be materialized.
    pub apt_cache_misses: usize,
    /// End-to-end wall clock of this ask.
    pub wall: Duration,
}

/// An open interactive session. Cheap to share across threads; all
/// mutable state lives in the service's caches.
pub struct SessionHandle {
    id: u64,
    db_name: String,
    query: Query,
    sql: String,
    params: Params,
    params_fingerprint: u64,
    prep_fingerprint: u64,
    service: Weak<ServiceInner>,
}

impl SessionHandle {
    pub(crate) fn new(
        id: u64,
        db_name: String,
        query: Query,
        params: Params,
        service: Weak<ServiceInner>,
    ) -> Self {
        let sql = query.to_sql();
        let params_fingerprint = SessionHandle::params_fingerprint_of(&params);
        // Only the enumeration-relevant knobs key the prepared-query
        // cache: two sessions differing purely in mining parameters can
        // safely share one prepared result.
        let prep_fingerprint = fnv1a(
            format!(
                "{}|{}|{}|{}",
                params.max_edges,
                params.max_cost.to_bits(),
                params.check_pk_coverage,
                params.include_pt_only
            )
            .as_bytes(),
        );
        SessionHandle {
            id,
            db_name,
            query,
            sql,
            params,
            params_fingerprint,
            prep_fingerprint,
            service,
        }
    }

    /// The cache fingerprint of a parameter set. The Debug rendering
    /// covers every λ; hashing it is a pragmatic fingerprint without a
    /// bespoke Hash impl across crates.
    pub(crate) fn params_fingerprint_of(params: &Params) -> u64 {
        fnv1a(format!("{params:?}").as_bytes())
    }

    /// Session id (stable for the lifetime of the service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The registered database name this session queries.
    pub fn db_name(&self) -> &str {
        &self.db_name
    }

    /// Canonical SQL of the session's query.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The session's pipeline parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Answers one user question.
    ///
    /// Stage reuse: provenance + enumeration are fetched from (or
    /// inserted into) the provenance cache; each valid join graph's APT
    /// is fetched from (or materialized into) the APT cache; mining and
    /// ranking always run because they depend on the question.
    pub fn ask(&self, question: &UserQuestion) -> Result<AskResult> {
        let inner = self.service.upgrade().ok_or(ServiceError::ServiceDropped)?;
        let t_start = Instant::now();
        let reg: Arc<RegisteredDb> = inner.registered(&self.db_name)?;

        // ---- Stage 0: the fully-ranked answer may already be cached. ----
        let answer_key = AnswerKey {
            db: self.db_name.clone(),
            epoch: reg.epoch,
            sql: self.sql.clone(),
            params_fingerprint: self.params_fingerprint,
            question: AnswerKey::canonical_question(question),
        };
        if let Some(cached) = inner.answer_cache.get(&answer_key) {
            inner
                .questions_answered
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut result = (*cached).clone();
            // No pipeline stage ran; the cold run's stage timings would
            // misreport this request's work.
            result.timings = cajade_core::SessionTimings::default();
            return Ok(AskResult {
                result,
                answer_cache_hit: true,
                provenance_cache_hit: true,
                apt_cache_hits: 0,
                apt_cache_misses: 0,
                wall: t_start.elapsed(),
            });
        }

        // ---- Stage 1+2: provenance + enumeration, cached. ---------------
        let (prepared, provenance_cache_hit) = self.prepare_cached(&inner, &reg)?;

        let mining_question =
            pipeline::resolve_question(&reg.db, &self.query, &prepared.pt, question)?;

        // ---- Stage 3: APTs, cached per canonical join-graph key. --------
        let valid = prepared.valid_graph_indices();
        let mut ready: Vec<(usize, Arc<Apt>, Duration)> = Vec::with_capacity(valid.len());
        let mut misses: Vec<(usize, AptKey)> = Vec::new();
        for &gi in &valid {
            let key = AptKey {
                db: self.db_name.clone(),
                epoch: reg.epoch,
                sql: self.sql.clone(),
                graph: prepared.graphs[gi].graph.key(),
            };
            match inner.apt_cache.get(&key) {
                Some(apt) => ready.push((gi, apt, Duration::ZERO)),
                None => misses.push((gi, key)),
            }
        }
        let apt_cache_hits = ready.len();
        let apt_cache_misses = misses.len();

        let materialize_one = |gi: usize| -> Result<(Arc<Apt>, Duration)> {
            let t0 = Instant::now();
            let apt = pipeline::materialize(&reg.db, &prepared.pt, &prepared.graphs[gi])?;
            Ok((Arc::new(apt), t0.elapsed()))
        };
        let fresh: Vec<(usize, Arc<Apt>, Duration)> = if self.params.parallel && misses.len() > 1 {
            misses
                .par_iter()
                .map(|(gi, _)| materialize_one(*gi).map(|(a, d)| (*gi, a, d)))
                .collect::<Result<Vec<_>>>()?
        } else {
            misses
                .iter()
                .map(|(gi, _)| materialize_one(*gi).map(|(a, d)| (*gi, a, d)))
                .collect::<Result<Vec<_>>>()?
        };
        // Skip inserts if the database was re-registered mid-ask: keys of
        // a stale epoch would be unreachable yet hold cache budget.
        if inner.epoch_is_current(&self.db_name, reg.epoch) {
            for ((_, key), (_, apt, _)) in misses.iter().zip(&fresh) {
                inner
                    .apt_cache
                    .insert(key.clone(), Arc::clone(apt), apt.approx_bytes());
            }
        }
        ready.extend(fresh);
        ready.sort_by_key(|(gi, _, _)| *gi);

        // ---- Stage 4: mining (always question-specific). ----------------
        let mine_one = |(gi, apt, mat): &(usize, Arc<Apt>, Duration)| -> GraphOutcome {
            pipeline::mine_one(
                &reg.db,
                &self.query,
                &prepared.pt,
                apt,
                &mining_question,
                &self.params,
                *gi,
                *mat,
            )
        };
        let outcomes: Vec<GraphOutcome> = if self.params.parallel && ready.len() > 1 {
            ready.par_iter().map(mine_one).collect()
        } else {
            ready.iter().map(mine_one).collect()
        };

        // ---- Stage 5: assemble + rank. ----------------------------------
        let mut result = pipeline::assemble(&prepared, outcomes, &self.params);
        if provenance_cache_hit {
            // Those phases were skipped; report the latency actually paid.
            result.timings.provenance = Duration::ZERO;
            result.timings.jg_enum = Duration::ZERO;
        }
        if inner.epoch_is_current(&self.db_name, reg.epoch) {
            inner
                .answer_cache
                .insert(answer_key, Arc::new(result.clone()), answer_bytes(&result));
        }
        inner
            .questions_answered
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(AskResult {
            result,
            answer_cache_hit: false,
            provenance_cache_hit,
            apt_cache_hits,
            apt_cache_misses,
            wall: t_start.elapsed(),
        })
    }

    /// Convenience: two-point question from `(column, value)` pairs.
    pub fn ask_between(&self, t1: &[(&str, &str)], t2: &[(&str, &str)]) -> Result<AskResult> {
        self.ask(&UserQuestion::two_point(t1, t2))
    }

    /// Runs (or fetches) the session's prepared stages and returns the
    /// query's answer relation. Used by the serve protocol's `query` op:
    /// previewing the output tuples warms the provenance cache, so the
    /// session's first `ask` already skips preparation.
    pub fn preview(&self) -> Result<cajade_query::QueryResult> {
        let inner = self.service.upgrade().ok_or(ServiceError::ServiceDropped)?;
        let reg = inner.registered(&self.db_name)?;
        let (prepared, _) = self.prepare_cached(&inner, &reg)?;
        Ok(prepared.result.clone())
    }

    /// Provenance-cache get-or-compute for this session's `(db, query,
    /// enumeration params)` coordinates.
    fn prepare_cached(
        &self,
        inner: &ServiceInner,
        reg: &RegisteredDb,
    ) -> Result<(Arc<PreparedQuery>, bool)> {
        let prov_key = ProvKey {
            db: self.db_name.clone(),
            epoch: reg.epoch,
            sql: self.sql.clone(),
            prep_fingerprint: self.prep_fingerprint,
        };
        match inner.prov_cache.get(&prov_key) {
            Some(p) => Ok((p, true)),
            None => {
                let p = Arc::new(pipeline::prepare(
                    &reg.db,
                    &reg.schema_graph,
                    &self.query,
                    &self.params,
                )?);
                if inner.epoch_is_current(&self.db_name, reg.epoch) {
                    inner
                        .prov_cache
                        .insert(prov_key, Arc::clone(&p), prepared_bytes(&p));
                }
                Ok((p, false))
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Cache accounting for an answered question: the ranked explanation list
/// plus the result preview table.
fn answer_bytes(r: &SessionResult) -> usize {
    r.explanations
        .iter()
        .map(|e| {
            e.pattern_desc.len()
                + e.primary.len()
                + e.graph_structure.len()
                + e.graph_edges.iter().map(String::len).sum::<usize>()
                + e.preds
                    .iter()
                    .map(|(a, b, c)| a.len() + b.len() + c.len())
                    .sum::<usize>()
                + 128
        })
        .sum::<usize>()
        + r.apt_stats
            .iter()
            .map(|(s, _, _)| s.len() + 32)
            .sum::<usize>()
        + (0..r.result.table.num_columns())
            .map(|c| r.result.table.column(c).approx_bytes())
            .sum::<usize>()
        + 512
}

/// Cache accounting for a prepared query: the provenance table dominates;
/// enumeration output and the query result are small but counted.
fn prepared_bytes(p: &PreparedQuery) -> usize {
    let graphs = p
        .graphs
        .iter()
        .map(|g| 64 + g.graph.nodes.len() * 32 + g.graph.edges.len() * 96)
        .sum::<usize>();
    p.pt.approx_bytes() + graphs + 256
}
