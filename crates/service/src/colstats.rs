//! The service-backed [`ColumnStatsProvider`]: cross-graph shared column
//! statistics.
//!
//! A question over `k` join graphs prepares `k` APTs, and the same
//! context-table column (say `scoring.pts`) appears in many of them.
//! Before this cache each [`cajade_mining::prepare_apt_with`] re-derived
//! that column's quantile bins and fragment boundaries from its own APT
//! gather; now the **first** preparation to touch a column computes its
//! [`ColumnStats`] from the base table — single-flighted, so concurrent
//! per-graph preparations of one ask never duplicate the work — and every
//! later graph (and every later ask, session, or parameter-compatible
//! client) reuses the entry with a pointer clone.
//!
//! Entries are keyed by `(db, epoch, table, column, stats fingerprint)`
//! and live in an LRU cache under their own byte budget
//! ([`crate::ServiceConfig::column_stats_cache_bytes`]). Re-registering a
//! database with different content advances its epoch and sweeps the
//! stale entries, exactly like the provenance/APT/answer caches.

use std::sync::Arc;

use cajade_mining::{base_column_stats, ColumnStats, ColumnStatsConfig, ColumnStatsProvider};

use crate::keys::ColStatsKey;
use crate::service::{RegisteredDb, ServiceInner};

/// One ask's view of the service column-statistics cache: resolves
/// `(table, column)` against the pinned database snapshot and serves
/// hits/misses through the epoch-keyed LRU.
pub(crate) struct DbColumnStats<'a> {
    pub(crate) inner: &'a ServiceInner,
    pub(crate) reg: &'a RegisteredDb,
    pub(crate) cfg: ColumnStatsConfig,
    pub(crate) fingerprint: u64,
}

impl<'a> DbColumnStats<'a> {
    pub(crate) fn new(
        inner: &'a ServiceInner,
        reg: &'a RegisteredDb,
        params: &cajade_core::Params,
    ) -> Self {
        let cfg = ColumnStatsConfig::from_params(&params.mining);
        DbColumnStats {
            inner,
            reg,
            fingerprint: cfg.fingerprint(),
            cfg,
        }
    }
}

impl ColumnStatsProvider for DbColumnStats<'_> {
    fn column_stats(&self, table: &str, column: &str) -> Option<Arc<ColumnStats>> {
        // Existence check up front so unresolvable columns never occupy a
        // cache key; the computation itself goes through the one shared
        // resolution path (`base_column_stats`).
        let t = self.reg.db.table(table).ok()?;
        t.schema().field_index(column)?;
        let key = ColStatsKey {
            db: self.reg.name.clone(),
            epoch: self.reg.epoch,
            table: table.to_string(),
            column: column.to_string(),
            stats_fingerprint: self.fingerprint,
        };
        let result = self
            .inner
            .column_stats
            .get_or_try_compute::<std::convert::Infallible>(&key, || {
                // Attribute the retained statistics to the cache that
                // holds them (heap-attribution scope taxonomy).
                let _mem = cajade_obs::AllocScope::enter("cache.column_stats");
                let stats = Arc::new(
                    base_column_stats(&self.reg.db, table, column, &self.cfg)
                        .expect("column existence checked above"),
                );
                // Skip retention if the database was re-registered
                // mid-compute — a stale-epoch key would hold budget
                // nothing can look up (same rule as the other caches).
                let bytes = self
                    .inner
                    .epoch_is_current(&self.reg.name, self.reg.epoch)
                    .then(|| stats.approx_bytes() + key.approx_bytes());
                Ok((stats, bytes))
            });
        match result {
            Ok((stats, _hit)) => Some(stats),
            Err(infallible) => match infallible {},
        }
    }
}
