//! Service-side telemetry wiring.
//!
//! [`ServiceObs`] pre-resolves every `cajade-obs` instrument the hot
//! paths record into — counter/gauge/histogram handles are looked up
//! once at service construction, so an `ask` never touches the
//! registry's name map. The metric names here, the cache counter names
//! minted by [`crate::cache::CacheObs`], and the span taxonomy are all
//! documented in `docs/OBSERVABILITY.md`.

use std::sync::Arc;
use std::time::Duration;

use cajade_core::SessionTimings;
use cajade_ingest::IngestTimings;
use cajade_obs::{Counter, Histogram, Registry};

/// Pre-resolved instrument handles for the service's recording sites.
pub(crate) struct ServiceObs {
    /// The registry all instruments live in (also serves snapshots).
    pub registry: Arc<Registry>,

    // ---- Request counters. ---------------------------------------------
    pub asks_total: Arc<Counter>,
    pub sessions_opened_total: Arc<Counter>,
    pub prepared_apt_hits_total: Arc<Counter>,
    pub prepared_apt_misses_total: Arc<Counter>,

    // ---- Robustness counters. ------------------------------------------
    /// Asks whose request budget (deadline or cancellation) expired
    /// before the pipeline finished.
    pub ask_deadline_exceeded_total: Arc<Counter>,
    /// Asks answered with a truncated, best-so-far result
    /// (`degraded: true` on the wire).
    pub ask_degraded_total: Arc<Counter>,
    /// Protocol requests that panicked and were isolated by the serve
    /// loop's `catch_unwind` (each becomes an `internal_panic` error
    /// response; the process keeps serving).
    pub requests_panicked_total: Arc<Counter>,

    // ---- Ask latency histograms (µs). ----------------------------------
    pub ask_total_us: Arc<Histogram>,
    pub ask_provenance_us: Arc<Histogram>,
    pub ask_jg_enum_us: Arc<Histogram>,
    pub ask_materialize_us: Arc<Histogram>,
    pub ask_mine_us: Arc<Histogram>,

    // ---- Mining phase histograms (µs) + pruning counters. --------------
    pub mine_feature_selection_us: Arc<Histogram>,
    pub mine_gen_pat_cand_us: Arc<Histogram>,
    pub mine_sampling_for_f1_us: Arc<Histogram>,
    pub mine_fscore_calc_us: Arc<Histogram>,
    pub mine_refine_patterns_us: Arc<Histogram>,
    pub mine_prepare_us: Arc<Histogram>,
    pub mine_ub_pruned_children_total: Arc<Counter>,
    pub mine_recall_pruned_subtrees_total: Arc<Counter>,

    // ---- Ingest stage histograms (µs, one sample per ingest). ----------
    pub ingest_scan_us: Arc<Histogram>,
    pub ingest_infer_us: Arc<Histogram>,
    pub ingest_load_us: Arc<Histogram>,
    pub ingest_discover_us: Arc<Histogram>,
    pub ingest_total_us: Arc<Histogram>,
}

impl ServiceObs {
    pub(crate) fn new(registry: Arc<Registry>) -> ServiceObs {
        let r = &registry;
        ServiceObs {
            asks_total: r.counter("asks_total"),
            sessions_opened_total: r.counter("sessions_opened_total"),
            prepared_apt_hits_total: r.counter("prepared_apt_hits_total"),
            prepared_apt_misses_total: r.counter("prepared_apt_misses_total"),
            ask_deadline_exceeded_total: r.counter("ask_deadline_exceeded_total"),
            ask_degraded_total: r.counter("ask_degraded_total"),
            requests_panicked_total: r.counter("requests_panicked_total"),
            ask_total_us: r.histogram("ask_total_us"),
            ask_provenance_us: r.histogram("ask_provenance_us"),
            ask_jg_enum_us: r.histogram("ask_jg_enum_us"),
            ask_materialize_us: r.histogram("ask_materialize_us"),
            ask_mine_us: r.histogram("ask_mine_us"),
            mine_feature_selection_us: r.histogram("mine_feature_selection_us"),
            mine_gen_pat_cand_us: r.histogram("mine_gen_pat_cand_us"),
            mine_sampling_for_f1_us: r.histogram("mine_sampling_for_f1_us"),
            mine_fscore_calc_us: r.histogram("mine_fscore_calc_us"),
            mine_refine_patterns_us: r.histogram("mine_refine_patterns_us"),
            mine_prepare_us: r.histogram("mine_prepare_us"),
            mine_ub_pruned_children_total: r.counter("mine_ub_pruned_children_total"),
            mine_recall_pruned_subtrees_total: r.counter("mine_recall_pruned_subtrees_total"),
            ingest_scan_us: r.histogram("ingest_scan_us"),
            ingest_infer_us: r.histogram("ingest_infer_us"),
            ingest_load_us: r.histogram("ingest_load_us"),
            ingest_discover_us: r.histogram("ingest_discover_us"),
            ingest_total_us: r.histogram("ingest_total_us"),
            registry,
        }
    }

    /// Records one completed ask: end-to-end wall plus the per-stage and
    /// per-mining-phase breakdown. Answer-cache hits pass the default
    /// (all-zero) timings, contributing only to `ask_total_us` — the
    /// stage histograms describe work actually performed.
    pub(crate) fn record_ask(&self, wall: Duration, timings: &SessionTimings) {
        self.asks_total.inc();
        self.ask_total_us.record_duration(wall);
        if timings.total() == Duration::ZERO {
            return;
        }
        self.ask_provenance_us.record_duration(timings.provenance);
        self.ask_jg_enum_us.record_duration(timings.jg_enum);
        self.ask_materialize_us
            .record_duration(timings.materialize_apts);
        let m = &timings.mining;
        self.ask_mine_us.record_duration(m.total());
        self.mine_feature_selection_us
            .record_duration(m.feature_selection);
        self.mine_gen_pat_cand_us.record_duration(m.gen_pat_cand);
        self.mine_sampling_for_f1_us
            .record_duration(m.sampling_for_f1);
        self.mine_fscore_calc_us.record_duration(m.fscore_calc);
        self.mine_refine_patterns_us
            .record_duration(m.refine_patterns);
        self.mine_prepare_us.record_duration(m.prepare);
        self.mine_ub_pruned_children_total.add(m.ub_pruned_children);
        self.mine_recall_pruned_subtrees_total
            .add(m.recall_pruned_subtrees);
    }

    /// Records one CSV-directory ingest's stage timings.
    pub(crate) fn record_ingest(&self, t: &IngestTimings) {
        self.ingest_scan_us.record_duration(t.scan);
        self.ingest_infer_us.record_duration(t.infer);
        self.ingest_load_us.record_duration(t.load);
        self.ingest_discover_us.record_duration(t.discover);
        self.ingest_total_us
            .record_duration(t.scan + t.infer + t.load + t.discover);
    }
}
