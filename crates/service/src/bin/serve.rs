//! `cajade-serve` — the CaJaDE interactive explanation service over a
//! JSON-lines stdin/stdout protocol.
//!
//! ```text
//! cargo run -p cajade-service --release --bin cajade-serve
//! ```
//!
//! One request per line in, one JSON response per line out; see
//! `cajade_service::protocol` for the full op table. Example:
//!
//! ```text
//! {"op":"register","db":"nba","dataset":"nba","scale":0.25}
//! {"op":"query","db":"nba","sql":"SELECT COUNT(*) AS win, s.season_name FROM team t, game g, season s WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' GROUP BY s.season_name"}
//! {"op":"ask","session":1,"t1":{"season_name":"2015-16"},"t2":{"season_name":"2012-13"}}
//! {"op":"stats"}
//! {"op":"metrics"}
//! ```
//!
//! Set `CAJADE_TRACE=1` (spans) or `CAJADE_TRACE=2` (detail) to stream
//! span records to stderr as JSON lines; `{"op":"metrics"}` exports the
//! process-wide registry (see `docs/OBSERVABILITY.md`).

use std::io::{BufRead, Write};

use cajade_service::{protocol, ExplanationService, ServiceConfig};

// Heap attribution: every allocation flows through the tracking wrapper,
// so the `metrics` op's `memory` block and traced asks' per-span
// `alloc_bytes` report real bytes. A few relaxed atomics per alloc; see
// docs/OBSERVABILITY.md § Memory attribution.
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;

fn main() {
    // CAJADE_TRACE=1|spans / 2|detail streams span records to stderr as
    // JSON lines; unset or 0 keeps tracing at its ~ns disabled path.
    cajade_obs::init_from_env();
    // CAJADE_FAULTS arms the fault-injection harness (test/CI only); see
    // docs/ROBUSTNESS.md for the site=action grammar. Unset means every
    // failpoint is a single relaxed atomic load.
    cajade_obs::faults::init_from_env();
    let service = ExplanationService::new(ServiceConfig {
        registry: cajade_obs::global().clone(),
        ..ServiceConfig::default()
    });
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // stdin closed
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = protocol::handle_line(&service, &line);
        if writeln!(out, "{}", response.render())
            .and_then(|()| out.flush())
            .is_err()
        {
            break; // stdout closed
        }
    }
}
