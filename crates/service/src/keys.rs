//! Cache keys.
//!
//! Every key embeds the owning database's registration *epoch*: when a
//! database is re-registered with different content, its epoch advances
//! and all previously-cached entries become unreachable (and are swept
//! eagerly by [`crate::ExplanationService::register_database`]). Queries
//! are keyed by their canonical SQL rendering, join graphs by their
//! canonical isomorphism key.

use cajade_graph::JoinGraphKey;

/// Key of a cached provenance + enumeration result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProvKey {
    /// Registered database name.
    pub db: String,
    /// Database registration epoch.
    pub epoch: u64,
    /// Canonical SQL (`Query::to_sql`).
    pub sql: String,
    /// Fingerprint of the enumeration-relevant parameters (λ#edges,
    /// λ_qcost, validity checks). Sessions with different enumeration
    /// settings must not share a prepared result — the cached join-graph
    /// list depends on them.
    pub prep_fingerprint: u64,
}

/// Key of a shared column-statistics entry (quantile bin spec + fragment
/// boundaries of one base-table column — see
/// [`cajade_mining::ColumnStats`]). Scoped to the database epoch like
/// every other cache key, plus a fingerprint of the stats-relevant mining
/// knobs ([`cajade_mining::ColumnStatsConfig`]): sessions with different
/// λ#frag or bin budgets must not share boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColStatsKey {
    /// Registered database name.
    pub db: String,
    /// Database registration epoch.
    pub epoch: u64,
    /// Base table name.
    pub table: String,
    /// Base column name.
    pub column: String,
    /// Fingerprint of the stats-relevant mining parameters.
    pub stats_fingerprint: u64,
}

impl ColStatsKey {
    /// Approximate key footprint for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.db.len() + self.table.len() + self.column.len() + 24
    }
}

/// Key of a cached materialized APT.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AptKey {
    /// Registered database name.
    pub db: String,
    /// Database registration epoch.
    pub epoch: u64,
    /// Canonical SQL (`Query::to_sql`).
    pub sql: String,
    /// Canonical join-graph key.
    pub graph: JoinGraphKey,
}

/// Key of a cached fully-answered question. Besides the database/query
/// coordinates this embeds the canonicalized question and a fingerprint
/// of the session's parameters, so sessions with different λ settings
/// never share answers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnswerKey {
    /// Registered database name.
    pub db: String,
    /// Database registration epoch.
    pub epoch: u64,
    /// Canonical SQL (`Query::to_sql`).
    pub sql: String,
    /// Fingerprint of the session parameters.
    pub params_fingerprint: u64,
    /// Canonicalized user question (see [`AnswerKey::canonical_question`]).
    pub question: String,
}

impl AnswerKey {
    /// Canonical rendering of a user question: tuple specs keep their
    /// role order (t1 vs t2 is semantically primary vs secondary) but
    /// column pairs within a spec are sorted. Each component is
    /// length-prefixed, so values containing `,`, `=`, or `|` cannot
    /// collide with a differently-structured question.
    pub fn canonical_question(question: &cajade_core::UserQuestion) -> String {
        use cajade_core::UserQuestion;
        let spec = |pairs: &[(String, String)]| -> String {
            let mut sorted: Vec<String> = pairs
                .iter()
                .map(|(c, v)| format!("{}:{}={}:{}", c.len(), c, v.len(), v))
                .collect();
            sorted.sort();
            sorted.join(",")
        };
        match question {
            UserQuestion::TwoPoint { t1, t2 } => format!("2p|{}|{}", spec(t1), spec(t2)),
            UserQuestion::SinglePoint { t } => format!("1p|{}", spec(t)),
        }
    }
}

impl ProvKey {
    /// Approximate key footprint for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.db.len() + self.sql.len() + 16
    }
}

impl AptKey {
    /// Approximate key footprint for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        self.db.len() + self.sql.len() + self.graph.approx_bytes() + 8
    }
}
#[cfg(test)]
mod tests {
    use super::AnswerKey;
    use cajade_core::UserQuestion;

    #[test]
    fn canonical_question_is_order_insensitive_within_a_spec() {
        let a = UserQuestion::two_point(&[("a", "1"), ("b", "2")], &[("c", "3")]);
        let b = UserQuestion::two_point(&[("b", "2"), ("a", "1")], &[("c", "3")]);
        assert_eq!(
            AnswerKey::canonical_question(&a),
            AnswerKey::canonical_question(&b)
        );
    }

    #[test]
    fn canonical_question_keeps_role_order() {
        let a = UserQuestion::two_point(&[("a", "1")], &[("b", "2")]);
        let b = UserQuestion::two_point(&[("b", "2")], &[("a", "1")]);
        assert_ne!(
            AnswerKey::canonical_question(&a),
            AnswerKey::canonical_question(&b)
        );
    }

    #[test]
    fn canonical_question_does_not_collide_on_separator_characters() {
        // One pair whose value embeds ",b=2" vs two separate pairs.
        let tricky = UserQuestion::two_point(&[("a", "1,1:b=1:2")], &[("c", "3")]);
        let plain = UserQuestion::two_point(&[("a", "1"), ("b", "2")], &[("c", "3")]);
        assert_ne!(
            AnswerKey::canonical_question(&tricky),
            AnswerKey::canonical_question(&plain)
        );
        let eq_sign = UserQuestion::single_point(&[("a", "x=y")]);
        let split = UserQuestion::single_point(&[("a", "x"), ("", "y")]);
        assert_ne!(
            AnswerKey::canonical_question(&eq_sign),
            AnswerKey::canonical_question(&split)
        );
    }
}
