//! Keyed LRU cache with byte-budget accounting.
//!
//! The service keeps two of these: provenance/enumeration results keyed
//! by `(db, epoch, sql)` and materialized APTs keyed by
//! `(db, epoch, sql, join-graph key)`. Values travel behind `Arc`, so a
//! hit is a pointer clone and eviction never frees memory still in use by
//! an in-flight question.
//!
//! Eviction is least-recently-used by a logical tick, scanned linearly —
//! entry counts are small (tens to hundreds of heavyweight tables), so a
//! linked-list LRU would be complexity without measurable benefit.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use cajade_obs::{Counter, Registry};
use parking_lot::Mutex;

/// Registry-backed counter handles mirroring one cache's lifetime
/// counters, minted as `cache_<prefix>_<counter>_total` (e.g.
/// `cache_provenance_hits_total`). Resident entries/bytes are gauges the
/// service refreshes at snapshot time — they are instantaneous values,
/// not counters.
pub struct CacheObs {
    hits: std::sync::Arc<Counter>,
    misses: std::sync::Arc<Counter>,
    evictions: std::sync::Arc<Counter>,
    inserts: std::sync::Arc<Counter>,
    rejected: std::sync::Arc<Counter>,
    coalesced: std::sync::Arc<Counter>,
}

impl CacheObs {
    /// Resolves the six counters for the cache named `prefix`.
    pub fn new(registry: &Registry, prefix: &str) -> CacheObs {
        let c = |name: &str| registry.counter(&format!("cache_{prefix}_{name}_total"));
        CacheObs {
            hits: c("hits"),
            misses: c("misses"),
            evictions: c("evictions"),
            inserts: c("inserts"),
            rejected: c("rejected"),
            coalesced: c("coalesced"),
        }
    }
}

/// Counter snapshot for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (approximate, see `approx_bytes`).
    pub bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Lookup hits since construction.
    pub hits: u64,
    /// Lookup misses since construction.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Inserts rejected because a single value exceeded the whole budget.
    pub rejected: u64,
    /// Misses that waited on another thread's in-flight computation of the
    /// same key instead of recomputing ([`LruCache::get_or_try_compute`]).
    pub coalesced: u64,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe LRU cache with a byte budget.
pub struct LruCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    /// Per-key in-flight latches backing the single-flight
    /// [`get_or_try_compute`](LruCache::get_or_try_compute): concurrent
    /// misses on the same key serialize here, and all but the first get
    /// the winner's value instead of recomputing.
    inflight: Mutex<HashMap<K, std::sync::Arc<Mutex<()>>>>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
    coalesced: AtomicU64,
    /// Optional registry mirror of the counters above.
    obs: Option<CacheObs>,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache that will hold at most `budget_bytes` of accounted value
    /// bytes.
    pub fn new(budget_bytes: usize) -> Self {
        LruCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            inflight: Mutex::new(HashMap::new()),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Like [`new`](LruCache::new), additionally mirroring every counter
    /// into `registry` under `cache_<prefix>_…_total` names.
    pub fn with_obs(budget_bytes: usize, registry: &Registry, prefix: &str) -> Self {
        let mut cache = Self::new(budget_bytes);
        cache.obs = Some(CacheObs::new(registry, prefix));
        cache
    }

    /// Uncounted lookup (refreshes recency, touches no hit/miss counter).
    /// Used by the single-flight double-check so a waiter's satisfied
    /// lookup is reported as `coalesced` rather than a second miss+hit.
    fn peek(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Single-flight get-or-compute: a hit returns immediately; on a miss,
    /// exactly one caller runs `compute` while concurrent callers for the
    /// same key block on a per-key latch and then receive the winner's
    /// cached value (`coalesced` counts them). Returns `(value, hit)`
    /// where `hit` is true when no computation ran for this caller.
    ///
    /// `compute` returns the value plus `Some(bytes)` to cache it, or
    /// `None` to hand the value back without retaining it (e.g. when the
    /// owning database was re-registered mid-computation). If `compute`
    /// fails, waiters find no cached value and compute in turn —
    /// serialized by the stale latch, so an erroring key never stampedes.
    pub fn get_or_try_compute<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<(V, Option<usize>), E>,
    ) -> Result<(V, bool), E> {
        if let Some(v) = self.get(key) {
            return Ok((v, true));
        }
        let latch = std::sync::Arc::clone(
            self.inflight
                .lock()
                .entry(key.clone())
                .or_insert_with(|| std::sync::Arc::new(Mutex::new(()))),
        );
        let guard = latch.lock();
        if let Some(v) = self.peek(key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.coalesced.inc();
            }
            return Ok((v, true));
        }
        // Compute and insert while still holding the latch, so a waiter
        // can only wake after the value is resident. `compute` is run
        // under `catch_unwind` so a panicking computation still cleans up
        // its in-flight latch below — otherwise the registry entry would
        // leak and the key's future misses would serialize on a dead latch
        // forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute)).map(|r| {
            r.map(|(value, bytes)| {
                if let Some(bytes) = bytes {
                    self.insert(key.clone(), value.clone(), bytes);
                }
                (value, false)
            })
        });
        // Drop the latch from the registry before releasing it; late
        // waiters holding the stale Arc still serialize on it and then
        // re-check the cache.
        self.inflight.lock().remove(key);
        drop(guard);
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &self.obs {
                    o.hits.inc();
                }
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &self.obs {
                    o.misses.inc();
                }
                None
            }
        }
    }

    /// Inserts `value` accounted as `bytes`, evicting least-recently-used
    /// entries until the budget holds. A value larger than the entire
    /// budget is not cached (callers still use it; it is just not
    /// retained). Returns whether the value was retained.
    pub fn insert(&self, key: K, value: V, bytes: usize) -> bool {
        if bytes > self.budget_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &self.obs {
                o.rejected.inc();
            }
            return false;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget_bytes {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    let e = inner.map.remove(&k).expect("lru key present");
                    inner.bytes -= e.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &self.obs {
                        o.evictions.inc();
                    }
                }
                None => break,
            }
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: tick,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.inserts.inc();
        }
        true
    }

    /// Removes every entry whose key fails `keep`, returning how many were
    /// dropped. Used to sweep a database's stale epochs on re-registration.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        let mut freed = 0usize;
        inner.map.retain(|k, e| {
            if keep(k) {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        inner.bytes -= freed;
        before - inner.map.len()
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counters() {
        let c: LruCache<u32, &'static str> = LruCache::new(1024);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one", 10);
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        assert_eq!(s.bytes, 10);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 10, 40);
        c.insert(2, 20, 40);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30, 40); // exceeds 100 → evict 2
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 80);
    }

    #[test]
    fn oversized_values_are_rejected_not_cached() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        assert!(!c.insert(1, 1, 101));
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 10, 60);
        c.insert(1, 11, 30);
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 30);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn retain_sweeps_matching_keys() {
        let c: LruCache<(u32, u32), u32> = LruCache::new(1000);
        c.insert((1, 0), 1, 10);
        c.insert((1, 1), 2, 10);
        c.insert((2, 0), 3, 10);
        let dropped = c.retain(|k| k.0 != 1);
        assert_eq!(dropped, 2);
        assert_eq!(c.get(&(2, 0)), Some(3));
        assert_eq!(c.stats().bytes, 10);
    }

    #[test]
    fn single_flight_computes_once_for_concurrent_misses() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let c: Arc<LruCache<u32, u32>> = Arc::new(LruCache::new(1024));
        let computes = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let n = Arc::clone(&computes);
                s.spawn(move || {
                    let (v, _) = c
                        .get_or_try_compute::<()>(&7, || {
                            n.fetch_add(1, Ordering::SeqCst);
                            // Long enough that the other threads reach the
                            // latch while the winner is still computing.
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            Ok((42, Some(8)))
                        })
                        .unwrap();
                    assert_eq!(v, 42);
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "only one thread computes; the rest coalesce or hit"
        );
        let s = c.stats();
        assert_eq!(s.inserts, 1);
        assert!(s.coalesced + s.hits >= 3, "{s:?}");
    }

    #[test]
    fn single_flight_error_does_not_poison_the_key() {
        let c: LruCache<u32, u32> = LruCache::new(1024);
        let err = c.get_or_try_compute(&1, || Err::<(u32, Option<usize>), _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        // The key computes fine afterwards.
        let (v, hit) = c.get_or_try_compute::<()>(&1, || Ok((5, Some(4)))).unwrap();
        assert_eq!((v, hit), (5, false));
        let (v, hit) = c
            .get_or_try_compute::<()>(&1, || unreachable!("cached"))
            .unwrap();
        assert_eq!((v, hit), (5, true));
    }

    #[test]
    fn single_flight_panic_does_not_poison_the_key() {
        let c: LruCache<u32, u32> = LruCache::new(1024);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.get_or_try_compute::<()>(&1, || panic!("compute exploded"));
        }));
        assert!(panicked.is_err(), "the panic propagates to the caller");
        assert!(
            c.inflight.lock().is_empty(),
            "the in-flight latch is cleaned up on unwind"
        );
        // The key computes fine afterwards.
        let (v, hit) = c.get_or_try_compute::<()>(&1, || Ok((5, Some(4)))).unwrap();
        assert_eq!((v, hit), (5, false));
        let (v, hit) = c
            .get_or_try_compute::<()>(&1, || unreachable!("cached"))
            .unwrap();
        assert_eq!((v, hit), (5, true));
    }

    #[test]
    fn single_flight_panic_lets_waiters_compute_instead_of_hang() {
        use std::sync::Arc;
        let c: Arc<LruCache<u32, u32>> = Arc::new(LruCache::new(1024));
        std::thread::scope(|s| {
            let winner = {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _ = c.get_or_try_compute::<()>(&1, || {
                            // Hold the latch long enough for the waiter to
                            // block on it before the panic.
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            panic!("compute exploded")
                        });
                    }))
                })
            };
            let waiter = {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    c.get_or_try_compute::<()>(&1, || Ok((5, Some(4)))).unwrap()
                })
            };
            assert!(winner.join().unwrap().is_err());
            // The waiter wakes, finds nothing cached, and computes in turn.
            assert_eq!(waiter.join().unwrap(), (5, false));
        });
        assert!(c.inflight.lock().is_empty());
    }

    #[test]
    fn single_flight_uncached_compute_is_not_retained() {
        let c: LruCache<u32, u32> = LruCache::new(1024);
        let (v, hit) = c.get_or_try_compute::<()>(&9, || Ok((3, None))).unwrap();
        assert_eq!((v, hit), (3, false));
        assert_eq!(c.get(&9), None, "None bytes means do not retain");
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c: Arc<LruCache<u64, u64>> = Arc::new(LruCache::new(8 * 1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 500 + i) % 64;
                        if c.get(&k).is_none() {
                            c.insert(k, k * 2, 64);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.entries <= 64);
        assert!(s.bytes <= 8 * 1024);
        assert_eq!(s.hits + s.misses, 2000);
    }
}
