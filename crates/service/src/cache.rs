//! Keyed LRU cache with byte-budget accounting.
//!
//! The service keeps two of these: provenance/enumeration results keyed
//! by `(db, epoch, sql)` and materialized APTs keyed by
//! `(db, epoch, sql, join-graph key)`. Values travel behind `Arc`, so a
//! hit is a pointer clone and eviction never frees memory still in use by
//! an in-flight question.
//!
//! Eviction is least-recently-used by a logical tick, scanned linearly —
//! entry counts are small (tens to hundreds of heavyweight tables), so a
//! linked-list LRU would be complexity without measurable benefit.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Counter snapshot for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (approximate, see `approx_bytes`).
    pub bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Lookup hits since construction.
    pub hits: u64,
    /// Lookup misses since construction.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Inserts rejected because a single value exceeded the whole budget.
    pub rejected: u64,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe LRU cache with a byte budget.
pub struct LruCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache that will hold at most `budget_bytes` of accounted value
    /// bytes.
    pub fn new(budget_bytes: usize) -> Self {
        LruCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` accounted as `bytes`, evicting least-recently-used
    /// entries until the budget holds. A value larger than the entire
    /// budget is not cached (callers still use it; it is just not
    /// retained). Returns whether the value was retained.
    pub fn insert(&self, key: K, value: V, bytes: usize) -> bool {
        if bytes > self.budget_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget_bytes {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    let e = inner.map.remove(&k).expect("lru key present");
                    inner.bytes -= e.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                value,
                bytes,
                last_used: tick,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Removes every entry whose key fails `keep`, returning how many were
    /// dropped. Used to sweep a database's stale epochs on re-registration.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        let mut freed = 0usize;
        inner.map.retain(|k, e| {
            if keep(k) {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        inner.bytes -= freed;
        before - inner.map.len()
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counters() {
        let c: LruCache<u32, &'static str> = LruCache::new(1024);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one", 10);
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        assert_eq!(s.bytes, 10);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 10, 40);
        c.insert(2, 20, 40);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30, 40); // exceeds 100 → evict 2
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 80);
    }

    #[test]
    fn oversized_values_are_rejected_not_cached() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        assert!(!c.insert(1, 1, 101));
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 10, 60);
        c.insert(1, 11, 30);
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 30);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn retain_sweeps_matching_keys() {
        let c: LruCache<(u32, u32), u32> = LruCache::new(1000);
        c.insert((1, 0), 1, 10);
        c.insert((1, 1), 2, 10);
        c.insert((2, 0), 3, 10);
        let dropped = c.retain(|k| k.0 != 1);
        assert_eq!(dropped, 2);
        assert_eq!(c.get(&(2, 0)), Some(3));
        assert_eq!(c.stats().bytes, 10);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c: Arc<LruCache<u64, u64>> = Arc::new(LruCache::new(8 * 1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 500 + i) % 64;
                        if c.get(&k).is_none() {
                            c.insert(k, k * 2, 64);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.entries <= 64);
        assert!(s.bytes <= 8 * 1024);
        assert_eq!(s.hits + s.misses, 2000);
    }
}
