//! Minimal JSON tree, parser, and writer for the `cajade-serve` wire
//! protocol. Hand-rolled because the build environment vendors no
//! `serde_json`; the protocol's payloads are small and flat, so a tiny
//! recursive-descent parser is plenty.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve no duplicate keys; ordering is sorted
/// (BTreeMap), which keeps rendered output deterministic for tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; the protocol's integers fit exactly).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object.
    Obj(BTreeMap<String, Json>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value shortcut.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number shortcut.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned-integer view (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no inf/NaN
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("short surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("high surrogate not followed by low"));
                                    }
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"null"#,
            r#"true"#,
            r#"[1,2.5,-3]"#,
            r#"{"a":[{"b":"c"},null],"d":false}"#,
            r#""he said \"hi\"\n""#,
        ] {
            let v = Json::parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"op":"ask","session":3,"deep":{"x":[1,2]}}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ask"));
        assert_eq!(v.get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀\t"));
        // Valid surrogate pair decodes; malformed pairs are rejected.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud800A""#).is_err());
        assert!(Json::parse(r#""\ud800""#).is_err());
        let rendered = Json::str("tab\tnewline\nquote\"").render();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("tab\tnewline\nquote\"")
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse(r#"{"a": }"#).unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse(r#"{"a":1} extra"#).is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(5.0).render(), "5");
        assert_eq!(Json::num(5.25).render(), "5.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
