//! # cajade-service
//!
//! The interactive explanation service layer over the CaJaDE pipeline.
//!
//! CaJaDE sessions are interactive (paper §2.4): a user runs one query,
//! then asks many successive questions about its answers. The one-shot
//! [`cajade_core::ExplanationSession`] recomputes provenance, join-graph
//! enumeration, and APT materialization — the dominant costs of the
//! paper's Fig. 10 runtime breakdown — on every question. This crate
//! keeps those stage outputs in keyed caches so the second and later
//! questions skip straight to mining:
//!
//! * [`ExplanationService`] — thread-safe catalog of registered databases
//!   (with content fingerprints and registration epochs), a session
//!   registry, and the two caches;
//! * provenance/enumeration cache keyed by `(db, epoch, canonical SQL)`;
//! * APT cache keyed by `(db, epoch, canonical SQL, canonical join-graph
//!   key)` with LRU eviction under a byte budget;
//! * answer cache keyed by `(db, epoch, canonical SQL, params, canonical
//!   question)` — a repeated question returns its fully-ranked
//!   explanations without running any pipeline stage (this reproduction's
//!   mining stage dominates the runtime profile, so skipping only
//!   preparation is not enough for interactive-grade warm latency);
//! * [`SessionHandle::ask`] — answers a [`cajade_core::UserQuestion`],
//!   materializing only cache-missed APTs (in parallel) and always
//!   re-mining, because mining is question-specific;
//! * re-registering a database with different content advances its epoch
//!   and sweeps every stale cache entry.
//!
//! The `cajade-serve` binary (this crate's `src/bin/serve.rs`) exposes
//! the service over a JSON-lines stdin/stdout protocol
//! (`register` / `query` / `ask` / `stats` / `metrics` / `close`).
//!
//! Telemetry: every service records into a `cajade-obs`
//! [`Registry`](cajade_obs::Registry) ([`ServiceConfig::registry`]) —
//! ask/stage/mining-phase latency histograms, per-cache counters, and
//! ingest stage timings — exported via
//! [`ExplanationService::metrics_snapshot`] and the protocol's `metrics`
//! op. [`SessionHandle::ask_traced`] additionally captures a per-request
//! span tree. Names and taxonomy: `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod cache;
mod colstats;
mod error;
pub mod json;
mod keys;
mod obs;
pub mod protocol;
mod service;
mod session;
mod stats;

pub use cache::{CacheObs, CacheStats};
pub use error::{ServiceError, ERROR_CODES};
pub use keys::{AnswerKey, AptKey, ColStatsKey, ProvKey};
pub use service::{AptEntry, ExplanationService, RegisterOutcome, RegisteredDb, ServiceConfig};
pub use session::{AskOptions, AskResult, SessionHandle};
pub use stats::{IngestStats, ServiceStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
