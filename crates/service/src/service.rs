//! The thread-safe explanation service: a catalog of registered
//! databases, a registry of open sessions, and the shared
//! provenance/APT caches that make repeated questions cheap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cajade_core::pipeline::PreparedQuery;
use cajade_core::Params;
use cajade_graph::{Apt, SchemaGraph};
use cajade_ingest::{IngestOptions, IngestReport};
use cajade_mining::PreparedApt;
use cajade_query::parse_sql;
use cajade_storage::Database;
use parking_lot::{Mutex, RwLock};

use crate::cache::LruCache;
use crate::keys::{AnswerKey, AptKey, ColStatsKey, ProvKey};
use crate::obs::ServiceObs;
use crate::session::SessionHandle;
use crate::stats::{IngestStats, ServiceStats};
use crate::{Result, ServiceError};

/// Hard cap on concurrently-open sessions; opening beyond it evicts the
/// oldest session id.
const MAX_OPEN_SESSIONS: usize = 4096;

/// Prepared-state variants kept per cached APT (one per distinct mining
/// parameter fingerprint — sessions rarely use more than one or two).
const MAX_PREPARED_VARIANTS: usize = 4;

/// One APT-cache entry: the materialized APT plus its question-independent
/// mining preparation(s), keyed by mining-parameter fingerprint. A *new*
/// question on a warm entry reuses both and skips straight to scoring.
#[derive(Debug)]
pub struct AptEntry {
    /// The materialized APT.
    pub apt: Arc<Apt>,
    /// `(mining params fingerprint, prepared state)` pairs, newest last.
    prepared: Mutex<Vec<(u64, Arc<PreparedApt>)>>,
}

impl AptEntry {
    /// Wraps a freshly materialized APT with no prepared state yet.
    pub fn new(apt: Arc<Apt>) -> Arc<AptEntry> {
        Arc::new(AptEntry {
            apt,
            prepared: Mutex::new(Vec::new()),
        })
    }

    /// Returns the prepared state for `fingerprint`, building it via
    /// `build` on first use. The per-entry lock is held across the build,
    /// so concurrent asks on the same APT prepare it exactly once.
    /// Returns `(prepared, hit)`.
    ///
    /// A build truncated by an expired request budget
    /// ([`PreparedApt::truncated`]) is handed back to its own request but
    /// **not** retained: an unbudgeted ask must never inherit a partial
    /// preparation computed under someone else's deadline.
    pub fn prepared_for(
        &self,
        fingerprint: u64,
        build: impl FnOnce() -> PreparedApt,
    ) -> (Arc<PreparedApt>, bool) {
        let mut variants = self.prepared.lock();
        if let Some((_, p)) = variants.iter().find(|(fp, _)| *fp == fingerprint) {
            return (Arc::clone(p), true);
        }
        let p = Arc::new(build());
        if !p.truncated {
            variants.push((fingerprint, Arc::clone(&p)));
            if variants.len() > MAX_PREPARED_VARIANTS {
                variants.remove(0);
            }
        }
        (p, false)
    }

    /// Drops all prepared variants (byte-budget pressure).
    pub fn clear_prepared(&self) {
        self.prepared.lock().clear();
    }

    /// Approximate heap footprint: APT + every prepared variant.
    pub fn approx_bytes(&self) -> usize {
        self.apt.approx_bytes()
            + self
                .prepared
                .lock()
                .iter()
                .map(|(_, p)| p.approx_bytes())
                .sum::<usize>()
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Byte budget of the provenance/enumeration cache.
    pub prov_cache_bytes: usize,
    /// Byte budget of the materialized-APT cache.
    pub apt_cache_bytes: usize,
    /// Byte budget of the answered-question cache.
    pub answer_cache_bytes: usize,
    /// Byte budget of the shared column-statistics cache: per-base-column
    /// bin specs + fragment boundaries
    /// ([`cajade_mining::ColumnStats`]) reused across join graphs, keyed
    /// by [`crate::ColStatsKey`]. Entries are small (a few hundred bytes
    /// per column), so the default budget effectively never evicts.
    pub column_stats_cache_bytes: usize,
    /// Default pipeline parameters for sessions that don't override them.
    /// `parallel` defaults to **on** here (unlike the one-shot API, whose
    /// single-threaded default mirrors the paper's runtime breakdowns).
    pub params: Params,
    /// The metrics registry this service records into. Defaults to a
    /// fresh registry so tests observe only their own counters; binaries
    /// pass `cajade_obs::global().clone()` to report process-wide.
    pub registry: Arc<cajade_obs::Registry>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let mut params = Params::paper();
        params.parallel = true;
        ServiceConfig {
            prov_cache_bytes: 256 * 1024 * 1024,
            apt_cache_bytes: 512 * 1024 * 1024,
            answer_cache_bytes: 64 * 1024 * 1024,
            column_stats_cache_bytes: 32 * 1024 * 1024,
            params,
            registry: Arc::new(cajade_obs::Registry::new()),
        }
    }
}

/// The corpus size the default byte budgets were tuned for (NBA scale
/// 0.05, ≈17 k rows across all tables).
const BUDGET_BASELINE_ROWS: usize = 17_000;

impl ServiceConfig {
    /// Budgets sized for a corpus of `total_rows` rows (summed over all
    /// tables). The defaults were tuned for NBA 0.05 (≈17 k rows); a
    /// 20× corpus materializes ≈20× the APT bytes, so a fixed budget
    /// silently turns the caches into thrash. Every budget scales
    /// linearly with `total_rows / 17 000`, floored at the defaults —
    /// small corpora keep the tuned values, large ones keep the same
    /// *relative* headroom the defaults encode.
    pub fn scaled_for_rows(total_rows: usize) -> Self {
        let base = ServiceConfig::default();
        // Integer scaling: budget * rows / baseline, floored at budget.
        let scale = |bytes: usize| -> usize {
            let scaled =
                (bytes as u128 * total_rows as u128 / BUDGET_BASELINE_ROWS as u128) as usize;
            scaled.max(bytes)
        };
        ServiceConfig {
            prov_cache_bytes: scale(base.prov_cache_bytes),
            apt_cache_bytes: scale(base.apt_cache_bytes),
            answer_cache_bytes: scale(base.answer_cache_bytes),
            column_stats_cache_bytes: scale(base.column_stats_cache_bytes),
            ..base
        }
    }

    /// [`scaled_for_rows`](ServiceConfig::scaled_for_rows) over a
    /// database that is about to be registered.
    pub fn scaled_for_db(db: &Database) -> Self {
        let rows = db.tables().iter().map(|t| t.num_rows()).sum();
        ServiceConfig::scaled_for_rows(rows)
    }
}

/// A registered database: content plus its schema graph, pinned behind
/// `Arc` so in-flight questions keep a consistent snapshot even while the
/// name is re-registered.
#[derive(Debug)]
pub struct RegisteredDb {
    /// Registration name.
    pub name: String,
    /// Registration epoch — advances when re-registration changes content.
    pub epoch: u64,
    /// Content fingerprint ([`Database::fingerprint`]).
    pub fingerprint: u64,
    /// The database.
    pub db: Database,
    /// Its schema graph.
    pub schema_graph: SchemaGraph,
}

/// What [`ExplanationService::register_database`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOutcome {
    /// The (possibly advanced) epoch now current for this name.
    pub epoch: u64,
    /// The database's content fingerprint.
    pub fingerprint: u64,
    /// True when this call replaced different content (epoch advanced and
    /// cache entries were invalidated).
    pub replaced: bool,
    /// Cache entries dropped by the invalidation sweep.
    pub invalidated_entries: usize,
}

pub(crate) struct ServiceInner {
    pub(crate) dbs: RwLock<HashMap<String, Arc<RegisteredDb>>>,
    pub(crate) sessions: RwLock<HashMap<u64, Arc<SessionHandle>>>,
    pub(crate) next_session: AtomicU64,
    /// Monotonic epoch source shared by all database names. Never reused
    /// — even across unregister/re-register — so an in-flight ask holding
    /// a removed database's snapshot can never collide with the keys of
    /// freshly-registered content.
    pub(crate) next_epoch: AtomicU64,
    pub(crate) prov_cache: LruCache<ProvKey, Arc<PreparedQuery>>,
    pub(crate) apt_cache: LruCache<AptKey, Arc<AptEntry>>,
    pub(crate) answer_cache: LruCache<AnswerKey, Arc<cajade_core::SessionResult>>,
    pub(crate) column_stats: LruCache<ColStatsKey, Arc<cajade_mining::ColumnStats>>,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) questions_answered: AtomicU64,
    pub(crate) prepared_apt_hits: AtomicU64,
    pub(crate) prepared_apt_misses: AtomicU64,
    pub(crate) ingest_stats: Mutex<IngestStats>,
    pub(crate) params: Params,
    /// Pre-resolved registry instrument handles.
    pub(crate) obs: ServiceObs,
}

impl ServiceInner {
    pub(crate) fn registered(&self, name: &str) -> Result<Arc<RegisteredDb>> {
        self.dbs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownDatabase(name.to_string()))
    }

    /// True while `epoch` is still the registered epoch for `name`. Asks
    /// check this before cache inserts so work computed against a
    /// just-replaced database snapshot is not retained under keys nothing
    /// will ever look up again.
    pub(crate) fn epoch_is_current(&self, name: &str, epoch: u64) -> bool {
        self.dbs.read().get(name).is_some_and(|r| r.epoch == epoch)
    }
}

/// A thread-safe, cache-backed explanation service (cheaply cloneable;
/// clones share all state).
///
/// ```
/// use cajade_service::{ExplanationService, ServiceConfig};
/// use cajade_core::UserQuestion;
/// use cajade_datagen::nba::{self, NbaConfig};
///
/// let service = ExplanationService::new(ServiceConfig::default());
/// let gen = nba::generate(NbaConfig::tiny());
/// service.register_database("nba", gen.db, gen.schema_graph);
///
/// let session = service
///     .open_session(
///         "nba",
///         "SELECT COUNT(*) AS win, s.season_name \
///          FROM team t, game g, season s \
///          WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
///            AND t.team = 'GSW' GROUP BY s.season_name",
///     )
///     .unwrap();
/// let q = UserQuestion::two_point(
///     &[("season_name", "2015-16")],
///     &[("season_name", "2012-13")],
/// );
/// let cold = session.ask(&q).unwrap();
/// let warm = session.ask(&q).unwrap();
/// assert!(!cold.provenance_cache_hit && warm.provenance_cache_hit);
/// assert_eq!(
///     cold.result.explanations.len(),
///     warm.result.explanations.len()
/// );
/// ```
pub struct ExplanationService {
    inner: Arc<ServiceInner>,
}

impl Clone for ExplanationService {
    fn clone(&self) -> Self {
        ExplanationService {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for ExplanationService {
    fn default() -> Self {
        ExplanationService::new(ServiceConfig::default())
    }
}

impl ExplanationService {
    /// Creates a service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        let registry = &config.registry;
        ExplanationService {
            inner: Arc::new(ServiceInner {
                dbs: RwLock::new(HashMap::new()),
                sessions: RwLock::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                next_epoch: AtomicU64::new(0),
                prov_cache: LruCache::with_obs(config.prov_cache_bytes, registry, "provenance"),
                apt_cache: LruCache::with_obs(config.apt_cache_bytes, registry, "apt"),
                answer_cache: LruCache::with_obs(config.answer_cache_bytes, registry, "answer"),
                column_stats: LruCache::with_obs(
                    config.column_stats_cache_bytes,
                    registry,
                    "column_stats",
                ),
                sessions_opened: AtomicU64::new(0),
                questions_answered: AtomicU64::new(0),
                prepared_apt_hits: AtomicU64::new(0),
                prepared_apt_misses: AtomicU64::new(0),
                ingest_stats: Mutex::new(IngestStats::default()),
                params: config.params,
                obs: ServiceObs::new(Arc::clone(&config.registry)),
            }),
        }
    }

    /// Registers (or re-registers) a database under `name`.
    ///
    /// Re-registering identical content (same [`Database::fingerprint`])
    /// keeps the epoch — cached provenance and APTs stay valid. Different
    /// content advances the epoch and eagerly sweeps every cache entry of
    /// the stale epochs, so no session can observe explanations computed
    /// against the replaced data.
    pub fn register_database(
        &self,
        name: impl Into<String>,
        db: Database,
        schema_graph: SchemaGraph,
    ) -> RegisterOutcome {
        let name = name.into();
        let fingerprint = db.fingerprint();
        let mut dbs = self.inner.dbs.write();
        let (epoch, replaced) = match dbs.get(&name) {
            Some(existing) if existing.fingerprint == fingerprint => (existing.epoch, false),
            Some(_) => (self.inner.next_epoch.fetch_add(1, Ordering::Relaxed), true),
            None => (self.inner.next_epoch.fetch_add(1, Ordering::Relaxed), false),
        };
        dbs.insert(
            name.clone(),
            Arc::new(RegisteredDb {
                name: name.clone(),
                epoch,
                fingerprint,
                db,
                schema_graph,
            }),
        );
        drop(dbs);
        let invalidated_entries = if replaced {
            self.inner
                .prov_cache
                .retain(|k| k.db != name || k.epoch == epoch)
                + self
                    .inner
                    .apt_cache
                    .retain(|k| k.db != name || k.epoch == epoch)
                + self
                    .inner
                    .answer_cache
                    .retain(|k| k.db != name || k.epoch == epoch)
                + self
                    .inner
                    .column_stats
                    .retain(|k| k.db != name || k.epoch == epoch)
        } else {
            0
        };
        RegisterOutcome {
            epoch,
            fingerprint,
            replaced,
            invalidated_entries,
        }
    }

    /// Registers a directory of CSV files under `name`: runs the full
    /// ingestion pipeline (`cajade_ingest::ingest_dir` — streaming
    /// type/key inference, manifest-honouring load, containment-based
    /// join discovery) and registers the result like
    /// [`register_database`](Self::register_database). The ingested
    /// database is named `name`, so re-registering an unchanged
    /// directory keeps the epoch and every warm cache entry.
    ///
    /// Per-stage timings and load statistics accumulate in
    /// [`ServiceStats::ingest`]; the per-run [`IngestReport`] is
    /// returned for the caller (the serve protocol surfaces it in the
    /// `register` response).
    pub fn register_csv_dir(
        &self,
        name: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
        options: &IngestOptions,
    ) -> Result<(RegisterOutcome, IngestReport)> {
        let name = name.into();
        let mut options = options.clone();
        options.name = Some(name.clone());
        let ingested = cajade_ingest::ingest_dir(dir, &options)?;
        let outcome = self.register_database(name, ingested.db, ingested.schema_graph);
        self.inner.ingest_stats.lock().record(&ingested.report);
        self.inner.obs.record_ingest(&ingested.report.timings);
        Ok((outcome, ingested.report))
    }

    /// Removes a database and sweeps its cache entries. Open sessions on
    /// it fail their next `ask` with [`ServiceError::UnknownDatabase`].
    pub fn unregister_database(&self, name: &str) -> bool {
        let removed = self.inner.dbs.write().remove(name).is_some();
        if removed {
            self.inner.prov_cache.retain(|k| k.db != name);
            self.inner.apt_cache.retain(|k| k.db != name);
            self.inner.answer_cache.retain(|k| k.db != name);
            self.inner.column_stats.retain(|k| k.db != name);
        }
        removed
    }

    /// Snapshot of a registered database.
    pub fn database(&self, name: &str) -> Option<Arc<RegisteredDb>> {
        self.inner.dbs.read().get(name).cloned()
    }

    /// Registered database names (sorted).
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.dbs.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Opens an interactive session over `(db, sql)` with the service's
    /// default parameters.
    pub fn open_session(&self, db: &str, sql: &str) -> Result<Arc<SessionHandle>> {
        let params = self.inner.params.clone();
        self.open_session_with_params(db, sql, params)
    }

    /// Like [`open_session`](Self::open_session), but returns an existing
    /// open session on the same `(db, canonical SQL)` with the service's
    /// default parameters when one exists. The serve protocol's `query`
    /// op uses this so a client issuing the same query repeatedly does
    /// not grow the session registry.
    pub fn open_or_reuse_session(&self, db: &str, sql: &str) -> Result<Arc<SessionHandle>> {
        self.inner.registered(db)?;
        let canonical = parse_sql(sql)?.to_sql();
        let default_fp = SessionHandle::params_fingerprint_of(&self.inner.params);
        let existing = self
            .inner
            .sessions
            .read()
            .values()
            .find(|h| {
                h.db_name() == db
                    && h.sql() == canonical
                    && SessionHandle::params_fingerprint_of(h.params()) == default_fp
            })
            .cloned();
        match existing {
            Some(h) => Ok(h),
            None => self.open_session(db, sql),
        }
    }

    /// Opens a session with explicit parameters.
    pub fn open_session_with_params(
        &self,
        db: &str,
        sql: &str,
        params: Params,
    ) -> Result<Arc<SessionHandle>> {
        // Validate eagerly: the database must exist and the SQL must parse.
        self.inner.registered(db)?;
        let query = parse_sql(sql)?;
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let handle = Arc::new(SessionHandle::new(
            id,
            db.to_string(),
            query,
            params,
            Arc::downgrade(&self.inner),
        ));
        {
            let mut sessions = self.inner.sessions.write();
            sessions.insert(id, Arc::clone(&handle));
            // Bound the registry: a client that never closes sessions must
            // not grow server memory without limit. Oldest id goes first
            // (sessions are cheap handles; their cached work survives in
            // the byte-budgeted caches regardless).
            while sessions.len() > MAX_OPEN_SESSIONS {
                if let Some(&oldest) = sessions.keys().min() {
                    sessions.remove(&oldest);
                }
            }
        }
        self.inner.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.inner.obs.sessions_opened_total.inc();
        Ok(handle)
    }

    /// Looks up an open session by id.
    pub fn session(&self, id: u64) -> Result<Arc<SessionHandle>> {
        self.inner
            .sessions
            .read()
            .get(&id)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Closes a session; returns whether it existed.
    pub fn close_session(&self, id: u64) -> bool {
        self.inner.sessions.write().remove(&id).is_some()
    }

    /// Counter + cache snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            databases: self.inner.dbs.read().len(),
            open_sessions: self.inner.sessions.read().len(),
            sessions_opened: self.inner.sessions_opened.load(Ordering::Relaxed),
            questions_answered: self.inner.questions_answered.load(Ordering::Relaxed),
            prepared_apt_hits: self.inner.prepared_apt_hits.load(Ordering::Relaxed),
            prepared_apt_misses: self.inner.prepared_apt_misses.load(Ordering::Relaxed),
            ingest: *self.inner.ingest_stats.lock(),
            provenance_cache: self.inner.prov_cache.stats(),
            apt_cache: self.inner.apt_cache.stats(),
            answer_cache: self.inner.answer_cache.stats(),
            column_stats_cache: self.inner.column_stats.stats(),
        }
    }

    /// The registry this service records into.
    pub fn registry(&self) -> &Arc<cajade_obs::Registry> {
        &self.inner.obs.registry
    }

    /// Pre-resolved instrument handles (crate-internal recording sites).
    pub(crate) fn obs(&self) -> &ServiceObs {
        &self.inner.obs
    }

    /// Refreshes the instantaneous gauges (databases, open sessions,
    /// per-cache resident entries/bytes, process current/peak RSS) and
    /// returns a full registry snapshot — the payload behind the serve
    /// protocol's `metrics` op.
    pub fn metrics_snapshot(&self) -> cajade_obs::RegistrySnapshot {
        let r = &self.inner.obs.registry;
        // Memory watermarks (Linux; gauges stay absent elsewhere) and the
        // heap-attribution ledgers (absent unless the binary installed
        // `cajade_obs::alloc::TrackingAlloc`).
        cajade_obs::rss::record_rss(r);
        cajade_obs::alloc::record_alloc(r);
        r.gauge("databases").set(self.inner.dbs.read().len() as u64);
        r.gauge("open_sessions")
            .set(self.inner.sessions.read().len() as u64);
        for (name, cache_stats) in [
            ("provenance", self.inner.prov_cache.stats()),
            ("apt", self.inner.apt_cache.stats()),
            ("answer", self.inner.answer_cache.stats()),
            ("column_stats", self.inner.column_stats.stats()),
        ] {
            r.gauge(&format!("cache_{name}_entries"))
                .set(cache_stats.entries as u64);
            r.gauge(&format!("cache_{name}_bytes"))
                .set(cache_stats.bytes as u64);
        }
        r.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_budgets_floor_at_the_defaults() {
        let base = ServiceConfig::default();
        for rows in [0, 1, 17_000, BUDGET_BASELINE_ROWS - 1] {
            let c = ServiceConfig::scaled_for_rows(rows);
            assert_eq!(c.prov_cache_bytes, base.prov_cache_bytes, "rows {rows}");
            assert_eq!(c.apt_cache_bytes, base.apt_cache_bytes);
            assert_eq!(c.answer_cache_bytes, base.answer_cache_bytes);
            assert_eq!(c.column_stats_cache_bytes, base.column_stats_cache_bytes);
        }
    }

    #[test]
    fn scaled_budgets_grow_linearly_and_monotonically() {
        let base = ServiceConfig::default();
        let x20 = ServiceConfig::scaled_for_rows(BUDGET_BASELINE_ROWS * 20);
        assert_eq!(x20.apt_cache_bytes, base.apt_cache_bytes * 20);
        assert_eq!(
            x20.column_stats_cache_bytes,
            base.column_stats_cache_bytes * 20
        );
        let mut last = 0;
        for rows in [10_000, 34_000, 100_000, 340_000, 1_700_000] {
            let c = ServiceConfig::scaled_for_rows(rows);
            assert!(c.apt_cache_bytes >= last, "not monotone at {rows}");
            last = c.apt_cache_bytes;
        }
    }

    #[test]
    fn scaled_for_db_sums_rows_across_tables() {
        use cajade_storage::{AttrKind, DataType, SchemaBuilder, Value};
        let mut db = Database::new("t");
        db.create_table(
            SchemaBuilder::new("a")
                .column_pk("id", DataType::Int, AttrKind::Categorical)
                .build(),
        )
        .unwrap();
        // 20× baseline rows in one table → 20× budgets.
        for i in 0..(BUDGET_BASELINE_ROWS * 20) as i64 {
            db.table_mut("a")
                .unwrap()
                .push_row(vec![Value::Int(i)])
                .unwrap();
        }
        let c = ServiceConfig::scaled_for_db(&db);
        assert_eq!(
            c.apt_cache_bytes,
            ServiceConfig::default().apt_cache_bytes * 20
        );
    }
}
