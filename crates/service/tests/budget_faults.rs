//! Robustness end-to-end tests: deadline-bounded anytime asks (request
//! budgets), degraded-answer cache hygiene, free-when-disabled identity,
//! and fault-injected panic isolation across the serve protocol.

use std::time::Duration;

use cajade_core::{Params, UserQuestion};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_service::json::Json;
use cajade_service::{protocol, AskOptions, ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn q(t1_season: &str, t2_season: &str) -> UserQuestion {
    UserQuestion::two_point(&[("season_name", t1_season)], &[("season_name", t2_season)])
}

fn tiny_service() -> ExplanationService {
    let service = ExplanationService::new(ServiceConfig {
        params: Params::fast(),
        ..ServiceConfig::default()
    });
    let gen = nba::generate(NbaConfig::tiny());
    service.register_database("nba", gen.db, gen.schema_graph);
    service
}

/// Explanations rendered comparably (pattern + graph + primary + score).
fn rendered(explanations: &[cajade_core::Explanation]) -> Vec<String> {
    explanations
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{}|{:.12}",
                e.pattern_desc, e.graph_structure, e.primary, e.metrics.f_score
            )
        })
        .collect()
}

fn counter(service: &ExplanationService, name: &str) -> u64 {
    service
        .metrics_snapshot()
        .counters
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn tight_budget_degrades_instead_of_failing() {
    let service = tiny_service();
    let session = service.open_session("nba", GSW_SQL).unwrap();

    // A 1ms budget on a cold ask is guaranteed to expire mid-pipeline.
    let degraded = session
        .ask_with(
            &q("2015-16", "2012-13"),
            &AskOptions {
                trace: false,
                timeout: Some(Duration::from_millis(1)),
            },
        )
        .unwrap();
    let r = &degraded.result;
    assert!(r.degraded, "1ms budget must truncate a cold ask");
    assert!(
        !r.truncated.is_empty(),
        "degraded results name the sites that stopped early"
    );
    // Whatever survived is still well-formed, ranked output.
    let fs: Vec<f64> = r.explanations.iter().map(|e| e.metrics.f_score).collect();
    assert!(fs.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{fs:?}");
    for e in &r.explanations {
        assert!(!e.pattern_desc.is_empty());
        assert!(!e.primary.is_empty());
    }

    // The degraded answer was NOT cached: the follow-up unbudgeted ask
    // reruns the pipeline and returns the full answer.
    let full = session.ask(&q("2015-16", "2012-13")).unwrap();
    assert!(
        !full.answer_cache_hit,
        "a degraded answer must never serve from the answer cache"
    );
    assert!(!full.result.degraded);
    assert!(full.result.num_graphs_mined >= r.num_graphs_mined);
    assert!(!full.result.explanations.is_empty());

    // And the full answer matches a service that never saw a budget —
    // truncated prepared state must not leak across requests.
    let control = tiny_service();
    let control_session = control.open_session("nba", GSW_SQL).unwrap();
    let cold = control_session.ask(&q("2015-16", "2012-13")).unwrap();
    assert_eq!(
        rendered(&full.result.explanations),
        rendered(&cold.result.explanations),
        "post-degraded ask must match a never-budgeted cold run"
    );

    assert_eq!(counter(&service, "ask_degraded_total"), 1);
    assert!(counter(&service, "ask_deadline_exceeded_total") >= 1);
}

#[test]
fn generous_budget_is_identical_to_no_budget() {
    let unbudgeted = tiny_service();
    let s1 = unbudgeted.open_session("nba", GSW_SQL).unwrap();
    let a1 = s1.ask(&q("2015-16", "2012-13")).unwrap();

    let budgeted = tiny_service();
    let s2 = budgeted.open_session("nba", GSW_SQL).unwrap();
    let a2 = s2
        .ask_with(
            &q("2015-16", "2012-13"),
            &AskOptions {
                trace: false,
                timeout: Some(Duration::from_secs(3600)),
            },
        )
        .unwrap();

    assert!(!a2.result.degraded);
    assert!(a2.result.truncated.is_empty());
    assert_eq!(
        rendered(&a1.result.explanations),
        rendered(&a2.result.explanations),
        "an in-time budget changes nothing about the answer"
    );
    assert_eq!(
        a1.result.num_graphs_mined, a2.result.num_graphs_mined,
        "same graphs mined"
    );
    assert_eq!(a1.result.pt_rows, a2.result.pt_rows);
    assert_eq!(counter(&budgeted, "ask_degraded_total"), 0);
    assert_eq!(counter(&budgeted, "ask_deadline_exceeded_total"), 0);
}

#[test]
fn budgeted_ask_over_the_protocol_reports_degraded() {
    let service = tiny_service();
    let query = Json::obj([
        ("op", Json::str("query")),
        ("db", Json::str("nba")),
        ("sql", Json::str(GSW_SQL)),
        ("preview", Json::Bool(false)),
    ])
    .render();
    let session = protocol::handle_line(&service, &query)
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();

    let resp = protocol::handle_line(
        &service,
        &format!(
            r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}},"timeout_ms":1}}"#
        ),
    );
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    assert_eq!(
        resp.get("degraded").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    assert!(
        !resp
            .get("truncated")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "{resp:?}"
    );

    // An unbudgeted ask omits both fields entirely (free when disabled:
    // the wire shape is unchanged from a build without budgets).
    let resp = protocol::handle_line(
        &service,
        &format!(
            r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}}}}"#
        ),
    );
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(resp.get("degraded").is_none(), "{resp:?}");
    assert!(resp.get("truncated").is_none());
}

#[test]
fn provenance_compute_panic_leaves_service_answering_and_waiters_unblocked() {
    let _guard = cajade_obs::faults::test_guard();
    let service = tiny_service();
    let query = Json::obj([
        ("op", Json::str("query")),
        ("db", Json::str("nba")),
        ("sql", Json::str(GSW_SQL)),
        ("preview", Json::Bool(false)),
    ])
    .render();
    let session = protocol::handle_line(&service, &query)
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();
    let ask = format!(
        r#"{{"op":"ask","session":{session},"t1":{{"season_name":"2015-16"}},"t2":{{"season_name":"2012-13"}}}}"#
    );

    // One panic armed inside the single-flighted provenance computation.
    // Two concurrent asks race for the latch: the winner's request
    // panics (isolated to an `internal_panic` response), and the waiter
    // must wake, find the latch cleaned up, and compute successfully —
    // never hang on a latch the panicking winner forgot to remove.
    cajade_obs::faults::set_plan("cache.provenance_compute=panic@1").unwrap();
    let (r1, r2) = std::thread::scope(|s| {
        let t1 = s.spawn(|| protocol::handle_line(&service, &ask));
        let t2 = s.spawn(|| protocol::handle_line(&service, &ask));
        (t1.join().unwrap(), t2.join().unwrap())
    });
    cajade_obs::faults::clear();

    let oks: Vec<bool> = [&r1, &r2]
        .iter()
        .map(|r| r.get("ok").and_then(Json::as_bool).unwrap())
        .collect();
    assert!(
        oks.contains(&false),
        "exactly one request hits the armed panic: {r1:?} {r2:?}"
    );
    for r in [&r1, &r2] {
        if r.get("ok").and_then(Json::as_bool) == Some(false) {
            assert_eq!(
                r.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("internal_panic"),
                "{r:?}"
            );
        } else {
            assert!(!r
                .get("explanations")
                .and_then(Json::as_array)
                .unwrap()
                .is_empty());
        }
    }

    // The service keeps answering after the isolated panic.
    let after = protocol::handle_line(&service, &ask);
    assert_eq!(
        after.get("ok").and_then(Json::as_bool),
        Some(true),
        "{after:?}"
    );
    assert_eq!(counter(&service, "requests_panicked_total"), 1);
    // The fault harness counts its fire in the global registry.
    assert!(
        cajade_obs::global()
            .counter("fault_cache_provenance_compute_fired_total")
            .get()
            >= 1
    );
}
