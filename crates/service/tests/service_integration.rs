//! End-to-end tests of the interactive explanation service: cross-question
//! stage reuse, cache-vs-cold result identity, LRU eviction under a small
//! byte budget, invalidation on database re-registration, warm-vs-cold
//! latency, and concurrent sessions on different databases.

use std::time::Duration;

use cajade_core::{Params, UserQuestion};
use cajade_datagen::mimic::{self, MimicConfig};
use cajade_datagen::nba::{self, NbaConfig};
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn q(t1_season: &str, t2_season: &str) -> UserQuestion {
    UserQuestion::two_point(&[("season_name", t1_season)], &[("season_name", t2_season)])
}

/// Explanations rendered comparably (pattern + graph + primary + score).
fn rendered(explanations: &[cajade_core::Explanation]) -> Vec<String> {
    explanations
        .iter()
        .map(|e| {
            format!(
                "{}|{}|{}|{:.12}",
                e.pattern_desc, e.graph_structure, e.primary, e.metrics.f_score
            )
        })
        .collect()
}

fn tiny_service(config: ServiceConfig) -> ExplanationService {
    let service = ExplanationService::new(config);
    let gen = nba::generate(NbaConfig::tiny());
    service.register_database("nba", gen.db, gen.schema_graph);
    service
}

fn fast_config() -> ServiceConfig {
    ServiceConfig {
        params: Params::fast(),
        ..ServiceConfig::default()
    }
}

#[test]
fn question_2_skips_preparation_and_matches_a_cold_run() {
    let service = tiny_service(fast_config());
    let session = service.open_session("nba", GSW_SQL).unwrap();

    // Question 1: everything cold.
    let q1 = q("2015-16", "2012-13");
    let a1 = session.ask(&q1).unwrap();
    assert!(!a1.answer_cache_hit);
    assert!(!a1.provenance_cache_hit);
    assert_eq!(a1.apt_cache_hits, 0);
    assert!(a1.apt_cache_misses > 0);

    // Question 2 (a *different* question): provenance, enumeration, and
    // every APT come from cache; only mining runs.
    let q2 = q("2016-17", "2012-13");
    let a2 = session.ask(&q2).unwrap();
    assert!(
        !a2.answer_cache_hit,
        "different question, so mining must run"
    );
    assert!(a2.provenance_cache_hit, "provenance + enumeration skipped");
    assert_eq!(a2.apt_cache_misses, 0, "materialization skipped");
    assert_eq!(a2.apt_cache_hits, a1.apt_cache_misses);
    assert_eq!(a2.result.timings.provenance, Duration::ZERO);
    assert_eq!(a2.result.timings.jg_enum, Duration::ZERO);
    assert_eq!(a2.result.timings.materialize_apts, Duration::ZERO);

    // The warm question-2 answer is identical to a cold run on a fresh
    // service with the same parameters. (The interactive path mines
    // through the cached question-independent preparation — global
    // feature selection and an unscoped LCA pool — so the one-shot
    // `ExplanationSession`, which prepares per question, is not the
    // reference; a cold *service* run is.)
    let cold_service = tiny_service(fast_config());
    let cold = cold_service
        .open_session("nba", GSW_SQL)
        .unwrap()
        .ask(&q2)
        .unwrap();
    assert!(!cold.result.explanations.is_empty());
    assert_eq!(
        rendered(&a2.result.explanations),
        rendered(&cold.result.explanations)
    );
    // Warm mining skipped every question-independent phase.
    assert_eq!(a2.result.timings.mining.feature_selection, Duration::ZERO);
    assert_eq!(a2.result.timings.mining.gen_pat_cand, Duration::ZERO);
    assert_eq!(a2.result.timings.mining.sampling_for_f1, Duration::ZERO);
    assert_eq!(a2.result.timings.mining.prepare, Duration::ZERO);

    // Repeating question 1 verbatim is an answer-cache hit with the
    // identical ranked list.
    let a1_again = session.ask(&q1).unwrap();
    assert!(a1_again.answer_cache_hit);
    assert_eq!(
        rendered(&a1.result.explanations),
        rendered(&a1_again.result.explanations)
    );
    // No stage ran on the answer hit, so no stage time may be reported.
    assert_eq!(a1_again.result.timings.total(), Duration::ZERO);

    let stats = service.stats();
    assert_eq!(stats.questions_answered, 3);
    assert_eq!(stats.provenance_cache.misses, 1);
    assert_eq!(stats.provenance_cache.hits, 1); // q2 (q1-again hit answers)
    assert_eq!(stats.answer_cache.hits, 1);
}

#[test]
fn warm_prepared_apt_skips_question_independent_phases() {
    // Acceptance check for question-independent preparation: a *new*
    // question on a warm `PreparedApt` skips feature extraction, LCA
    // candidate generation, and fragment/bitmap preparation entirely —
    // verified through both `MiningTimings` and the service counters.
    let service = tiny_service(fast_config());
    let session = service.open_session("nba", GSW_SQL).unwrap();

    let a1 = session.ask(&q("2015-16", "2012-13")).unwrap();
    let s1 = service.stats();
    assert_eq!(s1.prepared_apt_hits, 0);
    assert!(s1.prepared_apt_misses > 0, "cold ask prepares every APT");
    // The cold ask reports the preparation it paid for.
    assert!(a1.result.timings.mining.feature_selection > Duration::ZERO);

    let a2 = session.ask(&q("2016-17", "2012-13")).unwrap();
    let s2 = service.stats();
    assert!(!a2.answer_cache_hit && a2.provenance_cache_hit);
    assert_eq!(a2.apt_cache_misses, 0);
    assert_eq!(
        s2.prepared_apt_hits, s1.prepared_apt_misses,
        "every prepared APT is reused"
    );
    assert_eq!(s2.prepared_apt_misses, s1.prepared_apt_misses);
    // Question-independent phases report zero on the warm ask; only
    // scoring and refinement ran.
    let m = a2.result.timings.mining;
    assert_eq!(m.feature_selection, Duration::ZERO);
    assert_eq!(m.gen_pat_cand, Duration::ZERO);
    assert_eq!(m.sampling_for_f1, Duration::ZERO);
    assert_eq!(m.prepare, Duration::ZERO);
    assert!(m.fscore_calc > Duration::ZERO);
    assert!(!a2.result.explanations.is_empty());
}

#[test]
fn concurrent_cold_asks_single_flight_provenance() {
    // Satellite: two concurrent cold asks on the same (db, query) must
    // not both compute provenance. With the per-key in-flight latch, the
    // prepared query is computed and inserted exactly once regardless of
    // interleaving; without it, both threads would insert.
    let config = ServiceConfig {
        answer_cache_bytes: 0, // force both asks through the pipeline
        ..fast_config()
    };
    let service = tiny_service(config);
    let question = q("2015-16", "2012-13");

    let (r1, r2) = std::thread::scope(|scope| {
        let svc_a = service.clone();
        let svc_b = service.clone();
        let qa = &question;
        let qb = &question;
        let a = scope.spawn(move || {
            let session = svc_a.open_session("nba", GSW_SQL).unwrap();
            rendered(&session.ask(qa).unwrap().result.explanations)
        });
        let b = scope.spawn(move || {
            let session = svc_b.open_session("nba", GSW_SQL).unwrap();
            rendered(&session.ask(qb).unwrap().result.explanations)
        });
        (a.join().expect("ask 1"), b.join().expect("ask 2"))
    });

    assert!(!r1.is_empty());
    assert_eq!(r1, r2, "both asks see the same answer");
    let stats = service.stats();
    let prov = stats.provenance_cache;
    assert_eq!(
        prov.inserts, 1,
        "single-flight: provenance computed once, not per thread: {prov:?}"
    );
    // APT materialization and mining preparation are deduplicated too:
    // both asks resolve shared `AptEntry`s, so every graph is prepared
    // exactly once (the second ask's lookups are all hits) whether or not
    // the threads overlapped.
    assert_eq!(
        stats.prepared_apt_hits, stats.prepared_apt_misses,
        "each APT prepared once across both asks: {stats:?}"
    );
}

#[test]
fn sessions_share_caches_for_the_same_query() {
    let service = tiny_service(fast_config());
    let s1 = service.open_session("nba", GSW_SQL).unwrap();
    let s2 = service.open_session("nba", GSW_SQL).unwrap();
    assert_ne!(s1.id(), s2.id());

    let a1 = s1.ask(&q("2015-16", "2012-13")).unwrap();
    // A different session, different question, same query: reuses the
    // first session's prepared stages.
    let a2 = s2.ask(&q("2014-15", "2012-13")).unwrap();
    assert!(!a1.provenance_cache_hit);
    assert!(a2.provenance_cache_hit);
    assert_eq!(a2.apt_cache_misses, 0);
}

#[test]
fn lru_eviction_under_a_small_apt_budget_stays_correct() {
    // Budget fits only a few APTs, so the first ask itself evicts.
    let config = ServiceConfig {
        apt_cache_bytes: 256 * 1024,
        ..fast_config()
    };
    let service = tiny_service(config);
    let session = service.open_session("nba", GSW_SQL).unwrap();

    let a1 = session.ask(&q("2015-16", "2012-13")).unwrap();
    let apt = service.stats().apt_cache;
    assert!(
        apt.evictions > 0 || apt.rejected > 0,
        "small budget must evict or reject: {apt:?}"
    );
    assert!(
        apt.bytes <= apt.budget_bytes,
        "byte accounting stays within budget: {apt:?}"
    );

    // A different question now partially misses on APTs — and still
    // produces exactly the answer a fresh cold service computes.
    let q2 = q("2016-17", "2012-13");
    let a2 = session.ask(&q2).unwrap();
    assert!(
        a2.apt_cache_misses > 0,
        "evicted APTs must re-materialize: {:?}",
        service.stats().apt_cache
    );
    let cold = tiny_service(fast_config())
        .open_session("nba", GSW_SQL)
        .unwrap()
        .ask(&q2)
        .unwrap();
    assert_eq!(
        rendered(&a2.result.explanations),
        rendered(&cold.result.explanations)
    );
    assert!(!a1.result.explanations.is_empty());
}

#[test]
fn reregistration_invalidates_only_on_content_change() {
    let service = tiny_service(fast_config());
    let session = service.open_session("nba", GSW_SQL).unwrap();
    let q1 = q("2015-16", "2012-13");
    let first = session.ask(&q1).unwrap();

    // Same content (deterministic generator, same seed): caches survive.
    let same = nba::generate(NbaConfig::tiny());
    let outcome = service.register_database("nba", same.db, same.schema_graph);
    assert!(!outcome.replaced);
    assert_eq!(outcome.invalidated_entries, 0);
    let warm = session.ask(&q1).unwrap();
    assert!(warm.answer_cache_hit, "identical content keeps the caches");

    // Different content: epoch advances, every cached stage is swept, and
    // the next ask recomputes from scratch.
    let mut changed_cfg = NbaConfig::tiny();
    changed_cfg.seed = 99;
    let changed = nba::generate(changed_cfg);
    let outcome = service.register_database("nba", changed.db, changed.schema_graph);
    assert!(outcome.replaced);
    assert!(outcome.invalidated_entries > 0, "stale entries swept");
    let cold = session.ask(&q1).unwrap();
    assert!(!cold.answer_cache_hit);
    assert!(!cold.provenance_cache_hit);
    assert!(cold.apt_cache_misses > 0);
    assert!(!first.result.explanations.is_empty());
    assert!(!cold.result.explanations.is_empty());

    // Unregistering makes the session's next ask fail cleanly.
    assert!(service.unregister_database("nba"));
    let err = session.ask(&q1).unwrap_err();
    assert!(matches!(
        err,
        cajade_service::ServiceError::UnknownDatabase(_)
    ));
}

#[test]
fn warm_ask_is_at_least_5x_faster_than_cold_on_scaled_nba() {
    // The acceptance measurement: on a scaled NBA workload, a warm ask
    // (cache hit) must beat the cold path by ≥ 5×. In practice the answer
    // cache returns in microseconds against a cold path of hundreds of
    // milliseconds, so the margin is enormous; 5× is the contract.
    let service = ExplanationService::new(fast_config());
    let gen = nba::generate(NbaConfig::scaled(0.05));
    service.register_database("nba", gen.db, gen.schema_graph);
    let session = service.open_session("nba", GSW_SQL).unwrap();
    let question = q("2015-16", "2012-13");

    let cold = session.ask(&question).unwrap();
    assert!(!cold.answer_cache_hit);

    // Best of three warm asks (wall-clock measurements on shared CI boxes
    // deserve a little noise tolerance).
    let mut warm_best = Duration::MAX;
    for _ in 0..3 {
        let warm = session.ask(&question).unwrap();
        assert!(warm.answer_cache_hit);
        assert_eq!(
            rendered(&warm.result.explanations),
            rendered(&cold.result.explanations)
        );
        warm_best = warm_best.min(warm.wall);
    }
    let speedup = cold.wall.as_secs_f64() / warm_best.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "warm ask must be ≥5× faster: cold={:?} warm={:?} speedup={speedup:.1}×",
        cold.wall,
        warm_best
    );
}

#[test]
fn concurrent_sessions_on_different_databases_from_threads() {
    let service = ExplanationService::new(fast_config());
    let nba_gen = nba::generate(NbaConfig::tiny());
    let mimic_gen = mimic::generate(MimicConfig::tiny());
    service.register_database("nba", nba_gen.db, nba_gen.schema_graph);
    service.register_database("mimic", mimic_gen.db, mimic_gen.schema_graph);

    const MIMIC_SQL: &str = "SELECT insurance, \
         1.0*SUM(hospital_expire_flag)/COUNT(*) AS death_rate \
         FROM admissions GROUP BY insurance";
    let mimic_q =
        UserQuestion::two_point(&[("insurance", "Medicare")], &[("insurance", "Medicaid")]);
    let nba_q = q("2015-16", "2012-13");

    // Sequential reference answers.
    let reference = {
        let reference_service = ExplanationService::new(fast_config());
        let g1 = nba::generate(NbaConfig::tiny());
        let g2 = mimic::generate(MimicConfig::tiny());
        reference_service.register_database("nba", g1.db, g1.schema_graph);
        reference_service.register_database("mimic", g2.db, g2.schema_graph);
        let nba_ref = reference_service
            .open_session("nba", GSW_SQL)
            .unwrap()
            .ask(&nba_q)
            .unwrap();
        let mimic_ref = reference_service
            .open_session("mimic", MIMIC_SQL)
            .unwrap()
            .ask(&mimic_q)
            .unwrap();
        (
            rendered(&nba_ref.result.explanations),
            rendered(&mimic_ref.result.explanations),
        )
    };

    // Two threads, one session each on different databases, asking
    // concurrently through the same shared service.
    let (nba_out, mimic_out) = std::thread::scope(|scope| {
        let svc_a = service.clone();
        let svc_b = service.clone();
        let nba_q = &nba_q;
        let mimic_q = &mimic_q;
        let a = scope.spawn(move || {
            let session = svc_a.open_session("nba", GSW_SQL).unwrap();
            let first = session.ask(nba_q).unwrap();
            let second = session.ask(nba_q).unwrap();
            assert!(second.answer_cache_hit);
            rendered(&first.result.explanations)
        });
        let b = scope.spawn(move || {
            let session = svc_b.open_session("mimic", MIMIC_SQL).unwrap();
            let first = session.ask(mimic_q).unwrap();
            let second = session.ask(mimic_q).unwrap();
            assert!(second.answer_cache_hit);
            rendered(&first.result.explanations)
        });
        (
            a.join().expect("nba thread"),
            b.join().expect("mimic thread"),
        )
    });

    assert!(!nba_out.is_empty());
    assert!(!mimic_out.is_empty());
    assert_eq!(
        nba_out, reference.0,
        "nba answers unaffected by concurrency"
    );
    assert_eq!(
        mimic_out, reference.1,
        "mimic answers unaffected by concurrency"
    );

    let stats = service.stats();
    assert_eq!(stats.databases, 2);
    assert_eq!(stats.questions_answered, 4);
    assert_eq!(stats.sessions_opened, 2);
}
