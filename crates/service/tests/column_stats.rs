//! The shared column-statistics cache: cross-graph reuse within one cold
//! ask, cross-ask reuse, epoch invalidation, and identity of warm vs cold
//! answers under sharing.

use cajade_core::UserQuestion;
use cajade_datagen::nba::{self, NbaConfig};
use cajade_service::{ExplanationService, ServiceConfig};

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn question() -> UserQuestion {
    UserQuestion::two_point(&[("season_name", "2015-16")], &[("season_name", "2012-13")])
}

fn tiny_service() -> ExplanationService {
    let service = ExplanationService::new(ServiceConfig::default());
    let gen = nba::generate(NbaConfig::tiny());
    service.register_database("nba", gen.db, gen.schema_graph);
    service
}

#[test]
fn cold_ask_populates_and_reuses_column_stats() {
    let service = tiny_service();
    let session = service.open_session("nba", GSW_SQL).unwrap();
    session.ask(&question()).unwrap();

    let s = service.stats().column_stats_cache;
    assert!(
        s.misses >= 1,
        "cold ask must compute some column stats: {s:?}"
    );
    assert!(s.entries >= 1);
    // Reuse within the one cold ask: the fragment stage re-requests the
    // columns feature selection already binned, and graphs sharing a
    // context table re-request each other's columns.
    assert!(
        s.hits + s.coalesced >= 1,
        "cross-graph / cross-phase requests must hit: {s:?}"
    );

    // A second session over a *different* query on the same database
    // reuses the per-column entries outright — no new misses for columns
    // already analyzed.
    let misses_before = s.misses;
    let sql2 = "SELECT COUNT(*) AS games, s.season_name \
         FROM game g, season s WHERE g.season_id = s.season_id \
         GROUP BY s.season_name";
    let session2 = service.open_session("nba", sql2).unwrap();
    session2.ask(&question()).unwrap();
    let s2 = service.stats().column_stats_cache;
    assert!(
        s2.hits > s.hits,
        "second query must reuse shared column stats: {s2:?}"
    );
    // Columns of tables the first query never joined may still miss; the
    // overlap (season/game columns) must not.
    assert!(s2.misses >= misses_before);
}

#[test]
fn re_register_with_different_content_sweeps_stats() {
    let service = tiny_service();
    let session = service.open_session("nba", GSW_SQL).unwrap();
    session.ask(&question()).unwrap();
    assert!(service.stats().column_stats_cache.entries >= 1);

    // Same content → same epoch, entries survive.
    let gen = nba::generate(NbaConfig::tiny());
    let outcome = service.register_database("nba", gen.db, gen.schema_graph);
    assert!(!outcome.replaced);
    assert!(service.stats().column_stats_cache.entries >= 1);

    // Different content → epoch advances, stale stats swept.
    let mut cfg = NbaConfig::tiny();
    cfg.seed = cfg.seed.wrapping_add(1);
    let gen = nba::generate(cfg);
    let outcome = service.register_database("nba", gen.db, gen.schema_graph);
    assert!(outcome.replaced);
    assert_eq!(service.stats().column_stats_cache.entries, 0);
}

#[test]
fn warm_and_cold_answers_are_identical_under_sharing() {
    // Shared stats are deterministic (computed from the base table), so a
    // cold service and a warm one must answer identically.
    let rendered = |svc: &ExplanationService| -> Vec<String> {
        let session = svc.open_session("nba", GSW_SQL).unwrap();
        let a = session.ask(&question()).unwrap();
        a.result
            .explanations
            .iter()
            .map(|e| {
                format!(
                    "{}|{}|{}|{:.12}",
                    e.pattern_desc, e.graph_structure, e.primary, e.metrics.f_score
                )
            })
            .collect()
    };
    let service = tiny_service();
    let cold = rendered(&service);
    let warm = rendered(&service); // same service: stats + APT caches warm
    assert_eq!(cold, warm);
    let fresh = rendered(&tiny_service());
    assert_eq!(cold, fresh, "sharing must be deterministic across services");
}
