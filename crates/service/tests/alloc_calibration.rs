//! Calibration of the cache byte-budget estimators against the tracking
//! allocator (satellite of the memory-attribution PR).
//!
//! Every service cache charges entries by `approx_bytes()` — a cheap,
//! allocator-free estimate. If an estimator drifts far from reality the
//! byte budgets stop meaning anything: a cache nominally capped at 64 MB
//! could hold 300 MB of real heap. These tests build each cached
//! artifact (provenance table, APT, column statistics) inside a
//! dedicated allocation scope and require the estimate to land within
//! 2× of the tracked net heap growth, in both directions.
//!
//! The 2× band is deliberate: estimators ignore allocator slack and Vec
//! over-capacity, and the tracker ignores nothing — exact equality is
//! neither achievable nor needed for budget enforcement.

use cajade_datagen::nba;
use cajade_graph::{Apt, JoinGraph};
use cajade_mining::{base_column_stats, ColumnStatsConfig};
use cajade_query::{parse_sql, ProvenanceTable};

// Real heap numbers require the tracking allocator in this test binary,
// same install as `cajade-serve`.
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

/// Builds `build()` under a dedicated scope and returns the artifact
/// plus its tracked net heap growth. The scope name must be unique to
/// one test: scopes are global, and a shared name would absorb a
/// concurrently running test's allocations.
fn tracked_build<T>(scope: &'static str, build: impl FnOnce() -> T) -> (T, u64) {
    let net0 = cajade_obs::alloc::scope_snapshot(scope).map_or(0, |s| s.net_bytes);
    let guard = cajade_obs::AllocScope::enter(scope);
    let artifact = build();
    drop(guard);
    let net1 = cajade_obs::alloc::scope_snapshot(scope)
        .expect("scope recorded")
        .net_bytes;
    // Intermediates allocated and freed inside the scope cancel out of
    // `net`; with the artifact still alive, the delta is its real
    // retained footprint.
    (artifact, (net1 - net0).max(0) as u64)
}

/// `estimate` within 2× of `actual`, both directions.
fn assert_calibrated(what: &str, estimate: usize, actual: u64) {
    let estimate = estimate as u64;
    assert!(actual > 0, "{what}: tracked no retained bytes");
    assert!(
        estimate * 2 >= actual,
        "{what}: approx_bytes {estimate} underestimates tracked {actual} by more than 2x"
    );
    assert!(
        estimate <= actual * 2,
        "{what}: approx_bytes {estimate} overestimates tracked {actual} by more than 2x"
    );
}

#[test]
fn provenance_table_estimate_matches_tracked_bytes() {
    let gen = nba::generate(nba::NbaConfig::tiny());
    let q = parse_sql(GSW_SQL).unwrap();
    let (pt, actual) = tracked_build("calib.provenance", || {
        ProvenanceTable::compute(&gen.db, &q).unwrap()
    });
    assert_calibrated("ProvenanceTable", pt.approx_bytes(), actual);
}

#[test]
fn apt_estimate_matches_tracked_bytes() {
    let gen = nba::generate(nba::NbaConfig::tiny());
    let q = parse_sql(GSW_SQL).unwrap();
    let pt = ProvenanceTable::compute(&gen.db, &q).unwrap();
    let (apt, actual) = tracked_build("calib.apt", || {
        Apt::materialize(&gen.db, &pt, &JoinGraph::pt_only()).unwrap()
    });
    assert_calibrated("Apt", apt.approx_bytes(), actual);
}

#[test]
fn column_stats_estimate_matches_tracked_bytes() {
    let gen = nba::generate(nba::NbaConfig::tiny());
    let cfg = ColumnStatsConfig::from_params(&cajade_core::Params::default().mining);
    // A numeric column (quantile bins + fragment boundaries) and a
    // categorical one (dictionary) exercise both estimator arms.
    for (table, column, scope) in [
        ("team_game_stats", "points", "calib.colstats_num"),
        ("game", "game_date", "calib.colstats_cat"),
    ] {
        let (stats, actual) = tracked_build(scope, || {
            base_column_stats(&gen.db, table, column, &cfg)
                .unwrap_or_else(|| panic!("{table}.{column} resolvable"))
        });
        assert_calibrated(
            &format!("ColumnStats({table}.{column})"),
            stats.approx_bytes(),
            actual,
        );
    }
}
