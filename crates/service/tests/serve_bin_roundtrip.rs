//! Drives the real `cajade-serve` binary over its stdin/stdout JSON-lines
//! protocol: `register` a CSV directory → `query` (no preview) → traced
//! `ask` → repeat asks → `stats` → `metrics` → `query` → `close`,
//! asserting one well-formed response line per request and the full
//! `stats`/`metrics` response schemas.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use cajade_service::json::Json;

#[test]
fn serve_binary_ingests_csv_dir_and_explains() {
    let fixture = format!("{}/../../tests/data/retail_csv", env!("CARGO_MANIFEST_DIR"));
    let mut child = Command::new(env!("CARGO_BIN_EXE_cajade-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cajade-serve");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut lines = stdout.lines();
    let mut exchange = |request: String| -> Json {
        writeln!(stdin, "{request}").expect("write request");
        stdin.flush().unwrap();
        let line = lines
            .next()
            .expect("one response line per request")
            .expect("read response");
        Json::parse(&line).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    };

    let r = exchange(format!(
        r#"{{"op":"register","db":"retail","source":"csv_dir","path":"{fixture}"}}"#
    ));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    assert_eq!(r.get("rows").and_then(Json::as_u64), Some(605));
    assert!(r.get("ingest").is_some());

    // Open without preview so the first ask is fully cold and its span
    // tree covers every stage.
    let q = exchange(
        r#"{"op":"query","db":"retail","sql":"SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel","preview":false}"#
            .to_string(),
    );
    assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q:?}");
    assert!(q.get("rows").is_none());
    let session = q.get("session").and_then(Json::as_u64).unwrap();

    let ask = format!(
        r#"{{"op":"ask","session":{session},"t1":{{"channel":"online"}},"t2":{{"channel":"in_person"}}}}"#
    );
    let traced = format!(
        r#"{{"op":"ask","session":{session},"trace":true,"t1":{{"channel":"online"}},"t2":{{"channel":"in_person"}}}}"#
    );
    let a = exchange(traced);
    assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");
    assert!(!a
        .get("explanations")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());
    let trace = a
        .get("trace")
        .and_then(Json::as_array)
        .expect("trace array");
    for required in [
        "ask",
        "provenance",
        "jg_enum",
        "materialize",
        "prepare",
        "mine",
    ] {
        assert!(
            trace
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some(required)),
            "span `{required}` missing: {trace:?}"
        );
    }

    // 20 repeat asks so the latency histogram has a population.
    for _ in 0..20 {
        let a = exchange(ask.clone());
        assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");
    }

    // Full `stats` schema: top-level counters, all four cache blocks,
    // and the ingest block.
    let s = exchange(r#"{"op":"stats"}"#.to_string());
    assert_eq!(s.get("ok").and_then(Json::as_bool), Some(true), "{s:?}");
    assert_eq!(s.get("databases").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("open_sessions").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("sessions_opened").and_then(Json::as_u64), Some(1));
    assert_eq!(s.get("questions_answered").and_then(Json::as_u64), Some(21));
    for field in ["prepared_apt_hits", "prepared_apt_misses", "hit_rate"] {
        assert!(
            s.get(field).and_then(Json::as_f64).is_some(),
            "stats.{field}"
        );
    }
    for cache in [
        "provenance_cache",
        "apt_cache",
        "answer_cache",
        "column_stats_cache",
    ] {
        let c = s
            .get(cache)
            .unwrap_or_else(|| panic!("stats.{cache} missing"));
        for field in [
            "entries",
            "bytes",
            "budget_bytes",
            "hits",
            "misses",
            "evictions",
            "inserts",
            "rejected",
            "coalesced",
        ] {
            assert!(
                c.get(field).and_then(Json::as_f64).is_some(),
                "stats.{cache}.{field} missing: {c:?}"
            );
        }
    }
    let ing = s.get("ingest").expect("stats.ingest");
    for field in [
        "ingests",
        "tables",
        "rows",
        "joins_pinned",
        "joins_discovered",
        "scan_ms",
        "infer_ms",
        "load_ms",
        "discover_ms",
    ] {
        assert!(
            ing.get(field).and_then(Json::as_f64).is_some(),
            "stats.ingest.{field} missing: {ing:?}"
        );
    }
    assert_eq!(ing.get("ingests").and_then(Json::as_u64), Some(1));
    assert_eq!(ing.get("rows").and_then(Json::as_u64), Some(605));

    // `metrics` op: the ask histogram carries the whole population with
    // percentile estimates, and the prometheus rendering round-trips.
    let m = exchange(r#"{"op":"metrics"}"#.to_string());
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true), "{m:?}");
    assert_eq!(
        m.get("counters")
            .and_then(|c| c.get("asks_total"))
            .and_then(Json::as_u64),
        Some(21)
    );
    let hist = m
        .get("histograms")
        .and_then(|h| h.get("ask_total_us"))
        .expect("ask_total_us");
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(21));
    let p50 = hist.get("p50").and_then(Json::as_u64).expect("p50");
    let p99 = hist.get("p99").and_then(Json::as_u64).expect("p99");
    assert!(p99 > 0 && p99 >= p50, "{hist:?}");
    for field in ["sum", "max", "mean", "p90", "p999"] {
        assert!(hist.get(field).and_then(Json::as_f64).is_some(), "{hist:?}");
    }
    assert!(
        m.get("histograms")
            .and_then(|h| h.get("ingest_total_us"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let p = exchange(r#"{"op":"metrics","format":"prometheus"}"#.to_string());
    let text = p
        .get("text")
        .and_then(Json::as_str)
        .expect("prometheus text");
    assert!(text.contains("# TYPE asks_total counter\nasks_total 21\n"));
    assert!(text.contains("ask_total_us{quantile=\"0.99\"} "));

    // Robustness metrics are pre-registered: they export as 0 even on a
    // process that never panicked or degraded an answer.
    for robustness in [
        "requests_panicked_total",
        "ask_degraded_total",
        "ask_deadline_exceeded_total",
    ] {
        assert_eq!(
            m.get("counters")
                .and_then(|c| c.get(robustness))
                .and_then(Json::as_u64),
            Some(0),
            "{robustness}"
        );
    }

    // Errors carry a stable machine-readable code next to the message.
    let bad = exchange(r#"{"op":"wat"}"#.to_string());
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{bad:?}"
    );
    assert!(bad
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .is_some());
    let missing = exchange(
        r#"{"op":"ask","session":999,"t1":{"channel":"online"},"t2":{"channel":"in_person"}}"#
            .to_string(),
    );
    assert_eq!(
        missing
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_session"),
        "{missing:?}"
    );

    // The same (db, sql) re-queried with a preview reuses the session and
    // now returns the answer rows.
    let q2 = exchange(
        r#"{"op":"query","db":"retail","sql":"SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel"}"#
            .to_string(),
    );
    assert_eq!(q2.get("session").and_then(Json::as_u64), Some(session));
    assert!(!q2.get("rows").and_then(Json::as_array).unwrap().is_empty());

    let c = exchange(format!(r#"{{"op":"close","session":{session}}}"#));
    assert_eq!(c.get("closed").and_then(Json::as_bool), Some(true));

    drop(stdin); // EOF ends the serve loop
    let status = child.wait().expect("serve exit");
    assert!(status.success(), "{status:?}");
}
