//! Drives the real `cajade-serve` binary over its stdin/stdout JSON-lines
//! protocol: `register` a CSV directory → `query` → `ask` → `close`,
//! asserting one well-formed response line per request.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use cajade_service::json::Json;

#[test]
fn serve_binary_ingests_csv_dir_and_explains() {
    let fixture = format!("{}/../../tests/data/retail_csv", env!("CARGO_MANIFEST_DIR"));
    let mut child = Command::new(env!("CARGO_BIN_EXE_cajade-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cajade-serve");
    let mut stdin = child.stdin.take().unwrap();
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let mut lines = stdout.lines();
    let mut exchange = |request: String| -> Json {
        writeln!(stdin, "{request}").expect("write request");
        stdin.flush().unwrap();
        let line = lines
            .next()
            .expect("one response line per request")
            .expect("read response");
        Json::parse(&line).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    };

    let r = exchange(format!(
        r#"{{"op":"register","db":"retail","source":"csv_dir","path":"{fixture}"}}"#
    ));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    assert_eq!(r.get("rows").and_then(Json::as_u64), Some(605));
    assert!(r.get("ingest").is_some());

    let q = exchange(
        r#"{"op":"query","db":"retail","sql":"SELECT AVG(amount) AS avg_amount, channel FROM sales GROUP BY channel"}"#
            .to_string(),
    );
    assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q:?}");
    let session = q.get("session").and_then(Json::as_u64).unwrap();

    let a = exchange(format!(
        r#"{{"op":"ask","session":{session},"t1":{{"channel":"online"}},"t2":{{"channel":"in_person"}}}}"#
    ));
    assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");
    assert!(!a
        .get("explanations")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    let c = exchange(format!(r#"{{"op":"close","session":{session}}}"#));
    assert_eq!(c.get("closed").and_then(Json::as_bool), Some(true));

    drop(stdin); // EOF ends the serve loop
    let status = child.wait().expect("serve exit");
    assert!(status.success(), "{status:?}");
}
