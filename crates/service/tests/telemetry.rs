//! End-to-end telemetry acceptance over the JSON-lines protocol:
//!
//! * `query` with `preview: false` leaves every pipeline stage cold, so
//!   the first `ask` with `trace: true` returns a span tree covering
//!   provenance → jg_enum → materialize → prepare → mine with intact
//!   parent links;
//! * tracing must not change the answer (trace-on vs trace-off
//!   explanations are identical);
//! * after ≥ 20 asks the `metrics` op reports an `ask_total_us`
//!   histogram with populated p50/p99.

use cajade_datagen::nba;
use cajade_service::json::Json;
use cajade_service::protocol::handle_line;
use cajade_service::{ExplanationService, ServiceConfig};

// The memory-attribution assertions below need real heap numbers, so the
// test binary installs the tracking allocator exactly like `cajade-serve`
// does.
#[global_allocator]
static ALLOC: cajade_obs::TrackingAlloc = cajade_obs::TrackingAlloc;

const GSW_SQL: &str = "SELECT COUNT(*) AS win, s.season_name \
     FROM team t, game g, season s \
     WHERE t.team_id = g.winner_id AND g.season_id = s.season_id \
       AND t.team = 'GSW' GROUP BY s.season_name";

fn tiny_nba_service() -> ExplanationService {
    // Answer cache off: every ask re-mines, so each recorded ask wall is
    // macroscopic and the p50 assertion below cannot flake on a
    // sub-microsecond cache hit.
    let service = ExplanationService::new(ServiceConfig {
        answer_cache_bytes: 0,
        ..ServiceConfig::default()
    });
    let gen = nba::generate(nba::NbaConfig::tiny());
    service.register_database("nba", gen.db, gen.schema_graph);
    service
}

fn ask_line(session: u64, t1: &str, t2: &str, trace: bool) -> String {
    format!(
        r#"{{"op":"ask","session":{session},"trace":{trace},"t1":{{"season_name":"{t1}"}},"t2":{{"season_name":"{t2}"}}}}"#
    )
}

/// Walks parent links from `id` to the root, returning the ancestor
/// names (nearest first). Panics on a dangling parent.
fn ancestors(spans: &[&Json], id: u64) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = Some(id);
    while let Some(c) = cur {
        let span = spans
            .iter()
            .find(|s| s.get("span").and_then(Json::as_u64) == Some(c))
            .unwrap_or_else(|| panic!("dangling span id {c}"));
        out.push(span.get("name").and_then(Json::as_str).unwrap().to_string());
        cur = span.get("parent").and_then(Json::as_u64);
    }
    out
}

#[test]
fn traced_cold_ask_covers_all_stages_and_metrics_percentiles_populate() {
    let service = tiny_nba_service();

    // Open the session without previewing: the pipeline stays fully cold.
    let q = handle_line(
        &service,
        &format!(r#"{{"op":"query","db":"nba","sql":"{GSW_SQL}","preview":false}}"#),
    );
    assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true), "{q:?}");
    assert_eq!(q.get("preview").and_then(Json::as_bool), Some(false));
    assert!(
        q.get("rows").is_none(),
        "preview:false must not run the query"
    );
    let session = q.get("session").and_then(Json::as_u64).unwrap();

    // Cold traced ask: the span tree must cover every stage.
    let a1 = handle_line(&service, &ask_line(session, "2015-16", "2012-13", true));
    assert_eq!(a1.get("ok").and_then(Json::as_bool), Some(true), "{a1:?}");
    assert_eq!(
        a1.get("cache")
            .and_then(|c| c.get("provenance"))
            .and_then(Json::as_str),
        Some("miss"),
        "preview:false should leave the provenance cache cold"
    );
    let trace = a1
        .get("trace")
        .and_then(Json::as_array)
        .expect("trace array");
    let spans: Vec<&Json> = trace.iter().collect();
    for required in [
        "ask",
        "resolve_query",
        "provenance",
        "jg_enum",
        "materialize",
        "prepare",
        "mine",
        "mine_apt",
    ] {
        assert!(
            spans
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some(required)),
            "span `{required}` missing from trace: {trace:?}"
        );
    }
    // Exactly one root, named "ask"; every other span's parent chain
    // terminates there (ancestors() panics on a dangling link).
    let roots: Vec<&&Json> = spans
        .iter()
        .filter(|s| s.get("parent") == Some(&Json::Null))
        .collect();
    assert_eq!(roots.len(), 1, "{trace:?}");
    assert_eq!(
        roots[0].get("name").and_then(Json::as_str),
        Some("ask"),
        "{trace:?}"
    );
    for s in &spans {
        let id = s.get("span").and_then(Json::as_u64).unwrap();
        let chain = ancestors(&spans, id);
        assert_eq!(chain.last().map(String::as_str), Some("ask"), "{chain:?}");
        assert!(s.get("wall_us").and_then(Json::as_u64).is_some());
        assert!(s.get("start_us").and_then(Json::as_u64).is_some());
        // Memory attribution rides on every span: bytes allocated on the
        // span's thread during its window, and the window's peak-live
        // growth.
        let name = s.get("name").and_then(Json::as_str).unwrap();
        assert!(
            s.get("alloc_bytes").and_then(Json::as_u64).is_some(),
            "span `{name}` lost its alloc_bytes: {s:?}"
        );
        assert!(
            s.get("peak_bytes").and_then(Json::as_u64).is_some(),
            "span `{name}` lost its peak_bytes: {s:?}"
        );
    }
    // The root span's window covers the whole cold ask on the request
    // thread — it must have seen real allocation traffic.
    assert!(
        roots[0].get("alloc_bytes").and_then(Json::as_u64).unwrap() > 0,
        "cold ask allocated nothing?! {trace:?}"
    );
    // The compute spans hang under their stages: provenance/jg_enum are
    // children of resolve_query, mine_apt runs under mine even though the
    // mining executor crosses worker threads.
    for (child, stage) in [
        ("provenance", "resolve_query"),
        ("jg_enum", "resolve_query"),
        ("mine_apt", "mine"),
    ] {
        let id = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(child))
            .and_then(|s| s.get("span"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            ancestors(&spans, id).contains(&stage.to_string()),
            "`{child}` is not a descendant of `{stage}`: {trace:?}"
        );
    }

    // Tracing must not change the answer.
    let a2 = handle_line(&service, &ask_line(session, "2015-16", "2012-13", false));
    assert!(a2.get("trace").is_none(), "untraced ask leaked a trace");
    assert_eq!(
        a1.get("explanations").unwrap().render(),
        a2.get("explanations").unwrap().render(),
        "tracing changed the explanations"
    );

    // 19 more asks (21 total), alternating questions; the answer cache is
    // off so each one re-mines and records a macroscopic wall.
    for i in 0..19 {
        let (t1, t2) = if i % 2 == 0 {
            ("2016-17", "2012-13")
        } else {
            ("2015-16", "2012-13")
        };
        let a = handle_line(&service, &ask_line(session, t1, t2, false));
        assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");
    }

    // The registry's ask histogram has the full population with non-zero
    // percentile estimates.
    let m = handle_line(&service, r#"{"op":"metrics"}"#);
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true), "{m:?}");
    let ask_hist = m
        .get("histograms")
        .and_then(|h| h.get("ask_total_us"))
        .expect("ask_total_us histogram");
    assert_eq!(ask_hist.get("count").and_then(Json::as_u64), Some(21));
    let p50 = ask_hist.get("p50").and_then(Json::as_u64).unwrap();
    let p99 = ask_hist.get("p99").and_then(Json::as_u64).unwrap();
    assert!(p50 > 0, "{ask_hist:?}");
    assert!(p99 >= p50, "{ask_hist:?}");
    // Stage histograms and service counters ride along.
    assert_eq!(
        m.get("counters")
            .and_then(|c| c.get("asks_total"))
            .and_then(Json::as_u64),
        Some(21)
    );
    assert!(
        m.get("histograms")
            .and_then(|h| h.get("ask_mine_us"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        m.get("gauges")
            .and_then(|g| g.get("open_sessions"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // Prometheus rendering of the same snapshot.
    let p = handle_line(&service, r#"{"op":"metrics","format":"prometheus"}"#);
    let text = p
        .get("text")
        .and_then(Json::as_str)
        .expect("prometheus text");
    assert!(text.contains("# TYPE asks_total counter\nasks_total 21\n"));
    assert!(text.contains("ask_total_us{quantile=\"0.5\"} "));
    assert!(text.contains("ask_total_us_count 21\n"));

    let bad = handle_line(&service, r#"{"op":"metrics","format":"xml"}"#);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
}

/// The `metrics` op carries the process-memory watermarks: the peak-RSS
/// gauge (`VmHWM`) and the current-RSS gauge, both from
/// `/proc/self/status`. Non-Linux platforms simply omit the gauges.
#[test]
fn metrics_op_exposes_process_memory_watermarks() {
    let service = tiny_nba_service();
    let m = handle_line(&service, r#"{"op":"metrics"}"#);
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true), "{m:?}");
    let gauges = m.get("gauges").expect("gauges object");
    if cfg!(target_os = "linux") {
        let peak = gauges
            .get("process_peak_rss_bytes")
            .and_then(Json::as_u64)
            .expect("peak RSS gauge on Linux");
        let cur = gauges
            .get("process_current_rss_bytes")
            .and_then(Json::as_u64)
            .expect("current RSS gauge on Linux");
        assert!(cur > 0, "{gauges:?}");
        assert!(peak >= cur, "peak {peak} < current {cur}");
        // Prometheus rendering carries the same gauge.
        let p = handle_line(&service, r#"{"op":"metrics","format":"prometheus"}"#);
        let text = p.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("# TYPE process_peak_rss_bytes gauge\n"));
    } else {
        assert!(gauges.get("process_peak_rss_bytes").is_none());
    }
}

#[test]
fn cache_counters_mirror_into_the_registry() {
    let service = tiny_nba_service();
    let q = handle_line(
        &service,
        &format!(r#"{{"op":"query","db":"nba","sql":"{GSW_SQL}"}}"#),
    );
    let session = q.get("session").and_then(Json::as_u64).unwrap();
    handle_line(&service, &ask_line(session, "2015-16", "2012-13", false));
    handle_line(&service, &ask_line(session, "2015-16", "2012-13", false));

    let m = handle_line(&service, r#"{"op":"metrics"}"#);
    let counters = m.get("counters").unwrap();
    // The preview warmed the provenance cache, so both asks hit it.
    assert!(
        counters
            .get("cache_provenance_hits_total")
            .and_then(Json::as_u64)
            .unwrap()
            >= 2,
        "{counters:?}"
    );
    assert!(
        counters
            .get("cache_apt_inserts_total")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "{counters:?}"
    );
    // Gauges reflect the snapshot-time cache footprint.
    let bytes = m
        .get("gauges")
        .and_then(|g| g.get("cache_apt_bytes"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(bytes > 0, "{m:?}");
}

/// The `metrics` op's `memory` block: heap ledger totals plus the scoped
/// attribution table. After one cold ask every pipeline-stage scope must
/// have accumulated real bytes, and the same numbers mirror into
/// `heap_*` / `mem_scope_*` registry gauges.
#[test]
fn metrics_memory_block_attributes_stage_scopes() {
    let service = tiny_nba_service();
    let q = handle_line(
        &service,
        &format!(r#"{{"op":"query","db":"nba","sql":"{GSW_SQL}","preview":false}}"#),
    );
    let session = q.get("session").and_then(Json::as_u64).unwrap();
    let a = handle_line(&service, &ask_line(session, "2015-16", "2012-13", false));
    assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");

    let m = handle_line(&service, r#"{"op":"metrics"}"#);
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true), "{m:?}");
    let mem = m.get("memory").expect("memory block in metrics");
    assert_eq!(
        mem.get("tracking").and_then(Json::as_bool),
        Some(true),
        "tracking allocator is installed in this binary: {mem:?}"
    );
    // RSS sub-block is present on every platform; values are null where
    // /proc is unavailable.
    let rss = mem.get("rss").expect("rss sub-block");
    if cfg!(target_os = "linux") {
        assert!(rss.get("peak_bytes").and_then(Json::as_u64).unwrap() > 0);
    }
    let heap = mem.get("heap").expect("heap ledger when tracking");
    let live = heap.get("live_bytes").and_then(Json::as_u64).unwrap();
    let peak = heap.get("peak_live_bytes").and_then(Json::as_u64).unwrap();
    assert!(live > 0, "{heap:?}");
    assert!(peak >= live, "peak {peak} < live {live}");
    assert!(heap.get("allocated_blocks").and_then(Json::as_u64).unwrap() > 0);

    // Every pipeline stage (and the caches the ask exercised) shows up in
    // the scope table with nonzero allocation.
    let scopes = mem.get("scopes").and_then(Json::as_array).expect("scopes");
    let allocated = |name: &str| -> u64 {
        scopes
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("scope `{name}` missing: {scopes:?}"))
            .get("allocated_bytes")
            .and_then(Json::as_u64)
            .unwrap()
    };
    for stage in [
        "provenance",
        "jg_enum",
        "materialize",
        "prepare",
        "mine",
        "cache.provenance",
        "cache.apt",
        "cache.column_stats",
    ] {
        assert!(allocated(stage) > 0, "scope `{stage}` attributed no bytes");
    }

    // Gauge mirror of the same surface.
    let gauges = m.get("gauges").expect("gauges");
    assert!(
        gauges
            .get("heap_live_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "{gauges:?}"
    );
    assert!(
        gauges
            .get("mem_scope_materialize_allocated_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "{gauges:?}"
    );
    // Prometheus rendering carries the heap gauges too.
    let p = handle_line(&service, r#"{"op":"metrics","format":"prometheus"}"#);
    let text = p.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("# TYPE heap_live_bytes gauge\n"));
    assert!(text.contains("mem_scope_mine_peak_bytes "));
}

/// Satellite: cross-thread attribution. An ambient scope entered on the
/// request thread must absorb the allocations of the mining executor's
/// worker threads — the pipeline re-installs the caller's scope chain on
/// each worker (`ScopeHandle::install`), exactly like traced spans
/// re-parent across the fan-out. A traced ask runs inside the scope so
/// `Collector::with` and the scope chain are proven to compose.
#[test]
fn worker_thread_allocations_fold_into_the_callers_scope() {
    let service = tiny_nba_service();
    let q = handle_line(
        &service,
        &format!(r#"{{"op":"query","db":"nba","sql":"{GSW_SQL}","preview":false}}"#),
    );
    let session = q.get("session").and_then(Json::as_u64).unwrap();

    let before =
        cajade_obs::alloc::scope_snapshot("telemetry_ambient").map_or(0, |s| s.allocated_bytes);
    let ambient = cajade_obs::AllocScope::enter("telemetry_ambient");
    let a = handle_line(&service, &ask_line(session, "2015-16", "2012-13", true));
    drop(ambient);
    assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");

    let ambient_bytes = cajade_obs::alloc::scope_snapshot("telemetry_ambient")
        .expect("ambient scope recorded")
        .allocated_bytes
        - before;
    // The root "ask" span's alloc_bytes counts request-thread allocations
    // only; the ambient scope additionally folds in every worker thread
    // the executor fanned to (the pipeline re-installs the caller chain
    // on each worker). So scope ≥ span is the exact containment the
    // cross-thread design guarantees — and unlike global scope totals it
    // is immune to other tests running asks concurrently, because only
    // this test touches `telemetry_ambient`.
    let ask_span_bytes = a
        .get("trace")
        .and_then(Json::as_array)
        .expect("trace array")
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("ask"))
        .and_then(|s| s.get("alloc_bytes"))
        .and_then(Json::as_u64)
        .expect("root span alloc_bytes");
    assert!(ask_span_bytes > 0, "cold traced ask allocated nothing?!");
    assert!(
        ambient_bytes >= ask_span_bytes,
        "ambient scope ({ambient_bytes} B) saw less than the request \
         thread alone ({ask_span_bytes} B) — worker folding regressed"
    );
}
