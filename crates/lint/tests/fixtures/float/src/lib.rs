//! Seeded `float-total-order` violations plus immune shapes. Never
//! compiled — lexed by the fixture tests only.

pub fn violations(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 5: fires (comparator)
    let _ = v[0].partial_cmp(&0.0).unwrap(); // line 6: fires (chained unwrap)
    let m = v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()); // line 7: fires
    let _ = m;
}

pub fn suppressed(v: &mut Vec<f64>) {
    // lint:allow(float-total-order)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint:allow(float-total-order)
}

pub fn immune(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
    let _in_str = "v.sort_by(|a, b| a.partial_cmp(b).unwrap())";
    let _in_raw = r#"sort_by(|a, b| a.partial_cmp(b).unwrap())"#;
    // comment: v.sort_by(|a, b| a.partial_cmp(b).unwrap())
    /* block comment:
       v.sort_by(|a, b| a.partial_cmp(b).unwrap()) */
    let _bare_is_fine = v[0].partial_cmp(&0.0); // Option kept, not a ranking
}

#[cfg(test)]
mod tests {
    pub fn in_test(v: &mut Vec<f64>) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // test code: exempt
    }
}
