//! Seeded doc-catalog-drift material: one documented and one
//! undocumented name per catalog kind. Never compiled — lexed by the
//! fixture tests only.

pub fn register(reg: &Registry) -> Result<(), Fault> {
    reg.counter("documented_total").inc(1);
    reg.gauge("undocumented_gauge").set(1); // fires: metric not in doc
    failpoint("site.documented")?;
    failpoint_infallible("site.undocumented"); // fires: site not in doc
    let _a = AllocScope::enter("scope.documented");
    let _b = AllocScope::enter("scope.undocumented"); // fires: scope not in doc
    Ok(())
}
