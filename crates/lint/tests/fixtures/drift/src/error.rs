//! Seeded error-code drift: `documented_code` matches the doc table,
//! `undocumented_code` does not, and the doc-only `doc_only_code` has
//! no declaration here.

pub struct E;

impl E {
    pub fn code(&self) -> &'static str {
        "documented_code"
    }
}

pub fn mint() -> Json {
    err("undocumented_code", "boom") // fires: code not in doc
}
