//! A configured budget-checkpoint module that checks its request
//! budget inside the hot loop: the cross-file rule must stay quiet.

use cajade_obs::budget;

pub fn refine(items: &[u32]) -> Result<u32, ()> {
    let mut acc = 0;
    for i in items {
        budget::check("refine")?;
        acc += *i;
    }
    Ok(acc)
}
