//! A configured budget-checkpoint module with no budget check: the
//! cross-file rule must fire. A `budget` identifier in test code must
//! not count.

pub fn refine(items: &[u32]) -> u32 {
    let mut acc = 0;
    for i in items {
        acc += *i;
    }
    acc
}

#[cfg(test)]
mod tests {
    pub fn test_only_budget(budget: u32) -> u32 {
        budget
    }
}
