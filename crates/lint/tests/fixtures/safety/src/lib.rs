//! Seeded `safety-comment` violations plus immune shapes. Never
//! compiled — lexed by the fixture tests only.

pub fn bad(p: *const i32) -> i32 {
    unsafe { *p } // line 5: fires (no SAFETY comment)
}

pub fn allowed(p: *const i32) -> i32 {
    // lint:allow(safety-comment)
    unsafe { *p }
}

pub fn good_above(p: *const i32) -> i32 {
    // SAFETY: the caller passes a pointer to a live i32.
    unsafe { *p }
}

pub fn good_trailing(p: *const i32) -> i32 {
    unsafe { *p } // SAFETY: the caller passes a pointer to a live i32.
}

// SAFETY: no preconditions; the comment may sit above attributes.
#[inline]
pub unsafe fn good_through_attr() {}

pub fn immune_strings() {
    let _ = "unsafe { *p }";
    // comment: unsafe { *p }
}

#[cfg(test)]
mod tests {
    pub fn in_test(p: *const i32) -> i32 {
        unsafe { *p } // test code: exempt
    }
}
