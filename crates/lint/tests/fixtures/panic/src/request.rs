//! Seeded `no-panic-request-path` violations. The fixture config marks
//! this file (and only this file) as a request-path module. Never
//! compiled — lexed by the fixture tests only.

pub fn handler(input: Option<u32>) -> u32 {
    let v = input.unwrap(); // line 6: fires
    let w = input.expect("present"); // line 7: fires
    if v + w == 0 {
        panic!("boom"); // line 9: fires
    }
    // lint:allow(no-panic-request-path)
    let s = input.unwrap();
    let _in_str = ".unwrap() inside a string literal is fine";
    v + w + s
}

pub fn non_panicking(input: Option<u32>) -> u32 {
    input.unwrap_or(0) // different method, not .unwrap()
}

#[cfg(test)]
mod tests {
    pub fn test_helper(input: Option<u32>) -> u32 {
        input.unwrap() // test code: exempt
    }
}
