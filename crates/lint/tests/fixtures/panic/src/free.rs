//! Not a request-path module: panics here are out of the rule's scope.

pub fn helper(input: Option<u32>) -> u32 {
    input.unwrap()
}
