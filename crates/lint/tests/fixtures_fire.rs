//! Proves every rule is live: each fixture tree seeds violations the
//! rule must find, `lint:allow(…)` placements it must suppress, and
//! string/comment/`#[cfg(test)]` shapes the lexer must ignore. The
//! final test lints this workspace itself and requires a clean bill.

use std::path::{Path, PathBuf};

use cajade_lint::config::{DocPaths, LintConfig};
use cajade_lint::engine::{lint_workspace, render_human, render_json, LintReport};
use cajade_lint::rules::{
    BUDGET_CHECKPOINT, DOC_CATALOG_DRIFT, FLOAT_TOTAL_ORDER, NO_PANIC_REQUEST_PATH, SAFETY_COMMENT,
};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A config that scans one fixture tree with every cross-file anchor
/// disabled; tests enable what they exercise.
fn fixture_cfg(name: &str) -> LintConfig {
    LintConfig {
        root: fixture_root(name),
        skip_prefixes: Vec::new(),
        test_dir_components: vec!["tests".into(), "benches".into()],
        request_path_files: Vec::new(),
        budget_files: Vec::new(),
        metric_paths: Vec::new(),
        error_code_files: Vec::new(),
        docs: DocPaths::default(),
    }
}

fn lines_of(report: &LintReport, rule: &str, file: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule && f.file == file)
        .map(|f| f.line)
        .collect()
}

#[test]
fn float_total_order_fires_suppresses_and_ignores() {
    let report = lint_workspace(&fixture_cfg("float")).unwrap();
    assert_eq!(
        lines_of(&report, FLOAT_TOTAL_ORDER, "src/lib.rs"),
        vec![5, 6, 7],
        "{}",
        render_human(&report)
    );
    // Both placements of lint:allow (line above, trailing) suppress.
    assert_eq!(report.suppressed, 2);
    // Nothing else fired: strings, raw strings, comments and
    // #[cfg(test)] copies of the violation are invisible.
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn safety_comment_fires_suppresses_and_ignores() {
    let report = lint_workspace(&fixture_cfg("safety")).unwrap();
    assert_eq!(
        lines_of(&report, SAFETY_COMMENT, "src/lib.rs"),
        vec![5],
        "{}",
        render_human(&report)
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn no_panic_request_path_fires_only_in_configured_files() {
    let mut cfg = fixture_cfg("panic");
    cfg.request_path_files = vec!["src/request.rs".into()];
    let report = lint_workspace(&cfg).unwrap();
    assert_eq!(
        lines_of(&report, NO_PANIC_REQUEST_PATH, "src/request.rs"),
        vec![6, 7, 9],
        "{}",
        render_human(&report)
    );
    assert_eq!(report.suppressed, 1);
    // src/free.rs unwraps freely: not a request-path module.
    assert!(lines_of(&report, NO_PANIC_REQUEST_PATH, "src/free.rs").is_empty());
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn budget_checkpoint_requires_a_real_budget_ident() {
    let mut miss = fixture_cfg("budget_miss");
    miss.budget_files = vec!["src/hot.rs".into()];
    let report = lint_workspace(&miss).unwrap();
    // The test-only `budget` identifier does not satisfy the rule.
    assert_eq!(
        lines_of(&report, BUDGET_CHECKPOINT, "src/hot.rs"),
        vec![1],
        "{}",
        render_human(&report)
    );

    let mut hit = fixture_cfg("budget_hit");
    hit.budget_files = vec!["src/hot.rs".into()];
    let report = lint_workspace(&hit).unwrap();
    assert!(report.ok(), "{}", render_human(&report));

    // A configured module that does not exist is itself a finding.
    let mut missing = fixture_cfg("budget_hit");
    missing.budget_files = vec!["src/gone.rs".into()];
    let report = lint_workspace(&missing).unwrap();
    assert_eq!(lines_of(&report, BUDGET_CHECKPOINT, "src/gone.rs"), vec![1]);
}

#[test]
fn doc_catalog_drift_fires_both_directions() {
    let root = fixture_root("drift");
    let cfg = LintConfig {
        docs: DocPaths {
            observability: Some(root.join("docs/OBSERVABILITY.md")),
            robustness: Some(root.join("docs/ROBUSTNESS.md")),
            protocol: Some(root.join("docs/PROTOCOL.md")),
        },
        root,
        skip_prefixes: Vec::new(),
        test_dir_components: vec!["tests".into()],
        request_path_files: Vec::new(),
        budget_files: Vec::new(),
        metric_paths: vec!["src".into()],
        error_code_files: vec!["src/error.rs".into()],
    };
    let report = lint_workspace(&cfg).unwrap();
    let drift: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == DOC_CATALOG_DRIFT)
        .map(|f| f.message.as_str())
        .collect();
    // Code → doc: one undocumented name per catalog kind.
    for name in [
        "undocumented_gauge",
        "site.undocumented",
        "scope.undocumented",
        "undocumented_code",
    ] {
        assert!(
            drift.iter().any(|m| m.contains(name)),
            "missing code→doc drift for {name}: {}",
            render_human(&report)
        );
    }
    // Doc → code: documented-but-undeclared names (metrics excepted —
    // the metric check is one-directional).
    for name in ["site.doc_only", "scope.doc_only", "doc_only_code"] {
        assert!(
            drift.iter().any(|m| m.contains(name)),
            "missing doc→code drift for {name}: {}",
            render_human(&report)
        );
    }
    // The documented names and the backticked `code` header cell are
    // not drift.
    for name in [
        "`documented_total`",
        "`site.documented`",
        "`scope.documented`",
        "`documented_code`",
        "`code`",
    ] {
        assert!(
            !drift.iter().any(|m| m.contains(name)),
            "false positive on {name}: {}",
            render_human(&report)
        );
    }
    assert_eq!(drift.len(), 7, "{}", render_human(&report));

    // JSON rendering of a failing report keeps the CI contract.
    let json = render_json(&report);
    assert!(json.starts_with("{\"version\":1,\"ok\":false,"));
    assert!(json.contains("\"rule\":\"doc-catalog-drift\""));
}

/// The gate itself: linting this workspace with the shipped config
/// finds nothing. Violations are fixed at the source, not suppressed —
/// a suppression-count creep here warrants a close look in review.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = LintConfig::workspace(root);
    let report = lint_workspace(&cfg).unwrap();
    assert!(report.ok(), "{}", render_human(&report));
    assert!(report.files_scanned > 100, "walk lost the tree");
}
