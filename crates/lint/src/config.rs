//! Lint configuration: which files are scanned, which invariants are
//! anchored where.
//!
//! [`LintConfig::workspace`] is the configuration the `cajade-lint`
//! binary (and CI) runs with; tests build custom configs pointing at
//! fixture trees. All paths are relative to `root` with `/` separators.

use std::path::PathBuf;

/// Paths of the doc files holding the catalogs that
/// `doc-catalog-drift` cross-checks. Any `None` disables that
/// sub-check (fixture configs use this to test one catalog at a time).
#[derive(Debug, Clone, Default)]
pub struct DocPaths {
    /// Metric names + alloc-scope taxonomy tables.
    pub observability: Option<PathBuf>,
    /// Failpoint catalog table.
    pub robustness: Option<PathBuf>,
    /// Error-code table.
    pub protocol: Option<PathBuf>,
}

/// Full lint configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory the scan starts from; findings report paths relative
    /// to it.
    pub root: PathBuf,
    /// Relative path prefixes skipped entirely (vendored stand-ins,
    /// build output, lint fixtures).
    pub skip_prefixes: Vec<String>,
    /// Directory components whose files are test code end to end
    /// (integration tests, benches): production-code rules skip them.
    pub test_dir_components: Vec<String>,
    /// Modules covered by `no-panic-request-path`.
    pub request_path_files: Vec<String>,
    /// Modules that must contain a request-budget check
    /// (`budget-checkpoint`).
    pub budget_files: Vec<String>,
    /// Path prefixes where literal metric names are extracted for the
    /// doc cross-check.
    pub metric_paths: Vec<String>,
    /// Files where error codes are extracted (the `code()` taxonomy,
    /// `ERROR_CODES`, and protocol-level `err("…")` minting).
    pub error_code_files: Vec<String>,
    pub docs: DocPaths,
}

impl LintConfig {
    /// The configuration for this workspace — the single source of
    /// truth for which modules carry which invariant (documented in
    /// `docs/LINTS.md`).
    pub fn workspace(root: PathBuf) -> LintConfig {
        let s = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        LintConfig {
            docs: DocPaths {
                observability: Some(root.join("docs/OBSERVABILITY.md")),
                robustness: Some(root.join("docs/ROBUSTNESS.md")),
                protocol: Some(root.join("docs/PROTOCOL.md")),
            },
            root,
            skip_prefixes: s(&[
                "target",
                ".git",
                // Vendored offline stand-ins mirror upstream APIs; they
                // are not this project's code to re-idiomize.
                "crates/compat",
                // The lint's own seeded-violation fixtures.
                "crates/lint/tests/fixtures",
            ]),
            test_dir_components: s(&["tests", "benches"]),
            request_path_files: s(&[
                "crates/service/src/protocol.rs",
                "crates/service/src/session.rs",
                "crates/service/src/service.rs",
            ]),
            budget_files: s(&[
                // The refinement BFS and question-independent
                // preparation (PR 7's cooperative-cancellation sites).
                "crates/mining/src/miner.rs",
                "crates/mining/src/prepared.rs",
                // The per-graph materialize loop.
                "crates/core/src/pipeline.rs",
            ]),
            metric_paths: s(&["crates/service/src", "crates/obs/src"]),
            error_code_files: s(&[
                "crates/service/src/error.rs",
                "crates/service/src/protocol.rs",
            ]),
        }
    }
}
