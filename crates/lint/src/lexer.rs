//! A small token-level lexer for Rust source.
//!
//! The rules in this crate never need a parse tree — they need a token
//! stream that *correctly refuses to see* the places Rust hides text
//! that merely looks like code: line and block comments (nested), plain
//! and raw string literals (`r#"…"#` with any hash count), byte
//! strings, char literals (disambiguated from lifetimes), and numeric
//! literals. On top of the stream, a second pass marks every token that
//! lives inside `#[cfg(test)]` / `#[test]` items or a `mod tests`
//! block, so rules scoped to production code skip test code without a
//! type checker.
//!
//! Comment *text* is not discarded: it is collected per line, because
//! two rules read it — `safety-comment` looks for `// SAFETY:` above an
//! `unsafe` site, and the suppression machinery looks for
//! `// lint:allow(rule)`.

/// What a token is. Only the distinctions the rules consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`sort_by`, `unsafe`, `fn`, …).
    Ident,
    /// String literal (plain, raw, or byte); `text` is the inner
    /// contents without quotes/hashes, escapes unprocessed.
    Str,
    /// Char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any single punctuation character; `text` is that character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// True when the token is inside test code: a `#[cfg(test)]` or
    /// `#[test]` item, a `mod tests` block, or a file the caller
    /// classified as test-only (`tests/`, `benches/`).
    pub in_test: bool,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A lexed source file: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    /// `comments[i]` is every comment fragment whose span covers
    /// 1-based line `i + 1`, concatenated (a block comment contributes
    /// its full text to each line it spans).
    pub comments: Vec<String>,
    /// Trimmed source text per line (for "is this line only a comment
    /// or attribute" checks).
    pub lines: Vec<String>,
}

impl LexedFile {
    /// Comment text covering 1-based `line`, or `""`.
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Trimmed source of 1-based `line`, or `""`.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Lexes `src`. `whole_file_is_test` marks every token as test code
/// (integration tests, benches, fixtures classified by path).
pub fn lex(src: &str, whole_file_is_test: bool) -> LexedFile {
    let mut lx = Lexer::new(src);
    lx.run();
    let mut file = LexedFile {
        tokens: lx.tokens,
        comments: lx.comments,
        lines: src.lines().map(|l| l.trim().to_string()).collect(),
    };
    if whole_file_is_test {
        for t in &mut file.tokens {
            t.in_test = true;
        }
    } else {
        mark_test_regions(&mut file.tokens);
    }
    file
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<String>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        let line_count = src.lines().count().max(1);
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: vec![String::new(); line_count],
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn byte_offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or(self.src.len())
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            in_test: false,
        });
    }

    fn record_comment(&mut self, text: &str, start_line: u32, end_line: u32) {
        for line in start_line..=end_line {
            if let Some(slot) = self.comments.get_mut(line as usize - 1) {
                slot.push_str(text);
                slot.push('\n');
            }
        }
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.byte_offset();
        let line = self.line;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = self.src[start..self.byte_offset()].to_string();
        self.record_comment(&text, line, line);
    }

    fn block_comment(&mut self) {
        let start = self.byte_offset();
        let start_line = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: EOF ends it
            }
        }
        let end_line = self.line;
        let text = self.src[start..self.byte_offset()].to_string();
        self.record_comment(&text, start_line, end_line);
    }

    /// Plain `"…"` string (escape-aware). The opening quote is current.
    fn string_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.byte_offset();
        let mut end = start;
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
                end = self.byte_offset();
                continue;
            }
            if c == '"' {
                end = self.byte_offset();
                self.bump();
                break;
            }
            self.bump();
            end = self.byte_offset();
        }
        let text = self.src[start..end].to_string();
        self.push(TokKind::Str, text, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and raw
    /// identifiers `r#ident`. Returns false when the current position
    /// is a plain identifier starting with `r`/`b`.
    fn raw_or_byte_string(&mut self) -> bool {
        let c0 = self.peek(0).unwrap();
        // Figure out the candidate prefix shape.
        let mut i = 1; // chars consumed past c0 candidate
        let mut raw = c0 == 'r';
        if c0 == 'b' {
            match self.peek(1) {
                Some('r') => {
                    raw = true;
                    i = 2;
                }
                Some('"') => {
                    // b"…": lex as a plain string after skipping `b`.
                    self.bump();
                    self.string_lit();
                    return true;
                }
                _ => return false,
            }
        }
        if !raw {
            return false;
        }
        // Count hashes after the `r`.
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(i + hashes) {
            Some('"') => {}
            Some(c) if hashes == 1 && (c.is_alphabetic() || c == '_') => {
                // Raw identifier r#ident: consume prefix, lex ident.
                let line = self.line;
                self.bump(); // r
                self.bump(); // #
                let start = self.byte_offset();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = self.src[start..self.byte_offset()].to_string();
                self.push(TokKind::Ident, text, line);
                return true;
            }
            _ => return false,
        }
        // Raw string: consume prefix + hashes + quote.
        let line = self.line;
        for _ in 0..(i + hashes + 1) {
            self.bump();
        }
        let start = self.byte_offset();
        let mut end = self.src.len();
        // Scan for `"` followed by `hashes` hashes.
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.bump();
                        continue 'outer;
                    }
                }
                end = self.byte_offset();
                for _ in 0..(1 + hashes) {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let text = self.src[start..end.min(self.src.len())].to_string();
        self.push(TokKind::Str, text, line);
        true
    }

    /// `'a'` / `'\n'` char literals vs `'a` lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: '<ident-start> not followed by a closing quote.
        if let Some(c1) = self.peek(1) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(2) != Some('\'') {
                self.bump(); // '
                let start = self.byte_offset();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = self.src[start..self.byte_offset()].to_string();
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        // Char literal: consume until the closing quote (escape-aware).
        self.bump(); // opening '
        let start = self.byte_offset();
        let mut end = start;
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
                end = self.byte_offset();
                continue;
            }
            if c == '\'' {
                end = self.byte_offset();
                self.bump();
                break;
            }
            self.bump();
            end = self.byte_offset();
        }
        let text = self.src[start..end].to_string();
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.byte_offset();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = self.src[start..self.byte_offset()].to_string();
        self.push(TokKind::Ident, text, line);
    }

    /// Numeric literal. Greedy over alphanumerics and `_`; consumes a
    /// `.` only when followed by a digit, so `b.1.partial_cmp(..)`
    /// still yields the `partial_cmp` identifier.
    fn number(&mut self) {
        let line = self.line;
        let start = self.byte_offset();
        while let Some(c) = self.peek(0) {
            let fractional_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || fractional_dot {
                self.bump();
            } else {
                break;
            }
        }
        let text = self.src[start..self.byte_offset()].to_string();
        self.push(TokKind::Num, text, line);
    }
}

/// Marks tokens inside test regions: items annotated `#[cfg(test)]` /
/// `#[test]` (any attribute whose bracket tokens contain a
/// non-negated `test` identifier) and `mod tests { … }` blocks. A
/// region covers the annotated item — through the matching close of
/// its first `{`, or to the first top-level `;` for braceless items.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        let is_test_attr = tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && attr_is_test(tokens, i + 1);
        let is_tests_mod = tokens[i].is_ident("mod")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == "tests");
        if !(is_test_attr || is_tests_mod) {
            i += 1;
            continue;
        }
        // Find the region end: matching `}` of the first `{`, or a `;`
        // before any brace opens.
        let mut j = if is_test_attr {
            skip_attr(tokens, i + 1)
        } else {
            i + 2
        };
        let mut depth = 0i32;
        let mut end = tokens.len();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth <= 0 {
                    end = j + 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                end = j + 1;
                break;
            } else if t.is_punct('#') && depth == 0 && j > i {
                // A stacked attribute before the item: keep scanning.
            }
            j += 1;
        }
        for t in &mut tokens[i..end] {
            t.in_test = true;
        }
        i = end;
    }
}

/// With `tokens[open]` being the `[` of an attribute, returns the index
/// just past the matching `]`.
fn skip_attr(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Does the attribute starting at `tokens[open] == [` mention `test` as
/// an identifier not directly inside `not(…)`? Catches `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`; rejects `#[cfg(not(test))]`
/// and string occurrences like `#[cfg(feature = "test")]`.
fn attr_is_test(tokens: &[Token], open: usize) -> bool {
    let close = skip_attr(tokens, open);
    let inner = &tokens[open + 1..close.saturating_sub(1)];
    for (k, t) in inner.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && inner[k - 2].is_ident("not") && inner[k - 1].is_punct('(');
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexedFile) -> Vec<&str> {
        file.tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r###"
// partial_cmp in a line comment
/* partial_cmp in /* a nested */ block comment */
let a = "partial_cmp in a string";
let b = r#"partial_cmp in a raw "quoted" string"#;
let c = b"partial_cmp bytes";
let d = 'x';
fn real() { a.partial_cmp(b) }
"###;
        let file = lex(src, false);
        let hits: Vec<_> = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "partial_cmp")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 8);
        assert!(file.comment_on(2).contains("partial_cmp"));
        assert!(file.comment_on(3).contains("nested"));
    }

    #[test]
    fn tuple_index_method_calls_lex_cleanly() {
        let file = lex("y.1.abs().partial_cmp(&x.1.abs())", false);
        assert!(idents(&file).contains(&"partial_cmp"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let file = lex("fn f<'a>(x: &'a str) -> char { 'b' }", false);
        let lifetimes: Vec<_> = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(file
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "b"));
    }

    #[test]
    fn raw_strings_with_hashes_and_escapes() {
        let file = lex(r####"let s = r##"a "#" b"##; let t = "q\"w";"####, false);
        let strs: Vec<_> = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r##"a "#" b"##, r#"q\"w"#]);
    }

    #[test]
    fn cfg_test_and_mod_tests_regions() {
        let src = r#"
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
#[test]
fn single() { z.unwrap(); }
fn prod2() { w.unwrap(); }
"#;
        let file = lex(src, false);
        let unwraps: Vec<(u32, bool)> = file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| (t.line, t.in_test))
            .collect();
        assert_eq!(unwraps, vec![(2, false), (5, true), (8, true), (9, false)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let file = lex(src, false);
        assert!(file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .all(|t| !t.in_test));
    }

    #[test]
    fn cfg_feature_string_is_not_test() {
        let src = "#[cfg(feature = \"test\")]\nfn prod() { x.unwrap(); }";
        let file = lex(src, false);
        assert!(file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .all(|t| !t.in_test));
    }

    #[test]
    fn braceless_test_item_region_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn prod() { a.unwrap(); }";
        let file = lex(src, false);
        assert!(file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .all(|t| !t.in_test));
    }
}
