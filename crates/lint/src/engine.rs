//! The lint driver: file walking, suppression filtering, cross-file
//! rules, and report assembly.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::catalog;
use crate::config::LintConfig;
use crate::lexer;
use crate::rules::{self, CatalogKind, CatalogUse, Finding, BUDGET_CHECKPOINT, DOC_CATALOG_DRIFT};

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Findings silenced by `lint:allow(…)` comments.
    pub suppressed: usize,
}

impl LintReport {
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every rule over the configured tree.
pub fn lint_workspace(cfg: &LintConfig) -> Result<LintReport, String> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, cfg, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    let mut catalog_uses: Vec<CatalogUse> = Vec::new();
    let mut budget_seen: Vec<(String, bool)> = Vec::new();

    for path in &files {
        let rel = rel_path(&cfg.root, path);
        let src = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let whole_file_test = is_test_file(&rel, cfg);
        let lexed = lexer::lex(&src, whole_file_test);
        let scan = rules::scan_file(&rel, &lexed, cfg);
        report.files_scanned += 1;

        for f in scan.findings {
            if allowed(&scan.allow, f.line, f.rule) {
                report.suppressed += 1;
            } else {
                report.findings.push(f);
            }
        }
        catalog_uses.extend(scan.catalog);
        if cfg.budget_files.contains(&rel) {
            budget_seen.push((rel.clone(), scan.has_budget_ident));
        }
    }

    budget_checkpoint(cfg, &budget_seen, &mut report);
    doc_catalog_drift(cfg, &catalog_uses, &mut report)?;

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn allowed(allow: &std::collections::HashMap<u32, Vec<String>>, line: u32, rule: &str) -> bool {
    allow
        .get(&line)
        .is_some_and(|rules| rules.iter().any(|r| r == rule))
}

fn collect_rs_files(dir: &Path, cfg: &LintConfig, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_path(&cfg.root, &path);
        if cfg
            .skip_prefixes
            .iter()
            .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn is_test_file(rel: &str, cfg: &LintConfig) -> bool {
    rel.split('/')
        .any(|seg| cfg.test_dir_components.iter().any(|t| t == seg))
}

// ---------------------------------------------------------------------------
// budget-checkpoint (cross-file)
// ---------------------------------------------------------------------------

fn budget_checkpoint(cfg: &LintConfig, seen: &[(String, bool)], report: &mut LintReport) {
    for wanted in &cfg.budget_files {
        match seen.iter().find(|(rel, _)| rel == wanted) {
            None => report.findings.push(Finding {
                rule: BUDGET_CHECKPOINT,
                file: wanted.clone(),
                line: 1,
                message: "configured budget-checkpoint module was not found in the \
                          scan — update the lint config if the module moved"
                    .to_string(),
            }),
            Some((_, true)) => {}
            Some((_, false)) => report.findings.push(Finding {
                rule: BUDGET_CHECKPOINT,
                file: wanted.clone(),
                line: 1,
                message: "module loops over patterns/graphs but contains no request-\
                          budget check (`cajade_obs::budget`): hot loops must stay \
                          interruptible (see docs/ROBUSTNESS.md)"
                    .to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// doc-catalog-drift (cross-file)
// ---------------------------------------------------------------------------

/// Cross-checks code-declared names against the doc tables.
///
/// * metrics — one-directional (code → doc): every literal metric name
///   must appear in `docs/OBSERVABILITY.md` (the doc also documents
///   templated families like `cache_<name>_hits_total` that no literal
///   matches, so doc → code is not meaningful here);
/// * failpoints, error codes, alloc scopes — bidirectional against
///   their tables (the tables are fully literal).
fn doc_catalog_drift(
    cfg: &LintConfig,
    uses: &[CatalogUse],
    report: &mut LintReport,
) -> Result<(), String> {
    let read = |p: &Path| -> Result<String, String> {
        fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))
    };

    if let Some(obs_path) = &cfg.docs.observability {
        let doc = read(obs_path)?;
        let doc_rel = rel_path(&cfg.root, obs_path);
        // Metrics: code → doc.
        let names = catalog::doc_names(&doc);
        for u in uses.iter().filter(|u| u.kind == CatalogKind::Metric) {
            if !names.contains(&u.name) {
                report.findings.push(Finding {
                    rule: DOC_CATALOG_DRIFT,
                    file: u.file.clone(),
                    line: u.line,
                    message: format!(
                        "metric `{}` is not documented in {doc_rel} (metric-name tables)",
                        u.name
                    ),
                });
            }
        }
        // Alloc scopes: bidirectional against the scope taxonomy table.
        bidirectional(
            "alloc scope",
            "scope taxonomy",
            &doc,
            &doc_rel,
            uses,
            CatalogKind::AllocScope,
            report,
        );
    }
    if let Some(rob_path) = &cfg.docs.robustness {
        let doc = read(rob_path)?;
        let doc_rel = rel_path(&cfg.root, rob_path);
        bidirectional(
            "failpoint site",
            "failpoint catalog",
            &doc,
            &doc_rel,
            uses,
            CatalogKind::Failpoint,
            report,
        );
    }
    if let Some(proto_path) = &cfg.docs.protocol {
        let doc = read(proto_path)?;
        let doc_rel = rel_path(&cfg.root, proto_path);
        bidirectional(
            "error code",
            "errors",
            &doc,
            &doc_rel,
            uses,
            CatalogKind::ErrorCode,
            report,
        );
    }
    Ok(())
}

/// Diffs the code-declared set of `kind` names against the first
/// column of the doc table under `section`, reporting drift in both
/// directions.
#[allow(clippy::too_many_arguments)]
fn bidirectional(
    what: &str,
    section: &str,
    doc: &str,
    doc_rel: &str,
    uses: &[CatalogUse],
    kind: CatalogKind,
    report: &mut LintReport,
) {
    let doc_decls = catalog::table_first_column(doc, section);
    if doc_decls.is_empty() {
        report.findings.push(Finding {
            rule: DOC_CATALOG_DRIFT,
            file: doc_rel.to_string(),
            line: 1,
            message: format!("no `{section}` table with {what} declarations found"),
        });
        return;
    }
    let doc_set: BTreeSet<&str> = doc_decls.iter().map(|d| d.name.as_str()).collect();
    let code_set: BTreeSet<&str> = uses
        .iter()
        .filter(|u| u.kind == kind)
        .map(|u| u.name.as_str())
        .collect();
    // Code → doc: report each *distinct* undocumented name once, at
    // its first use site.
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for u in uses.iter().filter(|u| u.kind == kind) {
        if !doc_set.contains(u.name.as_str()) && reported.insert(&u.name) {
            report.findings.push(Finding {
                rule: DOC_CATALOG_DRIFT,
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "{what} `{}` is not listed in {doc_rel} (`{section}` table)",
                    u.name
                ),
            });
        }
    }
    // Doc → code.
    for d in &doc_decls {
        if !code_set.contains(d.name.as_str()) {
            report.findings.push(Finding {
                rule: DOC_CATALOG_DRIFT,
                file: doc_rel.to_string(),
                line: d.line,
                message: format!(
                    "{what} `{}` is documented but nothing in the code declares it",
                    d.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Human-readable rendering, one finding per line.
pub fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "cajade-lint: {} file(s) scanned, {} finding(s), {} suppressed\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    out
}

/// Machine-readable rendering (the shape CI schema-checks).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{");
    out.push_str("\"version\":1,");
    out.push_str(&format!("\"ok\":{},", report.ok()));
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str(&format!("\"suppressed\":{},", report.suppressed));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
