//! The rule set, run over one lexed file at a time.
//!
//! Each rule is grounded in an invariant an earlier PR established by
//! hand; `docs/LINTS.md` is the user-facing catalog (id, rationale,
//! suppression, establishing PR). Per-file rules emit findings
//! directly; the cross-file rules (`doc-catalog-drift`,
//! `budget-checkpoint`) collect evidence here that the engine
//! aggregates after every file is scanned.

use std::collections::HashMap;

use crate::config::LintConfig;
use crate::lexer::{LexedFile, TokKind, Token};

/// Rule identifiers, as used in findings and `lint:allow(…)`.
pub const FLOAT_TOTAL_ORDER: &str = "float-total-order";
pub const SAFETY_COMMENT: &str = "safety-comment";
pub const NO_PANIC_REQUEST_PATH: &str = "no-panic-request-path";
pub const DOC_CATALOG_DRIFT: &str = "doc-catalog-drift";
pub const BUDGET_CHECKPOINT: &str = "budget-checkpoint";

/// Every rule with a one-line description (for `--list-rules`).
pub const RULES: &[(&str, &str)] = &[
    (
        FLOAT_TOTAL_ORDER,
        "no partial_cmp in comparator positions or followed by .unwrap(); rankings must use f64::total_cmp",
    ),
    (
        SAFETY_COMMENT,
        "every unsafe block/fn/impl must be preceded by a // SAFETY: comment",
    ),
    (
        NO_PANIC_REQUEST_PATH,
        "no .unwrap()/.expect(/panic! in serve request-path modules (degrade, don't die)",
    ),
    (
        DOC_CATALOG_DRIFT,
        "metric names, failpoint sites, error codes, and alloc scopes must match their doc tables",
    ),
    (
        BUDGET_CHECKPOINT,
        "modules that loop over patterns/graphs must contain a request-budget check",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Path relative to the scanned root (a source file or a doc).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// A name the code declares that some doc catalog must list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogUse {
    pub kind: CatalogKind,
    pub name: String,
    pub file: String,
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogKind {
    Metric,
    Failpoint,
    AllocScope,
    ErrorCode,
}

/// Everything one file contributes: per-file findings (pre-
/// suppression), the suppression map, catalog declarations, and
/// budget-checkpoint evidence.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    /// line → rules allowed on that line by `lint:allow(…)` comments.
    pub allow: HashMap<u32, Vec<String>>,
    pub catalog: Vec<CatalogUse>,
    pub has_budget_ident: bool,
}

/// Runs every per-file rule and extraction over `file`.
pub fn scan_file(rel: &str, file: &LexedFile, cfg: &LintConfig) -> FileScan {
    let mut scan = FileScan {
        allow: suppressions(file),
        ..FileScan::default()
    };
    float_total_order(rel, file, &mut scan);
    safety_comment(rel, file, &mut scan);
    if cfg.request_path_files.iter().any(|f| f == rel) {
        no_panic_request_path(rel, file, &mut scan);
    }
    scan.has_budget_ident = file.tokens.iter().any(|t| {
        !t.in_test && t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("budget")
    });
    extract_catalog_uses(rel, file, cfg, &mut scan);
    scan
}

/// Builds the per-line suppression map. A `lint:allow(a, b)` comment
/// suppresses matching findings on its own line and the line below it,
/// so both trailing and preceding-line placements work.
fn suppressions(file: &LexedFile) -> HashMap<u32, Vec<String>> {
    let mut allow: HashMap<u32, Vec<String>> = HashMap::new();
    for (idx, text) in file.comments.iter().enumerate() {
        let line = idx as u32 + 1;
        let mut rest = text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            for rule in rest[..close].split(',') {
                let rule = rule.trim().to_string();
                if !rule.is_empty() {
                    allow.entry(line).or_default().push(rule.clone());
                    allow.entry(line + 1).or_default().push(rule);
                }
            }
            rest = &rest[close..];
        }
    }
    allow
}

// ---------------------------------------------------------------------------
// float-total-order
// ---------------------------------------------------------------------------

/// Methods whose closure argument is a comparator over ranked values.
const COMPARATOR_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "select_nth_unstable_by",
    "max_by",
    "min_by",
];

/// Flags `partial_cmp` (a) anywhere inside the argument list of a
/// comparator-taking method, or (b) immediately chained into
/// `.unwrap()` — the NaN-panicking shape. Ranking semantics in this
/// workspace are only deterministic under `f64::total_cmp` (PR 5).
fn float_total_order(rel: &str, file: &LexedFile, scan: &mut FileScan) {
    let toks = &file.tokens;
    let mut paren_depth = 0i32;
    // Paren depths at which a comparator argument list opened.
    let mut regions: Vec<i32> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth -= 1;
            while regions.last().is_some_and(|&d| d > paren_depth) {
                regions.pop();
            }
        } else if t.kind == TokKind::Ident
            && COMPARATOR_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            // Region is active while paren_depth > current depth.
            regions.push(paren_depth + 1);
        } else if t.is_ident("partial_cmp") && !t.in_test {
            let in_comparator = !regions.is_empty();
            let chained_unwrap = chained_into_unwrap(toks, i);
            if in_comparator || chained_unwrap {
                let why = if in_comparator {
                    "in a comparator position"
                } else {
                    "chained into .unwrap()"
                };
                scan.findings.push(Finding {
                    rule: FLOAT_TOTAL_ORDER,
                    file: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "`partial_cmp` {why}: ranking comparisons must be total \
                         orders — use `f64::total_cmp` (NaN-safe, deterministic)"
                    ),
                });
            }
        }
        i += 1;
    }
}

/// Is `toks[i]` (`partial_cmp`) followed by a balanced argument list
/// and then `.unwrap(`?
fn chained_into_unwrap(toks: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(j + 2).is_some_and(|t| t.is_ident("unwrap"))
        && toks.get(j + 3).is_some_and(|t| t.is_punct('('))
}

// ---------------------------------------------------------------------------
// safety-comment
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword in production code must have a `// SAFETY:`
/// comment on its own line or in the comment block immediately above
/// (attribute lines in between are allowed).
fn safety_comment(rel: &str, file: &LexedFile, scan: &mut FileScan) {
    for t in &file.tokens {
        if !t.is_ident("unsafe") || t.in_test {
            continue;
        }
        if has_safety_comment(file, t.line) {
            continue;
        }
        scan.findings.push(Finding {
            rule: SAFETY_COMMENT,
            file: rel.to_string(),
            line: t.line,
            message: "`unsafe` without a `// SAFETY:` comment explaining why the \
                      invariants hold"
                .to_string(),
        });
    }
}

fn has_safety_comment(file: &LexedFile, line: u32) -> bool {
    if file.comment_on(line).contains("SAFETY:") {
        return true;
    }
    // Walk upward through the contiguous run of comment-only /
    // attribute / empty lines directly above.
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if file.comment_on(l).contains("SAFETY:") {
            return true;
        }
        let text = file.line_text(l);
        let skippable = text.is_empty()
            || text.starts_with("//")
            || text.starts_with("/*")
            || text.starts_with('*')
            || text.starts_with("#[");
        if !skippable {
            return false;
        }
        l -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// no-panic-request-path
// ---------------------------------------------------------------------------

/// PR 7's degrade-don't-die guarantee: the serve request path isolates
/// panics at the boundary, so nothing inside it may introduce one.
fn no_panic_request_path(rel: &str, file: &LexedFile, scan: &mut FileScan) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let hit = match t.text.as_str() {
            "unwrap" => {
                prev_dot
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
            }
            "expect" => prev_dot && toks.get(i + 1).is_some_and(|n| n.is_punct('(')),
            "panic" => toks.get(i + 1).is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if hit {
            scan.findings.push(Finding {
                rule: NO_PANIC_REQUEST_PATH,
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in a serve request-path module: the request path must \
                     degrade, not die (return a ServiceError; see docs/ROBUSTNESS.md)",
                    if t.text == "panic" {
                        "panic!".to_string()
                    } else {
                        format!(".{}(", t.text)
                    }
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// doc-catalog-drift: code-side extraction
// ---------------------------------------------------------------------------

/// Collects the names this file declares that doc catalogs must list:
/// failpoint sites, alloc scopes, metric names (within the configured
/// metric paths), and error codes (within the configured error files).
fn extract_catalog_uses(rel: &str, file: &LexedFile, cfg: &LintConfig, scan: &mut FileScan) {
    let toks = &file.tokens;
    let in_metric_paths = cfg.metric_paths.iter().any(|p| rel.starts_with(p.as_str()));
    let in_error_files = cfg.error_code_files.iter().any(|f| f == rel);

    let push = |kind: CatalogKind, name: &str, line: u32, scan: &mut FileScan| {
        scan.catalog.push(CatalogUse {
            kind,
            name: name.to_string(),
            file: rel.to_string(),
            line,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        // failpoint("site") / failpoint_infallible("site")
        if (t.text == "failpoint" || t.text == "failpoint_infallible")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(s) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) {
                push(CatalogKind::Failpoint, &s.text, s.line, scan);
            }
        }
        // AllocScope::enter("scope")
        if t.text == "AllocScope"
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("enter"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            if let Some(s) = toks.get(i + 5).filter(|n| n.kind == TokKind::Str) {
                push(CatalogKind::AllocScope, &s.text, s.line, scan);
            }
        }
        if in_metric_paths {
            // .counter("name") / .gauge("name") / .histogram("name")
            if matches!(t.text.as_str(), "counter" | "gauge" | "histogram")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                if let Some(s) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) {
                    push(CatalogKind::Metric, &s.text, s.line, scan);
                }
            }
            // const SOME_GAUGE: &str = "name";
            if t.text == "const"
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text.contains("GAUGE"))
            {
                if let Some(s) = toks[i..toks.len().min(i + 8)]
                    .iter()
                    .find(|n| n.kind == TokKind::Str)
                {
                    push(CatalogKind::Metric, &s.text, s.line, scan);
                }
            }
        }
        if in_error_files {
            // String literals in the body of `fn code(…) -> … { … }`.
            if t.text == "fn" && toks.get(i + 1).is_some_and(|n| n.is_ident("code")) {
                for s in body_strings(toks, i + 2) {
                    push(CatalogKind::ErrorCode, &s.text, s.line, scan);
                }
            }
            // The declared taxonomy: const ERROR_CODES … = [ "…", … ];
            if t.text == "ERROR_CODES" {
                for s in toks[i..].iter().take_while(|n| !n.is_punct(';')) {
                    if s.kind == TokKind::Str {
                        push(CatalogKind::ErrorCode, &s.text, s.line, scan);
                    }
                }
            }
            // err("code", …) protocol-level minting.
            if t.text == "err" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                if let Some(s) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) {
                    push(CatalogKind::ErrorCode, &s.text, s.line, scan);
                }
            }
        }
    }
}

/// String literals inside the first `{ … }` block at or after `from`.
fn body_strings(toks: &[Token], from: usize) -> Vec<&Token> {
    let mut j = from;
    while j < toks.len() && !toks[j].is_punct('{') {
        j += 1;
    }
    let mut depth = 0i32;
    let mut out = Vec::new();
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if toks[j].kind == TokKind::Str && !toks[j].in_test {
            out.push(&toks[j]);
        }
        j += 1;
    }
    out
}
