//! `cajade-lint`: a zero-dependency project-invariant lint pass.
//!
//! Clippy and `syn` are unavailable in this offline build environment,
//! so — the same way `crates/compat` vendors its dependency stand-ins —
//! the workspace's cross-PR invariants are enforced by an in-tree
//! checker. It is not a Rust parser: it is a token-level scanner (a
//! small lexer that correctly skips comments, string/char/raw-string
//! literals, and tracks `#[cfg(test)]` / `mod tests` regions) feeding a
//! rule engine with per-line `// lint:allow(rule)` suppressions, human
//! and JSON output, and a non-zero exit on findings.
//!
//! The rules and the invariants they guard are cataloged in
//! `docs/LINTS.md`:
//!
//! | Rule | Invariant |
//! |---|---|
//! | `float-total-order` | rankings tie-break under `f64::total_cmp`, never `partial_cmp` |
//! | `safety-comment` | every `unsafe` site carries a `// SAFETY:` justification |
//! | `no-panic-request-path` | the serve request path degrades, never panics |
//! | `doc-catalog-drift` | metric/failpoint/error-code/alloc-scope doc tables match the code |
//! | `budget-checkpoint` | pattern/graph loops stay deadline-interruptible |
//!
//! Run it over the workspace:
//!
//! ```sh
//! cargo run -p cajade-lint --release              # human output
//! cargo run -p cajade-lint --release -- --format json
//! ```
//!
//! The library surface ([`lint_workspace`] + [`LintConfig`]) exists so
//! the rule set is testable against fixture trees; the binary and CI
//! run [`LintConfig::workspace`].

pub mod catalog;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::{DocPaths, LintConfig};
pub use engine::{lint_workspace, render_human, render_json, LintReport};
pub use rules::{CatalogKind, Finding, RULES};
