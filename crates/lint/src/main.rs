//! The `cajade-lint` binary: scans the workspace with the project
//! rule set and exits non-zero on findings. CI runs this as a gate on
//! every PR (see `docs/LINTS.md`).

use std::path::PathBuf;
use std::process::ExitCode;

use cajade_lint::{engine, rules, LintConfig};

const USAGE: &str = "\
cajade-lint — project-invariant lint pass (docs/LINTS.md)

USAGE:
    cajade-lint [ROOT] [--format human|json] [--list-rules]

    ROOT            workspace root to scan (default: nearest directory
                    at or above the cwd containing a `crates/` dir,
                    else the cwd)
    --format FMT    `human` (default) or `json`
    --list-rules    print the rule catalog and exit

EXIT CODE:
    0  no findings        1  findings        2  usage or I/O error
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for (id, desc) in rules::RULES {
                    println!("{id}: {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                other => {
                    eprintln!("--format expects `human` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => PathBuf::from("."),
        },
    };
    let cfg = LintConfig::workspace(root);
    match engine::lint_workspace(&cfg) {
        Ok(report) => {
            if format == "json" {
                println!("{}", engine::render_json(&report));
            } else {
                print!("{}", engine::render_human(&report));
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cajade-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks upward from the cwd looking for a directory containing
/// `crates/` — `cargo run -p cajade-lint` sets the cwd to the
/// workspace root already; this makes invocations from subdirectories
/// do the right thing too.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
