//! Markdown-side extraction for the `doc-catalog-drift` rule.
//!
//! The docs declare their catalogs as markdown tables (failpoint sites
//! in `docs/ROBUSTNESS.md`, error codes in `docs/PROTOCOL.md`, alloc
//! scopes and metric names in `docs/OBSERVABILITY.md`). This module
//! pulls backticked names out of those tables so the rule can diff
//! them against what the code declares.
//!
//! Two conventions keep the docs readable without defeating the check:
//!
//! * **Brace families** — a doc row may write
//!   `mine_{feature_selection,prepare}_us` for a family of names; the
//!   extractor expands the braces into every member.
//! * **Templates** — names containing `<`, `*`, or whitespace (e.g.
//!   `cache_<name>_hits_total`) are patterns, not declarations, and are
//!   skipped.

use std::collections::BTreeSet;

/// A name found in a doc, with the 1-based line it came from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DocName {
    pub name: String,
    pub line: u32,
}

/// Every concrete backticked name anywhere in `markdown`, brace
/// families expanded, templates skipped. Used for one-directional
/// code → doc presence checks (metric names).
pub fn doc_names(markdown: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in markdown.lines() {
        for raw in backticked(line) {
            for name in expand_braces(&raw) {
                if is_concrete(&name) {
                    out.insert(name);
                }
            }
        }
    }
    out
}

/// Names declared in the *first column* of the table that follows the
/// heading containing `section` (case-insensitive substring match on
/// heading lines). Rows may declare several names in one cell
/// (`` `a` / `b` ``); brace families expand; templates are skipped.
/// Returns an empty vec when the section or table is missing — the
/// rule reports that as drift.
pub fn table_first_column(markdown: &str, section: &str) -> Vec<DocName> {
    let needle = section.to_ascii_lowercase();
    let mut out = Vec::new();
    let mut in_section = false;
    // Names contributed by the previous table row: a separator row
    // (`|---|---|`) reveals that row was the table header, so its
    // names are retracted.
    let mut prev_row_start = 0usize;
    for (idx, line) in markdown.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if line.starts_with('#') {
            in_section = line.to_ascii_lowercase().contains(&needle);
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let first_cell = match line.trim_start().trim_start_matches('|').split('|').next() {
            Some(c) => c,
            None => continue,
        };
        if first_cell.trim().chars().all(|c| c == '-' || c == ' ') {
            out.truncate(prev_row_start); // header row above the separator
            continue;
        }
        prev_row_start = out.len();
        for raw in backticked(first_cell) {
            for name in expand_braces(&raw) {
                if is_concrete(&name) {
                    out.push(DocName { name, line: lineno });
                }
            }
        }
    }
    out
}

/// Contents of every `` `…` `` span on one line.
fn backticked(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        match after.find('`') {
            Some(close) => {
                out.push(after[..close].to_string());
                rest = &after[close + 1..];
            }
            None => break,
        }
    }
    out
}

/// Expands `a_{x,y}_b` into `a_x_b`, `a_y_b` (recursively for several
/// groups). A name without braces passes through unchanged.
fn expand_braces(name: &str) -> Vec<String> {
    let (open, close) = match (name.find('{'), name.find('}')) {
        (Some(o), Some(c)) if o < c => (o, c),
        _ => return vec![name.to_string()],
    };
    let (head, tail) = (&name[..open], &name[close + 1..]);
    let mut out = Vec::new();
    for part in name[open + 1..close].split(',') {
        out.extend(expand_braces(&format!("{head}{}{tail}", part.trim())));
    }
    out
}

/// A declaration, not a template or prose fragment.
fn is_concrete(name: &str) -> bool {
    !name.is_empty()
        && !name.contains(['<', '*', '{', '}'])
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_families_expand() {
        assert_eq!(
            expand_braces("mine_{a,b}_us"),
            vec!["mine_a_us", "mine_b_us"]
        );
        assert_eq!(expand_braces("plain"), vec!["plain"]);
        assert_eq!(
            expand_braces("x_{a,b}_{c,d}"),
            vec!["x_a_c", "x_a_d", "x_b_c", "x_b_d"]
        );
    }

    #[test]
    fn templates_are_skipped() {
        let doc = "| `cache_<name>_hits_total` | family |\n| `asks_total` | real |";
        let names = doc_names(doc);
        assert!(names.contains("asks_total"));
        assert!(!names.iter().any(|n| n.contains("cache_")));
    }

    #[test]
    fn table_extraction_is_section_scoped() {
        let doc = "\
## Other
| `not_me` | x |
### The catalog
| `code` | Where |
|---|---|
| `a.b` | somewhere |
| `c` / `d` | elsewhere, in `code.rs` |
## After
| `not_me_either` | x |
";
        let names: Vec<String> = table_first_column(doc, "the catalog")
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, vec!["a.b", "c", "d"]);
    }
}
