//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so the workspace vendors
//! the property-testing subset its test suites use: the [`Strategy`](strategy::Strategy)
//! trait with `prop_map` / `prop_filter` / `boxed`, range and tuple and
//! [`collection::vec`] strategies, [`string::string_regex`] over a small
//! regex subset, `any::<T>()`, [`Just`](strategy::Just), `prop_oneof!`, the `proptest!`
//! macro family, and a deterministic [`test_runner::TestRunner`].
//!
//! Failing inputs are reported but **not shrunk** — acceptable for a
//! vendored stand-in whose job is to keep the seed's property tests
//! executable and deterministic.

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::StdRng;
    use rand::Rng;

    /// A value generator. `Value` is the generated type.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> PropMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            PropMap { base: self, f }
        }

        /// Keeps only values satisfying `pred` (regenerating otherwise).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> PropFilter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            PropFilter {
                base: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct PropMap<B, F> {
        pub(crate) base: B,
        pub(crate) f: F,
    }

    impl<B, U, F> Strategy for PropMap<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> U,
    {
        type Value = U;

        fn gen_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// `prop_filter` combinator (bounded rejection sampling).
    pub struct PropFilter<B, F> {
        pub(crate) base: B,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<B, F> Strategy for PropFilter<B, F>
    where
        B: Strategy,
        F: Fn(&B::Value) -> bool,
    {
        type Value = B::Value;

        fn gen_value(&self, rng: &mut StdRng) -> B::Value {
            for _ in 0..10_000 {
                let v = self.base.gen_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 candidates", self.reason);
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F2),
    );

    impl Strategy for &str {
        type Value = String;

        /// A bare string is treated as a regex, like upstream proptest.
        fn gen_value(&self, rng: &mut StdRng) -> String {
            let parsed = crate::string::parse_regex(self)
                .unwrap_or_else(|e| panic!("bad regex strategy '{self}': {e:?}"));
            crate::string::gen_from_regex(&parsed, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::StdRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Marker strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a default "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut StdRng) -> i64 {
            // Mix full-range values with small ones so boundary-adjacent
            // arithmetic gets exercised.
            match rng.gen_range(0..4u8) {
                0 => rng.gen::<u64>() as i64,
                1 => rng.gen_range(-1000i64..1000),
                2 => [i64::MIN, i64::MAX, 0, 1, -1][rng.gen_range(0..5usize)],
                _ => rng.gen_range(-1_000_000i64..1_000_000),
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            match rng.gen_range(0..8u8) {
                0 => [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]
                    [rng.gen_range(0..5usize)],
                1 => f64::from_bits(rng.gen::<u64>()),
                2 => rng.gen_range(-1e12..1e12),
                _ => rng.gen_range(-1e3..1e3),
            }
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen::<u32>()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::StdRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// The type of [`ANY`].
    pub struct AnyBool;

    /// Generates either boolean.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn gen_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::StdRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector strategy with uniform length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-driven string strategies (a generation-oriented subset:
    //! literals, `.`, `[...]` classes with ranges, and the quantifiers
    //! `* + ? {m} {m,n}`).

    use super::StdRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Regex parse error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    pub(crate) enum Atom {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    pub(crate) struct Piece {
        pub(crate) atom: Atom,
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    pub(crate) fn parse_regex(pattern: &str) -> Result<Vec<Piece>, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            if hi < lo {
                                return Err(Error(format!("bad class range {lo}-{hi}")));
                            }
                            ranges.push((lo, hi));
                            i += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if i >= chars.len() {
                        return Err(Error("unterminated character class".into()));
                    }
                    i += 1; // consume ']'
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                '*' | '+' | '?' | '{' | '}' | ']' => {
                    return Err(Error(format!("unexpected '{}' at {}", chars[i], i)))
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .ok_or_else(|| Error("unterminated {}".into()))?
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((lo, hi)) = body.split_once(',') {
                            let lo = lo
                                .trim()
                                .parse::<usize>()
                                .map_err(|e| Error(e.to_string()))?;
                            let hi = hi
                                .trim()
                                .parse::<usize>()
                                .map_err(|e| Error(e.to_string()))?;
                            if hi < lo {
                                return Err(Error(format!("bad repetition {{{body}}}")));
                            }
                            (lo, hi)
                        } else {
                            let n = body
                                .trim()
                                .parse::<usize>()
                                .map_err(|e| Error(e.to_string()))?;
                            (n, n)
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(pieces)
    }

    fn gen_any_char(rng: &mut StdRng) -> char {
        // Mostly printable ASCII, sometimes wider unicode (skipping
        // surrogates via from_u32 retry).
        match rng.gen_range(0..10u8) {
            0..=7 => char::from(rng.gen_range(0x20u8..0x7F)),
            8 => char::from_u32(rng.gen_range(0xA0u32..0x0250)).unwrap_or('¿'),
            _ => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                    break c;
                }
            },
        }
    }

    pub(crate) fn gen_from_regex(pieces: &[Piece], rng: &mut StdRng) -> String {
        let mut out = String::new();
        for p in pieces {
            let count = if p.min == p.max {
                p.min
            } else {
                rng.gen_range(p.min..=p.max)
            };
            for _ in 0..count {
                match &p.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyChar => out.push(gen_any_char(rng)),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        let c = loop {
                            let v = lo as u32 + rng.gen_range(0..span);
                            if let Some(c) = char::from_u32(v) {
                                break c;
                            }
                        };
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Compiled regex string strategy.
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn gen_value(&self, rng: &mut StdRng) -> String {
            gen_from_regex(&self.pieces, rng)
        }
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        Ok(RegexStrategy {
            pieces: parse_regex(pattern)?,
        })
    }
}

pub mod test_runner {
    //! Deterministic case runner.

    use super::StdRng;
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — fails the whole test.
        Fail(String),
        /// Precondition not met — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A skipped case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Overall test failure returned by [`TestRunner::run`].
    #[derive(Debug, Clone)]
    pub struct TestError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Runs strategies against a test closure.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Runner with the given config and a fixed seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x5EED_CA7A_DE00_0001),
            }
        }

        /// Fixed-seed runner with default config (upstream parity name).
        pub fn deterministic() -> Self {
            TestRunner::new(ProptestConfig::default())
        }

        /// Runs `test` against `config.cases` generated inputs.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let reject_cap = self.config.cases as u64 * 64;
            while passed < self.config.cases {
                let value = strategy.gen_value(&mut self.rng);
                let rendered = format!("{value:?}");
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > reject_cap {
                            return Err(TestError {
                                message: format!(
                                    "too many rejected cases ({rejected}) after {passed} passes"
                                ),
                            });
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestError {
                            message: format!("case #{passed} failed: {msg}\ninput: {rendered}"),
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Skips the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property-test functions (upstream `proptest!` shape).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let outcome = runner.run(&($($strat,)+), |($($pat,)+)| {
                $body
                Ok(())
            });
            if let Err(e) = outcome {
                panic!("proptest {}: {}", stringify!($name), e);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(-1i64),
            (0i64..10).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_form_parses(mut xs in crate::collection::vec(0i64..5, 0..4)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut runner = TestRunner::deterministic();
        runner
            .run(
                &(
                    crate::string::string_regex("z[a-z0-9_]{0,8}").unwrap(),
                    crate::string::string_regex("[a-zA-Z '0-9]{0,12}").unwrap(),
                ),
                |(ident, text)| {
                    prop_assert!(ident.starts_with('z'));
                    prop_assert!(ident.len() <= 9);
                    prop_assert!(ident
                        .chars()
                        .skip(1)
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
                    prop_assert!(text.len() <= 12);
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn failures_carry_input_and_rejects_skip() {
        let mut runner = TestRunner::deterministic();
        let err = runner
            .run(&(0i64..100,), |(x,)| {
                prop_assume!(x % 2 == 0);
                prop_assert!(x < 90, "x too large: {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("x too large"));
        assert!(err.message.contains("input:"));
    }

    #[test]
    fn deterministic_runs_repeat() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(20));
            runner
                .run(&(0i64..1000,), |(x,)| {
                    out.push(x);
                    Ok(())
                })
                .unwrap();
            out
        };
        assert_eq!(collect(), collect());
    }
}
