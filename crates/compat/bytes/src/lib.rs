//! Offline stand-in for the `bytes` crate: the growable [`BytesMut`]
//! buffer plus the [`BufMut`] writer trait, backed by a plain `Vec<u8>`.
//! Only the big-endian put methods the workspace's key encoder uses are
//! provided.

use std::ops::{Deref, DerefMut};

/// Write interface for growable byte buffers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer (the mutable half of upstream `bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_methods_append_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u32(0x0203_0405);
        b.put_i64(-1);
        assert_eq!(b.len(), 13);
        assert_eq!(&b[..5], &[1, 2, 3, 4, 5]);
        assert_eq!(&b[5..], &[0xFF; 8]);
    }

    #[test]
    fn clear_keeps_reuse_semantics() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abc");
        let snapshot = b.to_vec();
        b.clear();
        assert!(b.is_empty());
        b.extend_from_slice(b"abc");
        assert_eq!(b.to_vec(), snapshot);
    }
}
