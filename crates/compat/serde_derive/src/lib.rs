//! No-op derive macros for the in-workspace `serde` stand-in.
//!
//! The stand-in's `Serialize`/`Deserialize` are blanket-implemented marker
//! traits (the workspace writes its JSON by hand), so the derives have
//! nothing to emit — they exist only so `#[derive(Serialize)]` attributes
//! on seed types keep compiling without network access to real serde.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
