//! Offline stand-in for `serde`.
//!
//! The workspace serializes by hand (see `cajade_core::export::to_json`
//! and the service crate's JSON module), but seed types carry
//! `#[derive(Serialize)]` attributes. This stand-in keeps those compiling
//! without network access: [`Serialize`] and [`Deserialize`] are marker
//! traits blanket-implemented for every type, and the re-exported derive
//! macros (same names, macro namespace) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait: every type is "serializable".
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait: every type is "deserializable".
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize)]
    #[allow(dead_code)]
    struct Probe {
        x: u32,
    }

    fn assert_serialize<T: super::Serialize>(_: &T) {}

    #[test]
    fn derive_compiles_and_trait_is_blanket() {
        let p = Probe { x: 7 };
        assert_serialize(&p);
        assert_eq!(p.x, 7);
    }
}
