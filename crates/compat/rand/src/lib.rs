//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small API subset the CaJaDE crates actually use: [`rngs::StdRng`] (a
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. Determinism for a given seed is the only
//! contract callers rely on; the streams differ from upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution support for `Rng::gen::<T>()`.
pub trait Standard: Sized {
    /// Samples a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for i64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Unbiased sampling of `[0, span)` via rejection; `span == 0` means the
/// full 2^64 range (only reachable from the unsupported full-width case,
/// which the callers never hit).
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Zone-based rejection keeps the distribution exact.
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide < zone {
            return wide % span;
        }
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; deterministic
    /// per seed, which is all the workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            let n = self.len();
            for i in (1..n).rev() {
                let j = (super::uniform_u128(rng, i as u128 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle changed the order");
    }
}
