//! Offline stand-in for `criterion`: the macro + builder subset the bench
//! crate uses, with a plain timing loop instead of criterion's statistics.
//!
//! Behavioural contract with cargo (same as upstream criterion):
//! `cargo bench` passes `--bench` to the harness, which triggers real
//! measurement; `cargo test` runs the same binary *without* `--bench`, and
//! every benchmark body executes exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the harness was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test`: run each body once, no timing.
    Test,
    /// `cargo bench`: measure and report.
    Bench,
}

/// Benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs the measured body.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean nanoseconds per iteration, filled by `iter` in bench mode.
    mean_ns: f64,
}

impl Bencher {
    /// Times `body`. In test mode the body runs exactly once.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        if self.mode == Mode::Test {
            black_box(body());
            return;
        }
        // Warm-up + calibration: how many iterations fit in ~50ms?
        let t0 = Instant::now();
        let mut calib_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(50) {
            black_box(body());
            calib_iters += 1;
        }
        let per_iter = t0.elapsed().as_secs_f64() / calib_iters as f64;
        // Budget ~1s of measurement across `sample_size` samples.
        let total_iters = ((1.0 / per_iter) as u64).clamp(self.sample_size as u64, 1_000_000);
        let iters_per_sample = (total_iters / self.sample_size as u64).max(1);
        let mut best = f64::INFINITY;
        let mut sum = 0.0;
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            let ns = s.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            best = best.min(ns);
            sum += ns;
        }
        self.mean_ns = sum / self.sample_size as f64;
    }
}

fn render_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The harness entry object.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Test,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builder: samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Reads the cargo-provided CLI args (`--bench` selects measure mode).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--bench") {
            self.mode = Mode::Bench;
        }
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, self.sample_size, &id.into_id(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, sample_size: usize, id: &str, f: &mut F) {
    let mut b = Bencher {
        mode,
        sample_size,
        mean_ns: f64::NAN,
    };
    match mode {
        Mode::Test => {
            println!("Testing {id} ... ");
            f(&mut b);
            println!("Testing {id} ... ok");
        }
        Mode::Bench => {
            f(&mut b);
            println!("{id:<50} time: {}", render_ns(b.mean_ns));
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self._parent.mode, self.sample_size, &full, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(self._parent.mode, self.sample_size, &full, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the harness `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("et", 32);
        assert_eq!(id.id, "et/32");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion {
            mode: Mode::Bench,
            sample_size: 3,
        };
        let mut b = Bencher {
            mode: Mode::Bench,
            sample_size: 3,
            mean_ns: f64::NAN,
        };
        let mut x = 0u64;
        b.iter(|| x = x.wrapping_add(1));
        assert!(b.mean_ns.is_finite() && b.mean_ns >= 0.0);
        let _ = &mut c;
    }
}
