//! Offline stand-in for `rayon`: the parallel-iterator subset the CaJaDE
//! pipeline uses (`par_iter().map(..).collect()`, `into_par_iter`,
//! `for_each`), executed on `std::thread::scope` workers with an atomic
//! work queue. Results preserve input order, matching rayon's indexed
//! `collect` semantics, so parallel and sequential runs are
//! bit-identical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Maximum worker threads (mirrors `rayon`'s default pool sizing).
fn default_workers(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items)
        .max(1)
}

/// Runs `f(i)` for every index in `0..n` on worker threads, returning the
/// outputs in index order.
fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = default_workers(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                out.lock().unwrap_or_else(|e| e.into_inner()).push((i, v));
            });
        }
    });
    let mut pairs = out.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// A parallel iterator: a deferred `map` pipeline over an owned item list.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Drains the pipeline, returning items in order.
    fn drain_ordered(self) -> Vec<Self::Item>;

    /// Maps each item through `f` on worker threads.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drain_ordered();
    }

    /// Collects into `C` (Vec, or `Result<Vec<_>, E>` short-circuiting on
    /// the first error in item order, as rayon does).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(self.drain_ordered())
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drain_ordered().into_iter().sum()
    }

    /// Item count.
    fn count(self) -> usize {
        self.drain_ordered().len()
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Builds the collection from items in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Root pipeline stage: owned items, evaluated lazily on drain.
pub struct IterRoot<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterRoot<T> {
    type Item = T;

    fn drain_ordered(self) -> Vec<T> {
        self.items
    }
}

/// A `map` stage. The closure runs on worker threads at drain time.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drain_ordered(self) -> Vec<R> {
        let items = self.base.drain_ordered();
        let n = items.len();
        // Move items into Option slots so worker threads can take each
        // exactly once by index.
        let slots: Vec<Mutex<Option<B::Item>>> =
            items.into_iter().map(|v| Mutex::new(Some(v))).collect();
        let f = &self.f;
        run_indexed(n, move |i| {
            let item = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("item taken twice");
            f(item)
        })
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IterRoot<T>;

    fn into_par_iter(self) -> IterRoot<T> {
        IterRoot { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IterRoot<usize>;

    fn into_par_iter(self) -> IterRoot<usize> {
        IterRoot {
            items: self.collect(),
        }
    }
}

/// `par_iter()` over a borrowed slice/Vec (yields `&T`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IterRoot<&'a T>;

    fn par_iter(&'a self) -> IterRoot<&'a T> {
        IterRoot {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IterRoot<&'a T>;

    fn par_iter(&'a self) -> IterRoot<&'a T> {
        IterRoot {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits_in_order() {
        let v: Vec<i32> = (0..100).collect();
        let r: Result<Vec<i32>, String> = v
            .into_par_iter()
            .map(|x| {
                if x >= 40 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "bad 40");
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let threads = seen.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(threads > 1, "expected multiple workers, saw {threads}");
        }
    }

    #[test]
    fn sum_and_count() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 55);
        assert_eq!((0..17usize).into_par_iter().count(), 17);
    }
}
