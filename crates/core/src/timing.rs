//! Per-phase session timings, matching the step names of the paper's
//! runtime-breakdown tables (Fig. 7, Fig. 9c/9d).

use std::time::Duration;

use cajade_mining::MiningTimings;

/// Wall-clock breakdown of one explanation session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionTimings {
    /// Provenance-table computation (the paper folds this into query
    /// evaluation; reported separately here for transparency).
    pub provenance: Duration,
    /// `JG Enum.` row: join-graph enumeration (Algorithm 2).
    pub jg_enum: Duration,
    /// `Materialize APTs` row.
    pub materialize_apts: Duration,
    /// Per-APT mining phases, accumulated over all join graphs.
    pub mining: MiningTimings,
}

impl SessionTimings {
    /// Total wall-clock across all phases.
    pub fn total(&self) -> Duration {
        self.provenance + self.jg_enum + self.materialize_apts + self.mining.total()
    }

    /// `(step name, duration)` rows in the paper's table order, plus the
    /// vectorized engine's index/bitmap preparation step.
    pub fn breakdown_rows(&self) -> Vec<(&'static str, Duration)> {
        vec![
            ("Feature Selection", self.mining.feature_selection),
            ("Gen. Pat. Cand.", self.mining.gen_pat_cand),
            ("F-score Calc.", self.mining.fscore_calc),
            ("Materialize APTs", self.materialize_apts),
            ("Refine Patterns", self.mining.refine_patterns),
            ("Sampling for F1", self.mining.sampling_for_f1),
            ("Prepare Index", self.mining.prepare),
            ("JG Enum.", self.jg_enum),
            ("Provenance", self.provenance),
        ]
    }

    /// Renders the breakdown as aligned text (seconds, two decimals),
    /// with the refinement-BFS pruning counters appended when any fired.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, d) in self.breakdown_rows() {
            out.push_str(&format!("{name:<18} {:>9.3}s\n", d.as_secs_f64()));
        }
        out.push_str(&format!(
            "{:<18} {:>9.3}s\n",
            "total",
            self.total().as_secs_f64()
        ));
        if self.mining.ub_pruned_children > 0 || self.mining.recall_pruned_subtrees > 0 {
            out.push_str(&format!(
                "pruning: {} children ub-pruned, {} subtrees recall-pruned\n",
                self.mining.ub_pruned_children, self.mining.recall_pruned_subtrees
            ));
        }
        if self.mining.budget_stopped > 0 {
            out.push_str(&format!(
                "budget: {} mining phases stopped early\n",
                self.mining.budget_stopped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_phases() {
        let t = SessionTimings {
            provenance: Duration::from_millis(10),
            jg_enum: Duration::from_millis(20),
            materialize_apts: Duration::from_millis(30),
            mining: MiningTimings {
                feature_selection: Duration::from_millis(5),
                gen_pat_cand: Duration::from_millis(5),
                sampling_for_f1: Duration::from_millis(5),
                fscore_calc: Duration::from_millis(5),
                refine_patterns: Duration::from_millis(5),
                prepare: Duration::from_millis(5),
                ..MiningTimings::default()
            },
        };
        assert_eq!(t.total(), Duration::from_millis(90));
        assert_eq!(t.breakdown_rows().len(), 9);
        let text = t.render();
        assert!(text.contains("F-score Calc."));
        assert!(text.contains("total"));
        // Counters don't contribute to durations and only render when set.
        assert!(!text.contains("ub-pruned"));
        let mut with_counters = t;
        with_counters.mining.ub_pruned_children = 7;
        with_counters.mining.recall_pruned_subtrees = 3;
        assert_eq!(with_counters.total(), Duration::from_millis(90));
        let text = with_counters.render();
        assert!(text.contains("7 children ub-pruned"));
        assert!(text.contains("3 subtrees recall-pruned"));
        assert!(!text.contains("budget"));
        with_counters.mining.budget_stopped = 2;
        assert_eq!(with_counters.total(), Duration::from_millis(90));
        assert!(with_counters
            .render()
            .contains("2 mining phases stopped early"));
    }
}
