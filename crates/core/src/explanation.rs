//! Session-level explanations: a mined pattern rendered together with its
//! join graph and supports (the full Definition-6 tuple), plus the
//! near-duplicate collapsing of §6 ("the same pattern may be returned for
//! several join graphs … we removed duplicates and explanations that only
//! differ slightly in terms of constants").

use cajade_graph::Apt;
use cajade_mining::{MinedExplanation, PatternMetrics};
use cajade_storage::StringPool;

/// One explanation of the final, globally-ranked list.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Rendered pattern, e.g. `player_salary.salary≤15330435 [t1]`.
    pub pattern_desc: String,
    /// Structured predicates: `(attribute, operator, constant)`.
    pub preds: Vec<(String, String, String)>,
    /// Join-graph structure, e.g. `PT - player_salary - player`.
    pub graph_structure: String,
    /// Rendered join conditions per edge.
    pub graph_edges: Vec<String>,
    /// Rendered group key of the primary output tuple.
    pub primary: String,
    /// Exact Definition-7 metrics (support = `(tp/a1 vs fp/a2)`).
    pub metrics: PatternMetrics,
    /// True if mined from the PT-only graph (provenance-only pattern).
    pub from_pt_only: bool,
    /// Index of the join graph within the session's enumeration.
    pub graph_index: usize,
}

impl Explanation {
    /// Builds a rendered explanation from a mined pattern.
    pub fn from_mined(
        mined: &MinedExplanation,
        apt: &Apt,
        pool: &StringPool,
        primary: String,
        graph_index: usize,
    ) -> Explanation {
        let preds = mined
            .pattern
            .preds()
            .iter()
            .map(|(f, p)| {
                (
                    apt.fields[*f].name.clone(),
                    p.op.symbol().to_string(),
                    p.value.to_value().render(pool),
                )
            })
            .collect();
        Explanation {
            pattern_desc: mined.pattern.render(apt, pool),
            preds,
            graph_structure: apt.graph.structure_string(),
            graph_edges: apt.graph.describe_edges(),
            primary,
            metrics: mined.metrics,
            from_pt_only: apt.graph.num_edges() == 0,
            graph_index,
        }
    }

    /// Collapse key: primary tuple + attribute/operator multiset. Two
    /// explanations with the same key differ only in constants or join
    /// path — the §6 near-duplicate criterion.
    pub fn near_duplicate_key(&self) -> String {
        let mut parts: Vec<String> = self
            .preds
            .iter()
            .map(|(a, op, _)| format!("{a}{op}"))
            .collect();
        parts.sort();
        format!("{}|{}", self.primary, parts.join(","))
    }

    /// One-line rendering in the Table-4 style.
    pub fn render_line(&self) -> String {
        format!(
            "{} [{}] {} F={:.2} ({})",
            self.pattern_desc,
            self.primary,
            self.metrics.support_string(),
            self.metrics.f_score,
            self.graph_structure,
        )
    }

    /// Narrative rendering in the style of the paper's introduction boxes:
    ///
    /// > *GSW won more games in season 2015-16 because Player S. Curry
    /// > scored ≥ 23 points in 58 out of 73 games in 2015-16 compared to
    /// > 21 out of 47 games in 2012-13.*
    ///
    /// `subject` names the query result in the user's words (e.g. "GSW's
    /// wins" / "admissions with this insurance"); the rest is filled from
    /// the pattern and its supports.
    pub fn narrate(&self, subject: &str) -> String {
        let conditions = if self.preds.is_empty() {
            "the context held".to_string()
        } else {
            self.preds
                .iter()
                .map(|(attr, op, value)| format!("{attr} {op} {value}"))
                .collect::<Vec<_>>()
                .join(" and ")
        };
        let via = if self.from_pt_only {
            String::new()
        } else {
            format!(" (context joined via {})", self.graph_structure)
        };
        format!(
            "{subject} differ for {} because {conditions} in {} out of {} of its \
             provenance rows, compared to {} out of {} for the other side{via}.",
            self.primary, self.metrics.tp, self.metrics.a1, self.metrics.fp, self.metrics.a2,
        )
    }
}

/// Sorts by exact F-score (descending) and drops near-duplicates, keeping
/// the best-scoring representative of each key. Returns at most `k`.
pub fn rank_and_collapse(mut all: Vec<Explanation>, k: usize, collapse: bool) -> Vec<Explanation> {
    all.sort_by(|a, b| {
        // `total_cmp`: a NaN F-score (degenerate metrics) compared Equal
        // to everything under `partial_cmp(..).unwrap_or(Equal)`, letting
        // the global ranking depend on per-graph arrival order.
        b.metrics
            .f_score
            .total_cmp(&a.metrics.f_score)
            // Deterministic tiebreak: simpler pattern, then lexicographic.
            .then(a.preds.len().cmp(&b.preds.len()))
            .then(a.pattern_desc.cmp(&b.pattern_desc))
    });
    if collapse {
        let mut seen = std::collections::HashSet::new();
        all.retain(|e| seen.insert(e.near_duplicate_key()));
    }
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(pattern: &str, preds: &[(&str, &str, &str)], f: f64, primary: &str) -> Explanation {
        Explanation {
            pattern_desc: pattern.into(),
            preds: preds
                .iter()
                .map(|(a, o, c)| (a.to_string(), o.to_string(), c.to_string()))
                .collect(),
            graph_structure: "PT".into(),
            graph_edges: vec![],
            primary: primary.into(),
            metrics: PatternMetrics {
                tp: 1,
                a1: 1,
                fp: 0,
                a2: 1,
                precision: 1.0,
                recall: 1.0,
                f_score: f,
            },
            from_pt_only: true,
            graph_index: 0,
        }
    }

    #[test]
    fn ranking_is_by_fscore() {
        let out = rank_and_collapse(
            vec![
                mk("a", &[("x", "=", "1")], 0.5, "t1"),
                mk("b", &[("y", "=", "1")], 0.9, "t1"),
            ],
            10,
            true,
        );
        assert_eq!(out[0].pattern_desc, "b");
    }

    #[test]
    fn near_duplicates_collapse_keeping_best() {
        let out = rank_and_collapse(
            vec![
                mk("salary≤100", &[("salary", "≤", "100")], 0.8, "t1"),
                mk("salary≤120", &[("salary", "≤", "120")], 0.9, "t1"),
                mk("salary≤100 for t2", &[("salary", "≤", "100")], 0.7, "t2"),
            ],
            10,
            true,
        );
        // The two t1 variants collapse (same attr+op), t2 survives.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pattern_desc, "salary≤120");
        assert!(out.iter().any(|e| e.primary == "t2"));
    }

    #[test]
    fn collapse_can_be_disabled() {
        let out = rank_and_collapse(
            vec![
                mk("a", &[("salary", "≤", "100")], 0.8, "t1"),
                mk("b", &[("salary", "≤", "120")], 0.9, "t1"),
            ],
            10,
            false,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn truncates_to_k() {
        let many: Vec<Explanation> = (0..30)
            .map(|i| mk(&format!("p{i}"), &[("x", "=", &i.to_string())], 0.5, "t1"))
            .collect();
        // Distinct constants on the same attr+op: they all share one key →
        // collapse keeps 1. Without collapse, k bounds the list.
        assert_eq!(rank_and_collapse(many.clone(), 5, false).len(), 5);
        assert_eq!(rank_and_collapse(many, 5, true).len(), 1);
    }

    #[test]
    fn render_line_contains_support_and_graph() {
        let e = mk("salary≤100", &[("salary", "≤", "100")], 0.75, "t1");
        let line = e.render_line();
        assert!(line.contains("(1/1 vs 0/1)"));
        assert!(line.contains("F=0.75"));
        assert!(line.contains("PT"));
    }

    #[test]
    fn narrate_reads_like_the_paper_boxes() {
        let mut e = mk(
            "player=S. Curry ∧ pts≥23",
            &[("player", "=", "S. Curry"), ("pts", "≥", "23")],
            0.9,
            "season=2015-16",
        );
        e.metrics.tp = 58;
        e.metrics.a1 = 73;
        e.metrics.fp = 21;
        e.metrics.a2 = 47;
        e.from_pt_only = false;
        e.graph_structure = "PT - player_game_scoring".into();
        let text = e.narrate("GSW's wins");
        assert!(text.contains("player = S. Curry and pts ≥ 23"));
        assert!(text.contains("58 out of 73"));
        assert!(text.contains("21 out of 47"));
        assert!(text.contains("context joined via PT - player_game_scoring"));
    }
}
