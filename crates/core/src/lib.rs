//! # cajade-core
//!
//! The end-to-end CaJaDE pipeline (the paper's system, §2–§4):
//!
//! ```text
//! query ──► why-provenance PT ──► join-graph enumeration (Alg. 2)
//!                                        │ valid graphs
//!                                        ▼
//!                              APT materialization (Def. 4)
//!                                        │ per graph
//!                                        ▼
//!                              pattern mining (Alg. 1, MineAPT)
//!                                        │ top-k per graph
//!                                        ▼
//!                    global F-score ranking + near-duplicate collapse
//! ```
//!
//! Entry point: [`ExplanationSession`]. All λ parameters live in
//! [`Params`] with the paper's Table-1 defaults; per-phase wall-clock
//! timings ([`SessionTimings`]) mirror the paper's runtime-breakdown
//! tables.

#![warn(missing_docs)]

mod error;
mod explanation;
pub mod export;
mod params;
pub mod pipeline;
mod session;
mod timing;

pub use cajade_mining::{FeatSelEngine, PreparedApt, Question, ScoreEngine, SelAttr};
pub use error::CoreError;
pub use explanation::Explanation;
pub use export::{ExplanationExport, SessionExport};
pub use params::Params;
pub use session::{ExplanationSession, SessionResult, UserQuestion};
pub use timing::SessionTimings;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
