//! Session parameters — the λ's of the paper's Table 1 plus the
//! join-graph-enumeration knobs of §4.

use cajade_mining::{MiningParams, SelAttr};

/// All CaJaDE tuning parameters.
///
/// | Paper name | Field | Table-1 default |
/// |---|---|---|
/// | λ#edges | `max_edges` | 3 |
/// | λ#sel-attr | `mining.sel_attr` | 3 |
/// | λ_attrNum | `mining.lambda_attr_num` | 3 |
/// | λ_pat-samp | `mining.lambda_pat_samp` | 0.1 (cap 1000) |
/// | λ_F1-samp | `mining.lambda_f1_samp` | 0.3 |
/// | λ_qcost | `max_cost` | (not listed; see below) |
#[derive(Debug, Clone)]
pub struct Params {
    /// λ#edges: maximum join-graph edges.
    pub max_edges: usize,
    /// λ_qcost: skip graphs whose estimated APT exceeds this row count.
    pub max_cost: f64,
    /// §4's primary-key-coverage validity check.
    pub check_pk_coverage: bool,
    /// Mine the PT-only graph Ω₀ too (provenance-only patterns).
    pub include_pt_only: bool,
    /// Per-APT mining parameters (Algorithm 1).
    pub mining: MiningParams,
    /// Length of the final globally-ranked explanation list (the paper's
    /// appendix reports top-20).
    pub top_k_global: usize,
    /// Collapse near-duplicate patterns (same attributes & operators,
    /// possibly different constants / join paths) in the global ranking —
    /// §6: "we removed duplicates and explanations that only differ
    /// slightly in terms of constants".
    pub collapse_near_duplicates: bool,
    /// Mine join graphs on worker threads (off by default so measured
    /// runtimes decompose the way the paper's single-threaded prototype
    /// does).
    pub parallel: bool,
}

impl Default for Params {
    fn default() -> Self {
        Self::paper()
    }
}

impl Params {
    /// Table-1 defaults.
    pub fn paper() -> Self {
        Params {
            max_edges: 3,
            max_cost: 5_000_000.0,
            check_pk_coverage: true,
            include_pt_only: true,
            mining: MiningParams::default(),
            top_k_global: 20,
            collapse_near_duplicates: true,
            parallel: false,
        }
    }

    /// Reduced configuration for examples, doctests, and smoke tests:
    /// two-edge graphs, smaller forests, full sampling (tiny data makes
    /// sampling noise dominate otherwise).
    pub fn fast() -> Self {
        let mut p = Params::paper();
        p.max_edges = 2;
        p.mining.forest_trees = 8;
        p.mining.k_cat_patterns = 15;
        p.mining.lambda_pat_samp = 1.0;
        p.mining.lambda_f1_samp = 1.0;
        p.mining.sel_attr = SelAttr::Count(4);
        p
    }

    /// Case-study configuration (§6): a wider attribute budget so the
    /// richer multi-predicate explanations of Tables 4/6 can form.
    pub fn case_study() -> Self {
        let mut p = Params::paper();
        p.mining.sel_attr = SelAttr::Count(8);
        p.mining.top_k = 20;
        p
    }

    /// Applies a λ_F1-samp override (the knob most experiments sweep).
    pub fn with_f1_sample_rate(mut self, rate: f64) -> Self {
        self.mining.lambda_f1_samp = rate;
        self
    }

    /// Applies a λ#edges override.
    pub fn with_max_edges(mut self, edges: usize) -> Self {
        self.max_edges = edges;
        self
    }

    /// Toggles feature selection (the Fig. 7 ablation).
    pub fn with_feature_selection(mut self, on: bool) -> Self {
        self.mining.feature_selection = on;
        self
    }

    /// Bans attributes (by name substring) from patterns — interactive
    /// curation of trivial functional-dependency restatements (§6.2).
    pub fn with_banned_attrs(mut self, banned: &[&str]) -> Self {
        self.mining.banned_attrs = banned.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Enables automatic FD-based attribute exclusion (the paper's
    /// §6.2/§8 future-work item implemented here): attributes whose values
    /// functionally determine the question's groups on the APT are dropped
    /// instead of relying on a manual ban list.
    pub fn with_fd_exclusion(mut self, on: bool) -> Self {
        self.mining.exclude_fd_attrs = on;
        self
    }

    /// Renders the parameter table (the `paper table1` harness output).
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            ("lambda_#edges".into(), self.max_edges.to_string()),
            (
                "lambda_#sel-attr".into(),
                format!("{:?}", self.mining.sel_attr),
            ),
            (
                "lambda_attrNum".into(),
                self.mining.lambda_attr_num.to_string(),
            ),
            (
                "lambda_pat-samp".into(),
                format!(
                    "{} (cap {})",
                    self.mining.lambda_pat_samp, self.mining.pat_samp_cap
                ),
            ),
            (
                "lambda_F1-samp".into(),
                self.mining.lambda_f1_samp.to_string(),
            ),
            (
                "lambda_recall".into(),
                self.mining.lambda_recall.to_string(),
            ),
            ("lambda_#frag".into(), self.mining.num_frags.to_string()),
            ("lambda_qcost".into(), format!("{:.0} rows", self.max_cost)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let p = Params::paper();
        assert_eq!(p.max_edges, 3);
        assert_eq!(p.mining.lambda_attr_num, 3);
        assert!((p.mining.lambda_pat_samp - 0.1).abs() < 1e-12);
        assert_eq!(p.mining.pat_samp_cap, 1000);
        assert!((p.mining.lambda_f1_samp - 0.3).abs() < 1e-12);
        assert_eq!(p.mining.sel_attr, SelAttr::Count(3));
    }

    #[test]
    fn builders_compose() {
        let p = Params::paper()
            .with_f1_sample_rate(0.5)
            .with_max_edges(1)
            .with_feature_selection(false);
        assert_eq!(p.mining.lambda_f1_samp, 0.5);
        assert_eq!(p.max_edges, 1);
        assert!(!p.mining.feature_selection);
    }

    #[test]
    fn table1_lists_all_lambdas() {
        let rows = Params::paper().table1_rows();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|(k, _)| k == "lambda_F1-samp"));
    }
}
