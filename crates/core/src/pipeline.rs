//! Composable pipeline stages.
//!
//! The CaJaDE pipeline decomposes into five stages:
//!
//! ```text
//! provenance ──► enumerate ──► materialize ──► mine ──► rank
//! ```
//!
//! [`ExplanationSession::explain`](crate::ExplanationSession::explain)
//! chains them for the one-shot API; the `cajade-service` crate chains the
//! same stages around its provenance/APT caches so repeated questions on a
//! query skip straight to mining. Stage outputs that are expensive to
//! produce ([`ProvenanceTable`], [`Apt`]) travel behind `Arc` so a cache
//! can hand the same materialization to many concurrent sessions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cajade_graph::{enumerate_join_graphs, Apt, EnumConfig, EnumeratedGraph, SchemaGraph};
use cajade_mining::{
    mine_apt, mine_prepared, prepare_apt_with, MiningTimings, PreparedApt, Question,
};
pub use cajade_mining::{ColumnStatsProvider, NoSharedStats};
use cajade_query::{execute, ProvenanceTable, Query, QueryResult};
use cajade_storage::Database;
use rayon::prelude::*;

use crate::explanation::{rank_and_collapse, Explanation};
use crate::params::Params;
use crate::session::{SessionResult, UserQuestion};
use crate::timing::SessionTimings;
use crate::{CoreError, Result};

/// Output of the provenance + enumeration stages for one `(db, query)`
/// pair. Everything here is question-independent, which is what makes it
/// cacheable across an interactive session's successive questions.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The query's result (for display and question resolution).
    pub result: QueryResult,
    /// The why-provenance table `PT(Q, D)`.
    pub pt: Arc<ProvenanceTable>,
    /// All enumerated join graphs (valid and invalid).
    pub graphs: Arc<Vec<EnumeratedGraph>>,
    /// Wall-clock spent computing provenance.
    pub provenance_time: Duration,
    /// Wall-clock spent enumerating join graphs.
    pub jg_enum_time: Duration,
}

impl PreparedQuery {
    /// Indices (into `graphs`) of the valid join graphs, i.e. the ones
    /// worth materializing and mining.
    pub fn valid_graph_indices(&self) -> Vec<usize> {
        self.graphs
            .iter()
            .enumerate()
            .filter(|(_, g)| g.valid)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Stage 1+2: executes the query, computes why-provenance, and enumerates
/// join graphs (Algorithm 2).
pub fn prepare(
    db: &Database,
    schema_graph: &SchemaGraph,
    query: &Query,
    params: &Params,
) -> Result<PreparedQuery> {
    let result = execute(db, query)?;

    let t0 = Instant::now();
    let pt = {
        let _span = cajade_obs::span("provenance");
        let _mem = cajade_obs::AllocScope::enter("provenance");
        ProvenanceTable::compute(db, query)?
    };
    let provenance_time = t0.elapsed();

    let t0 = Instant::now();
    let enum_cfg = EnumConfig {
        max_edges: params.max_edges,
        max_cost: params.max_cost,
        check_pk_coverage: params.check_pk_coverage,
        include_pt_only: params.include_pt_only,
    };
    let graphs = {
        let _span = cajade_obs::span("jg_enum");
        let _mem = cajade_obs::AllocScope::enter("jg_enum");
        enumerate_join_graphs(schema_graph, db, query, pt.num_rows, &enum_cfg)?
    };
    let jg_enum_time = t0.elapsed();

    Ok(PreparedQuery {
        result,
        pt: Arc::new(pt),
        graphs: Arc::new(graphs),
        provenance_time,
        jg_enum_time,
    })
}

/// Resolves a [`UserQuestion`] (group-by column/value pairs) to the
/// group-index form the miner consumes.
pub fn resolve_question(
    db: &Database,
    query: &Query,
    pt: &ProvenanceTable,
    question: &UserQuestion,
) -> Result<Question> {
    let resolve = |spec: &[(String, String)]| -> Result<usize> {
        let pairs: Vec<(&str, &str)> = spec.iter().map(|(c, v)| (c.as_str(), v.as_str())).collect();
        pt.find_group(db, query, &pairs).ok_or_else(|| {
            CoreError::NoSuchOutputTuple(
                pairs
                    .iter()
                    .map(|(c, v)| format!("{c}={v}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        })
    };
    Ok(match question {
        UserQuestion::TwoPoint { t1, t2 } => Question::TwoPoint {
            t1: resolve(t1)?,
            t2: resolve(t2)?,
        },
        UserQuestion::SinglePoint { t } => Question::SinglePoint { t: resolve(t)? },
    })
}

/// Rendered group label (`col=value, …`) for explanation output.
pub fn group_label(db: &Database, query: &Query, pt: &ProvenanceTable, group: usize) -> String {
    query
        .group_by
        .iter()
        .zip(&pt.group_keys[group])
        .map(|(col, v)| format!("{}={}", col.column, v.render(db.pool())))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Stage 3: materializes `APT(Q, D, Ω)` for one join graph (Definition 4).
pub fn materialize(db: &Database, pt: &ProvenanceTable, graph: &EnumeratedGraph) -> Result<Apt> {
    let _span = cajade_obs::span("materialize_apt");
    let _mem = cajade_obs::AllocScope::enter("materialize");
    Ok(Apt::materialize(db, pt, &graph.graph)?)
}

/// Stage 3.5: the question-independent mining preparation of one APT
/// (feature selection, LCA candidate pool, fragment boundaries, scoring
/// index and predicate bitmaps — see [`cajade_mining::prepare_apt_with`]).
///
/// `stats` supplies shareable per-column statistics: the service passes
/// its database-scoped column-stats cache so a question over many join
/// graphs analyzes each context column once; one-shot callers pass
/// [`NoSharedStats`] and compute everything per APT.
pub fn prepare_mining(
    apt: &Apt,
    pt: &ProvenanceTable,
    params: &Params,
    stats: &dyn ColumnStatsProvider,
) -> PreparedApt {
    let _span = cajade_obs::span("prepare_apt");
    let _mem = cajade_obs::AllocScope::enter("prepare");
    prepare_apt_with(apt, pt, &params.mining, stats)
}

/// Everything one mined join graph contributes to the session result.
#[derive(Debug)]
pub struct GraphOutcome {
    /// Rendered explanations from this graph.
    pub explanations: Vec<Explanation>,
    /// `(structure, APT rows, APT attributes)` — the Fig. 10a statistics.
    pub apt_stat: (String, usize, usize),
    /// Wall-clock spent materializing this graph's APT (zero on a cache
    /// hit in the service path).
    pub materialize: Duration,
    /// Mining-phase timings.
    pub mining: MiningTimings,
    /// Patterns evaluated while mining this APT.
    pub patterns: usize,
}

/// Stage 4: mines one materialized APT (Algorithm 1) and renders its
/// explanations. `graph_index` is the graph's index within the session's
/// enumeration; `materialize_time` is attributed to this outcome for the
/// Fig. 10 style breakdown.
// The argument list mirrors the stage's actual data dependencies; a
// context struct would only relocate the same seven names.
#[allow(clippy::too_many_arguments)]
pub fn mine_one(
    db: &Database,
    query: &Query,
    pt: &ProvenanceTable,
    apt: &Apt,
    question: &Question,
    params: &Params,
    graph_index: usize,
    materialize_time: Duration,
) -> GraphOutcome {
    let _span = cajade_obs::span("mine_apt");
    let _mem = cajade_obs::AllocScope::enter("mine");
    let outcome = mine_apt(apt, pt, question, &params.mining);
    let explanations = outcome
        .explanations
        .iter()
        .map(|m| {
            Explanation::from_mined(
                m,
                apt,
                db.pool(),
                group_label(db, query, pt, m.primary_group),
                graph_index,
            )
        })
        .collect();
    GraphOutcome {
        explanations,
        apt_stat: (apt.graph.structure_string(), apt.num_rows, apt.fields.len()),
        materialize: materialize_time,
        mining: outcome.timings,
        patterns: outcome.patterns_evaluated,
    }
}

/// Stage 4, interactive variant: mines one APT through its cached
/// question-independent preparation ([`cajade_mining::prepare_apt`]).
/// When `prep_computed` is set, the preparation ran as part of this ask
/// and its phase timings are attributed to the outcome; on a warm
/// [`PreparedApt`] the feature-selection / candidate-generation /
/// sampling / prepare phases report zero — the ask skipped them.
#[allow(clippy::too_many_arguments)]
pub fn mine_one_prepared(
    db: &Database,
    query: &Query,
    pt: &ProvenanceTable,
    apt: &Apt,
    prep: &PreparedApt,
    question: &Question,
    params: &Params,
    graph_index: usize,
    materialize_time: Duration,
    prep_computed: bool,
) -> GraphOutcome {
    let _span = cajade_obs::span("mine_apt");
    let _mem = cajade_obs::AllocScope::enter("mine");
    let mut outcome = mine_prepared(prep, apt, pt, question, &params.mining);
    if prep_computed {
        outcome.timings.accumulate(&prep.prep_timings);
    }
    let explanations = outcome
        .explanations
        .iter()
        .map(|m| {
            Explanation::from_mined(
                m,
                apt,
                db.pool(),
                group_label(db, query, pt, m.primary_group),
                graph_index,
            )
        })
        .collect();
    GraphOutcome {
        explanations,
        apt_stat: (apt.graph.structure_string(), apt.num_rows, apt.fields.len()),
        materialize: materialize_time,
        mining: outcome.timings,
        patterns: outcome.patterns_evaluated,
    }
}

/// Stage 3+4 over all valid graphs: materialize then mine each one, on
/// worker threads when `params.parallel` is set. Outcomes come back in
/// graph order, so parallel and sequential runs produce identical results.
pub fn materialize_and_mine(
    db: &Database,
    query: &Query,
    prepared: &PreparedQuery,
    question: &Question,
    params: &Params,
) -> Result<Vec<GraphOutcome>> {
    let valid = prepared.valid_graph_indices();
    // A single APT's materialization is not truncatable, so the budget
    // boundary sits between graphs: once the deadline passes, remaining
    // whole graphs are skipped and the ask answers from the graphs mined
    // so far. `Ok(None)` marks a skipped graph.
    let run_one = |graph_index: usize| -> Result<Option<GraphOutcome>> {
        if cajade_obs::budget::stop("materialize") {
            return Ok(None);
        }
        let eg = &prepared.graphs[graph_index];
        let t0 = Instant::now();
        let apt = materialize(db, &prepared.pt, eg)?;
        let materialize_time = t0.elapsed();
        Ok(Some(mine_one(
            db,
            query,
            &prepared.pt,
            &apt,
            question,
            params,
            graph_index,
            materialize_time,
        )))
    };
    let outcomes: Vec<Option<GraphOutcome>> = if params.parallel && valid.len() > 1 {
        // The rayon pool's worker threads don't inherit the caller's
        // thread-local budget or alloc-scope chain; re-install both
        // inside each closure (the same hop trace collectors make in
        // the service layer).
        let budget = cajade_obs::budget::current();
        let mem_scope = cajade_obs::alloc::current_scope();
        valid
            .par_iter()
            .map(|&i| {
                mem_scope.install(|| match &budget {
                    Some(b) => b.install(|| run_one(i)),
                    None => run_one(i),
                })
            })
            .collect::<Result<_>>()?
    } else {
        valid.into_iter().map(run_one).collect::<Result<_>>()?
    };
    Ok(outcomes.into_iter().flatten().collect())
}

/// Stage 5: global F-score ranking + near-duplicate collapse (§6).
pub fn rank(all: Vec<Explanation>, params: &Params) -> Vec<Explanation> {
    let _span = cajade_obs::span("rank");
    let _mem = cajade_obs::AllocScope::enter("rank");
    rank_and_collapse(all, params.top_k_global, params.collapse_near_duplicates)
}

/// Assembles per-graph outcomes into a [`SessionResult`], accumulating
/// timings and applying the ranking stage.
pub fn assemble(
    prepared: &PreparedQuery,
    outcomes: Vec<GraphOutcome>,
    params: &Params,
) -> SessionResult {
    let mut timings = SessionTimings {
        provenance: prepared.provenance_time,
        jg_enum: prepared.jg_enum_time,
        ..Default::default()
    };
    let num_graphs_mined = outcomes.len();
    let mut all = Vec::new();
    let mut apt_stats = Vec::new();
    let mut patterns_evaluated = 0usize;
    for o in outcomes {
        timings.materialize_apts += o.materialize;
        timings.mining.accumulate(&o.mining);
        apt_stats.push(o.apt_stat);
        patterns_evaluated += o.patterns;
        all.extend(o.explanations);
    }
    // When a budget is installed (and still is at assembly — the service
    // calls `assemble` inside the budget scope), surface what truncated.
    let truncated: Vec<String> = cajade_obs::budget::current()
        .map(|b| b.truncated().into_iter().map(str::to_string).collect())
        .unwrap_or_default();
    SessionResult {
        explanations: rank(all, params),
        timings,
        num_graphs_enumerated: prepared.graphs.len(),
        num_graphs_mined,
        pt_rows: prepared.pt.num_rows,
        result: prepared.result.clone(),
        apt_stats,
        patterns_evaluated,
        degraded: !truncated.is_empty(),
        truncated,
    }
}
