//! Machine-readable export of session results.
//!
//! Downstream tools (notebooks, UIs — the paper demonstrates CaJaDE in an
//! interactive front end) want structured output rather than rendered
//! text. [`SessionExport`] is a serde-serializable snapshot of a
//! [`crate::SessionResult`]; `to_json` emits it without pulling a JSON
//! crate into the dependency tree (the structure is flat enough to write
//! by hand).

use serde::Serialize;

use crate::session::SessionResult;

/// Serializable explanation.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ExplanationExport {
    /// Rendered pattern.
    pub pattern: String,
    /// Structured predicates `(attribute, operator, constant)`.
    pub predicates: Vec<(String, String, String)>,
    /// Join-graph structure string.
    pub join_graph: String,
    /// Join conditions per edge.
    pub join_conditions: Vec<String>,
    /// Primary output tuple.
    pub primary: String,
    /// Covered provenance rows of the primary output.
    pub tp: usize,
    /// Primary provenance size.
    pub a1: usize,
    /// Covered provenance rows of the secondary output.
    pub fp: usize,
    /// Secondary provenance size.
    pub a2: usize,
    /// Precision / recall / F-score.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F-score.
    pub f_score: f64,
    /// True when mined from the PT-only graph.
    pub provenance_only: bool,
}

/// Serializable session snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct SessionExport {
    /// Ranked explanations.
    pub explanations: Vec<ExplanationExport>,
    /// Join graphs enumerated / mined.
    pub graphs_enumerated: usize,
    /// Graphs mined.
    pub graphs_mined: usize,
    /// Provenance-table size.
    pub pt_rows: usize,
    /// Patterns evaluated across all APTs.
    pub patterns_evaluated: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl SessionExport {
    /// Builds an export from a session result.
    pub fn from_result(r: &SessionResult) -> SessionExport {
        SessionExport {
            explanations: r
                .explanations
                .iter()
                .map(|e| ExplanationExport {
                    pattern: e.pattern_desc.clone(),
                    predicates: e.preds.clone(),
                    join_graph: e.graph_structure.clone(),
                    join_conditions: e.graph_edges.clone(),
                    primary: e.primary.clone(),
                    tp: e.metrics.tp,
                    a1: e.metrics.a1,
                    fp: e.metrics.fp,
                    a2: e.metrics.a2,
                    precision: e.metrics.precision,
                    recall: e.metrics.recall,
                    f_score: e.metrics.f_score,
                    provenance_only: e.from_pt_only,
                })
                .collect(),
            graphs_enumerated: r.num_graphs_enumerated,
            graphs_mined: r.num_graphs_mined,
            pt_rows: r.pt_rows,
            patterns_evaluated: r.patterns_evaluated,
            total_seconds: r.timings.total().as_secs_f64(),
        }
    }

    /// Renders as JSON (hand-written emitter; the structure is flat).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"graphs_enumerated\": {},\n  \"graphs_mined\": {},\n  \"pt_rows\": {},\n  \"patterns_evaluated\": {},\n  \"total_seconds\": {},\n",
            self.graphs_enumerated,
            self.graphs_mined,
            self.pt_rows,
            self.patterns_evaluated,
            self.total_seconds
        ));
        out.push_str("  \"explanations\": [\n");
        for (i, e) in self.explanations.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"pattern\": {}, ", json_str(&e.pattern)));
            out.push_str("\"predicates\": [");
            for (j, (a, op, v)) in e.predicates.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "[{}, {}, {}]",
                    json_str(a),
                    json_str(op),
                    json_str(v)
                ));
            }
            out.push_str("], ");
            out.push_str(&format!("\"join_graph\": {}, ", json_str(&e.join_graph)));
            out.push_str("\"join_conditions\": [");
            for (j, c) in e.join_conditions.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(c));
            }
            out.push_str("], ");
            out.push_str(&format!("\"primary\": {}, ", json_str(&e.primary)));
            out.push_str(&format!(
                "\"support\": [{}, {}, {}, {}], ",
                e.tp, e.a1, e.fp, e.a2
            ));
            out.push_str(&format!(
                "\"precision\": {}, \"recall\": {}, \"f_score\": {}, ",
                e.precision, e.recall, e.f_score
            ));
            out.push_str(&format!("\"provenance_only\": {}", e.provenance_only));
            out.push('}');
            if i + 1 < self.explanations.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_datagen::nba::{self, NbaConfig};
    use cajade_query::parse_sql;

    use crate::{ExplanationSession, Params};

    #[test]
    fn export_round_trips_session_fields() {
        let gen = nba::generate(NbaConfig::tiny());
        let q = parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let mut params = Params::fast();
        params.max_edges = 1;
        let r = ExplanationSession::new(&gen.db, &gen.schema_graph, params)
            .explain_between(
                &q,
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        let export = SessionExport::from_result(&r);
        assert_eq!(export.explanations.len(), r.explanations.len());
        assert_eq!(export.pt_rows, r.pt_rows);

        let json = export.to_json();
        assert!(json.contains("\"explanations\": ["));
        assert!(json.contains("\"f_score\":"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
        assert_eq!(json_str("back\\slash"), "\"back\\\\slash\"");
    }
}
