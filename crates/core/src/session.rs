//! The explanation session: provenance → join-graph enumeration → APT
//! materialization → pattern mining → global ranking.

use std::time::Instant;

use cajade_graph::{enumerate_join_graphs, Apt, EnumConfig, EnumeratedGraph, SchemaGraph};
use cajade_mining::{mine_apt, MiningTimings, Question};
use cajade_query::{execute, ProvenanceTable, Query, QueryResult};
use cajade_storage::Database;
use parking_lot::Mutex;

use crate::explanation::{rank_and_collapse, Explanation};
use crate::params::Params;
use crate::timing::SessionTimings;
use crate::{CoreError, Result};

/// A user question over a query's output, specified by group-by column
/// values (paper §2.4).
#[derive(Debug, Clone)]
pub enum UserQuestion {
    /// Compare two output tuples.
    TwoPoint {
        /// Group-by `(column, rendered value)` pairs selecting `t1`.
        t1: Vec<(String, String)>,
        /// Pairs selecting `t2`.
        t2: Vec<(String, String)>,
    },
    /// Explain one output tuple against all others.
    SinglePoint {
        /// Pairs selecting `t`.
        t: Vec<(String, String)>,
    },
}

impl UserQuestion {
    /// Two-point question from string pairs.
    pub fn two_point(t1: &[(&str, &str)], t2: &[(&str, &str)]) -> Self {
        UserQuestion::TwoPoint {
            t1: t1.iter().map(|(c, v)| (c.to_string(), v.to_string())).collect(),
            t2: t2.iter().map(|(c, v)| (c.to_string(), v.to_string())).collect(),
        }
    }

    /// Single-point question from string pairs.
    pub fn single_point(t: &[(&str, &str)]) -> Self {
        UserQuestion::SinglePoint {
            t: t.iter().map(|(c, v)| (c.to_string(), v.to_string())).collect(),
        }
    }
}

/// Everything a session produces.
#[derive(Debug)]
pub struct SessionResult {
    /// Globally-ranked explanations (top `params.top_k_global`).
    pub explanations: Vec<Explanation>,
    /// Per-phase timings.
    pub timings: SessionTimings,
    /// Join graphs enumerated (valid + invalid).
    pub num_graphs_enumerated: usize,
    /// Join graphs that passed `isValid` and were mined.
    pub num_graphs_mined: usize,
    /// Provenance-table size `|PT(Q, D)|`.
    pub pt_rows: usize,
    /// The query's result (for display).
    pub result: QueryResult,
    /// Per mined join graph: `(structure, APT rows, APT attributes)` —
    /// the Fig. 10a statistics.
    pub apt_stats: Vec<(String, usize, usize)>,
    /// Total patterns evaluated across all APTs.
    pub patterns_evaluated: usize,
}

/// A configured CaJaDE session over one database + schema graph.
pub struct ExplanationSession<'a> {
    db: &'a Database,
    schema_graph: &'a SchemaGraph,
    params: Params,
}

impl<'a> ExplanationSession<'a> {
    /// Creates a session.
    pub fn new(db: &'a Database, schema_graph: &'a SchemaGraph, params: Params) -> Self {
        Self {
            db,
            schema_graph,
            params,
        }
    }

    /// The session's parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Convenience: two-point question from `(column, value)` string pairs.
    pub fn explain_between(
        &self,
        query: &Query,
        t1: &[(&str, &str)],
        t2: &[(&str, &str)],
    ) -> Result<SessionResult> {
        self.explain(query, &UserQuestion::two_point(t1, t2))
    }

    /// Runs the full pipeline for `query` and `question`.
    pub fn explain(&self, query: &Query, question: &UserQuestion) -> Result<SessionResult> {
        let result = execute(self.db, query)?;

        // ---- Provenance. -------------------------------------------------
        let t0 = Instant::now();
        let pt = ProvenanceTable::compute(self.db, query)?;
        let provenance_time = t0.elapsed();

        // ---- Resolve the user question to group indices. -----------------
        let resolve = |spec: &[(String, String)]| -> Result<usize> {
            let pairs: Vec<(&str, &str)> =
                spec.iter().map(|(c, v)| (c.as_str(), v.as_str())).collect();
            pt.find_group(self.db, query, &pairs).ok_or_else(|| {
                CoreError::NoSuchOutputTuple(
                    pairs
                        .iter()
                        .map(|(c, v)| format!("{c}={v}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                )
            })
        };
        let mining_question = match question {
            UserQuestion::TwoPoint { t1, t2 } => Question::TwoPoint {
                t1: resolve(t1)?,
                t2: resolve(t2)?,
            },
            UserQuestion::SinglePoint { t } => Question::SinglePoint { t: resolve(t)? },
        };

        // Rendered group labels for explanation output.
        let group_label = |g: usize| -> String {
            query
                .group_by
                .iter()
                .zip(&pt.group_keys[g])
                .map(|(col, v)| format!("{}={}", col.column, v.render(self.db.pool())))
                .collect::<Vec<_>>()
                .join(", ")
        };

        // ---- Join-graph enumeration (Algorithm 2). -----------------------
        let t0 = Instant::now();
        let enum_cfg = EnumConfig {
            max_edges: self.params.max_edges,
            max_cost: self.params.max_cost,
            check_pk_coverage: self.params.check_pk_coverage,
            include_pt_only: self.params.include_pt_only,
        };
        let graphs = enumerate_join_graphs(self.schema_graph, self.db, query, pt.num_rows, &enum_cfg)?;
        let jg_enum_time = t0.elapsed();

        let valid: Vec<(usize, &EnumeratedGraph)> = graphs
            .iter()
            .enumerate()
            .filter(|(_, g)| g.valid)
            .collect();

        // ---- Per-graph APT materialization + mining. ----------------------
        struct GraphOutcome {
            explanations: Vec<Explanation>,
            apt_stat: (String, usize, usize),
            materialize: std::time::Duration,
            mining: MiningTimings,
            patterns: usize,
        }

        let run_graph = |graph_index: usize, eg: &EnumeratedGraph| -> Result<GraphOutcome> {
            let t0 = Instant::now();
            let apt = Apt::materialize(self.db, &pt, &eg.graph)?;
            let materialize = t0.elapsed();
            let outcome = mine_apt(&apt, &pt, &mining_question, &self.params.mining);
            let explanations = outcome
                .explanations
                .iter()
                .map(|m| {
                    Explanation::from_mined(
                        m,
                        &apt,
                        self.db.pool(),
                        group_label(m.primary_group),
                        graph_index,
                    )
                })
                .collect();
            Ok(GraphOutcome {
                explanations,
                apt_stat: (eg.graph.structure_string(), apt.num_rows, apt.fields.len()),
                materialize,
                mining: outcome.timings,
                patterns: outcome.patterns_evaluated,
            })
        };

        let outcomes: Vec<GraphOutcome> = if self.params.parallel && valid.len() > 1 {
            let results: Mutex<Vec<(usize, Result<GraphOutcome>)>> = Mutex::new(Vec::new());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(valid.len());
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= valid.len() {
                            break;
                        }
                        let (graph_index, eg) = valid[i];
                        let out = run_graph(graph_index, eg);
                        results.lock().push((i, out));
                    });
                }
            })
            .expect("worker panicked");
            let mut collected = results.into_inner();
            collected.sort_by_key(|(i, _)| *i);
            collected
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Result<Vec<_>>>()?
        } else {
            valid
                .iter()
                .map(|&(graph_index, eg)| run_graph(graph_index, eg))
                .collect::<Result<Vec<_>>>()?
        };

        // ---- Aggregate timings + global ranking. --------------------------
        let mut timings = SessionTimings {
            provenance: provenance_time,
            jg_enum: jg_enum_time,
            ..Default::default()
        };
        let mut all = Vec::new();
        let mut apt_stats = Vec::new();
        let mut patterns_evaluated = 0usize;
        for o in outcomes {
            timings.materialize_apts += o.materialize;
            timings.mining.accumulate(&o.mining);
            apt_stats.push(o.apt_stat);
            patterns_evaluated += o.patterns;
            all.extend(o.explanations);
        }
        let explanations = rank_and_collapse(
            all,
            self.params.top_k_global,
            self.params.collapse_near_duplicates,
        );

        Ok(SessionResult {
            explanations,
            timings,
            num_graphs_enumerated: graphs.len(),
            num_graphs_mined: valid.len(),
            pt_rows: pt.num_rows,
            result,
            apt_stats,
            patterns_evaluated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_datagen::nba::{self, NbaConfig};
    use cajade_query::parse_sql;

    fn gsw_query() -> Query {
        parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_q1_two_point() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        assert!(!r.explanations.is_empty(), "explanations produced");
        assert!(r.num_graphs_mined >= 1);
        assert!(r.num_graphs_enumerated >= r.num_graphs_mined);
        assert!(r.pt_rows > 0);
        assert!(r.timings.total().as_nanos() > 0);
        // The ranked list is sorted by exact F-score.
        let fs: Vec<f64> = r.explanations.iter().map(|e| e.metrics.f_score).collect();
        assert!(fs.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{fs:?}");
        // Every explanation has a rendered graph + primary label.
        for e in &r.explanations {
            assert!(!e.graph_structure.is_empty());
            assert!(e.primary.contains("season_name="));
        }
    }

    #[test]
    fn context_explanations_reach_beyond_provenance() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        // At least one explanation must come from a non-trivial join graph
        // (that is CaJaDE's whole point).
        assert!(
            r.explanations.iter().any(|e| !e.from_pt_only),
            "context explanations: {:#?}",
            r.explanations.iter().map(|e| e.render_line()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_tuple_is_a_clean_error() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let err = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2099-00")],
                &[("season_name", "2012-13")],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::NoSuchOutputTuple(_)));
    }

    #[test]
    fn single_point_question_works() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain(
                &gsw_query(),
                &UserQuestion::single_point(&[("season_name", "2015-16")]),
            )
            .unwrap();
        assert!(!r.explanations.is_empty());
        // All explanations target the single point.
        assert!(r
            .explanations
            .iter()
            .all(|e| e.primary.contains("2015-16")));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let gen = nba::generate(NbaConfig::tiny());
        let mut params = Params::fast();
        params.top_k_global = 10;
        let seq = ExplanationSession::new(&gen.db, &gen.schema_graph, params.clone())
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        params.parallel = true;
        let par = ExplanationSession::new(&gen.db, &gen.schema_graph, params)
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        let a: Vec<&str> = seq.explanations.iter().map(|e| e.pattern_desc.as_str()).collect();
        let b: Vec<&str> = par.explanations.iter().map(|e| e.pattern_desc.as_str()).collect();
        assert_eq!(a, b, "parallel mining must not change results");
    }

    #[test]
    fn apt_stats_cover_all_mined_graphs() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        assert_eq!(r.apt_stats.len(), r.num_graphs_mined);
        assert!(r.apt_stats.iter().any(|(s, _, _)| s == "PT"));
    }
}
