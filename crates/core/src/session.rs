//! The explanation session: provenance → join-graph enumeration → APT
//! materialization → pattern mining → global ranking.
//!
//! The heavy lifting lives in [`crate::pipeline`] as composable stages;
//! this module is the one-shot convenience API over them. The
//! `cajade-service` crate chains the same stages around caches for
//! interactive multi-question sessions.

use cajade_graph::SchemaGraph;
use cajade_query::{Query, QueryResult};
use cajade_storage::Database;

use crate::explanation::Explanation;
use crate::params::Params;
use crate::pipeline;
use crate::timing::SessionTimings;
use crate::Result;

/// A user question over a query's output, specified by group-by column
/// values (paper §2.4).
#[derive(Debug, Clone)]
pub enum UserQuestion {
    /// Compare two output tuples.
    TwoPoint {
        /// Group-by `(column, rendered value)` pairs selecting `t1`.
        t1: Vec<(String, String)>,
        /// Pairs selecting `t2`.
        t2: Vec<(String, String)>,
    },
    /// Explain one output tuple against all others.
    SinglePoint {
        /// Pairs selecting `t`.
        t: Vec<(String, String)>,
    },
}

impl UserQuestion {
    /// Two-point question from string pairs.
    pub fn two_point(t1: &[(&str, &str)], t2: &[(&str, &str)]) -> Self {
        UserQuestion::TwoPoint {
            t1: t1
                .iter()
                .map(|(c, v)| (c.to_string(), v.to_string()))
                .collect(),
            t2: t2
                .iter()
                .map(|(c, v)| (c.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Single-point question from string pairs.
    pub fn single_point(t: &[(&str, &str)]) -> Self {
        UserQuestion::SinglePoint {
            t: t.iter()
                .map(|(c, v)| (c.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Builds a question from already-split `(column, value)` specs, the
    /// shape CLI flags and wire protocols produce: both specs non-empty →
    /// two-point, only `t1` → single-point, anything else is an
    /// [`crate::CoreError::InvalidQuestion`].
    pub fn from_specs(t1: &[(String, String)], t2: &[(String, String)]) -> Result<UserQuestion> {
        match (t1.is_empty(), t2.is_empty()) {
            (false, false) => Ok(UserQuestion::TwoPoint {
                t1: t1.to_vec(),
                t2: t2.to_vec(),
            }),
            (false, true) => Ok(UserQuestion::SinglePoint { t: t1.to_vec() }),
            (true, _) => Err(crate::CoreError::InvalidQuestion(
                "no (column, value) pairs select the primary tuple t1".into(),
            )),
        }
    }
}

/// Everything a session produces.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Globally-ranked explanations (top `params.top_k_global`).
    pub explanations: Vec<Explanation>,
    /// Per-phase timings.
    pub timings: SessionTimings,
    /// Join graphs enumerated (valid + invalid).
    pub num_graphs_enumerated: usize,
    /// Join graphs that passed `isValid` and were mined.
    pub num_graphs_mined: usize,
    /// Provenance-table size `|PT(Q, D)|`.
    pub pt_rows: usize,
    /// The query's result (for display).
    pub result: QueryResult,
    /// Per mined join graph: `(structure, APT rows, APT attributes)` —
    /// the Fig. 10a statistics.
    pub apt_stats: Vec<(String, usize, usize)>,
    /// Total patterns evaluated across all APTs.
    pub patterns_evaluated: usize,
    /// True when a request budget (`cajade_obs::budget`) expired and some
    /// phase returned a truncated, best-so-far result.
    pub degraded: bool,
    /// Budget sites that truncated work (first-truncation order); empty
    /// unless `degraded`.
    pub truncated: Vec<String>,
}

/// A configured CaJaDE session over one database + schema graph.
pub struct ExplanationSession<'a> {
    db: &'a Database,
    schema_graph: &'a SchemaGraph,
    params: Params,
}

impl<'a> ExplanationSession<'a> {
    /// Creates a session.
    pub fn new(db: &'a Database, schema_graph: &'a SchemaGraph, params: Params) -> Self {
        Self {
            db,
            schema_graph,
            params,
        }
    }

    /// The session's parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Convenience: two-point question from `(column, value)` string pairs.
    pub fn explain_between(
        &self,
        query: &Query,
        t1: &[(&str, &str)],
        t2: &[(&str, &str)],
    ) -> Result<SessionResult> {
        self.explain(query, &UserQuestion::two_point(t1, t2))
    }

    /// Runs the full pipeline for `query` and `question` by chaining the
    /// [`crate::pipeline`] stages: provenance → enumerate → materialize →
    /// mine → rank.
    pub fn explain(&self, query: &Query, question: &UserQuestion) -> Result<SessionResult> {
        let prepared = pipeline::prepare(self.db, self.schema_graph, query, &self.params)?;
        let mining_question = pipeline::resolve_question(self.db, query, &prepared.pt, question)?;
        let outcomes = pipeline::materialize_and_mine(
            self.db,
            query,
            &prepared,
            &mining_question,
            &self.params,
        )?;
        Ok(pipeline::assemble(&prepared, outcomes, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;
    use cajade_datagen::nba::{self, NbaConfig};
    use cajade_query::parse_sql;

    fn gsw_query() -> Query {
        parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_q1_two_point() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        assert!(!r.explanations.is_empty(), "explanations produced");
        assert!(r.num_graphs_mined >= 1);
        assert!(r.num_graphs_enumerated >= r.num_graphs_mined);
        assert!(r.pt_rows > 0);
        assert!(r.timings.total().as_nanos() > 0);
        // The ranked list is sorted by exact F-score.
        let fs: Vec<f64> = r.explanations.iter().map(|e| e.metrics.f_score).collect();
        assert!(fs.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{fs:?}");
        // Every explanation has a rendered graph + primary label.
        for e in &r.explanations {
            assert!(!e.graph_structure.is_empty());
            assert!(e.primary.contains("season_name="));
        }
    }

    #[test]
    fn context_explanations_reach_beyond_provenance() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        // At least one explanation must come from a non-trivial join graph
        // (that is CaJaDE's whole point).
        assert!(
            r.explanations.iter().any(|e| !e.from_pt_only),
            "context explanations: {:#?}",
            r.explanations
                .iter()
                .map(|e| e.render_line())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_tuple_is_a_clean_error() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let err = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2099-00")],
                &[("season_name", "2012-13")],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::NoSuchOutputTuple(_)));
    }

    #[test]
    fn single_point_question_works() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain(
                &gsw_query(),
                &UserQuestion::single_point(&[("season_name", "2015-16")]),
            )
            .unwrap();
        assert!(!r.explanations.is_empty());
        // All explanations target the single point.
        assert!(r.explanations.iter().all(|e| e.primary.contains("2015-16")));
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let gen = nba::generate(NbaConfig::tiny());
        let mut params = Params::fast();
        params.top_k_global = 10;
        let seq = ExplanationSession::new(&gen.db, &gen.schema_graph, params.clone())
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        params.parallel = true;
        let par = ExplanationSession::new(&gen.db, &gen.schema_graph, params)
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        let a: Vec<&str> = seq
            .explanations
            .iter()
            .map(|e| e.pattern_desc.as_str())
            .collect();
        let b: Vec<&str> = par
            .explanations
            .iter()
            .map(|e| e.pattern_desc.as_str())
            .collect();
        assert_eq!(a, b, "parallel mining must not change results");
    }

    #[test]
    fn apt_stats_cover_all_mined_graphs() {
        let gen = nba::generate(NbaConfig::tiny());
        let session = ExplanationSession::new(&gen.db, &gen.schema_graph, Params::fast());
        let r = session
            .explain_between(
                &gsw_query(),
                &[("season_name", "2015-16")],
                &[("season_name", "2012-13")],
            )
            .unwrap();
        assert_eq!(r.apt_stats.len(), r.num_graphs_mined);
        assert!(r.apt_stats.iter().any(|(s, _, _)| s == "PT"));
    }
}
