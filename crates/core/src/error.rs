use std::fmt;

use cajade_graph::GraphError;
use cajade_query::QueryError;
use cajade_storage::StorageError;

/// Errors from an explanation session.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying query error.
    Query(QueryError),
    /// Underlying graph/APT error.
    Graph(GraphError),
    /// A user-question tuple did not match any output tuple.
    NoSuchOutputTuple(String),
    /// A user question was structurally invalid before ever touching the
    /// data (e.g. no selecting pairs at all).
    InvalidQuestion(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::NoSuchOutputTuple(msg) => {
                write!(f, "user question matches no output tuple: {msg}")
            }
            CoreError::InvalidQuestion(msg) => write!(f, "invalid user question: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}
impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StorageError::NoSuchTable("t".into()).into();
        assert!(e.to_string().contains("t"));
        let e: CoreError = QueryError::UnknownColumn("c".into()).into();
        assert!(e.to_string().contains("c"));
        let e = CoreError::NoSuchOutputTuple("season=1999".into());
        assert!(e.to_string().contains("1999"));
    }
}
