//! Synthetic NBA database with the Figure-5 schema and the planted story
//! the paper's case studies rely on (§5 "Datasets", §6.1).
//!
//! Eleven relations: `season`, `team`, `player`, `game`, `player_salary`,
//! `play_for`, `lineup`, `lineup_player`, `team_game_stats`,
//! `lineup_game_stats`, `player_game_stats`.
//!
//! The *story* (module [`story`]) pins the facts the paper's explanations
//! surface: GSW's per-season win counts (Fig. 14d), Curry's 2015-16
//! scoring jump, Green & Thompson's shared court time, salary changes
//! (Green, LeBron, Butler), tenure moves (LeBron CLE→MIA→CLE, Iguodala →
//! GSW in 2013, Jarrett Jack's single GSW season), GSW's assist surge
//! (Fig. 14b), and the league-wide three-point trend.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use cajade_graph::{JoinCond, SchemaGraph};
use cajade_storage::{AttrKind, DataType, Database, ForeignKey, SchemaBuilder, Value};

use crate::names::{filler_player_name, TEAMS};
use crate::util::{coin, normal_clamped, season_date};
use crate::GeneratedDb;

/// Per-season story facts.
pub mod story {
    /// Season names, index 0 = 2009-10.
    pub const SEASONS: [&str; 10] = [
        "2009-10", "2010-11", "2011-12", "2012-13", "2013-14", "2014-15", "2015-16", "2016-17",
        "2017-18", "2018-19",
    ];

    /// GSW wins per season at 82 games (paper Fig. 14d).
    pub const GSW_WINS: [usize; 10] = [26, 36, 23, 47, 51, 67, 73, 67, 58, 57];

    /// GSW average assists per season (paper Fig. 14b).
    pub const GSW_ASSISTS: [f64; 10] = [
        22.43, 22.52, 22.27, 22.50, 23.32, 27.41, 28.94, 30.38, 29.29, 29.43,
    ];

    /// A story player's profile for one season.
    #[derive(Debug, Clone, Copy)]
    pub struct SeasonProfile {
        /// Team abbreviation.
        pub team: &'static str,
        /// Mean points per game.
        pub pts: f64,
        /// Mean minutes per game.
        pub minutes: f64,
        /// Mean usage percentage.
        pub usage: f64,
        /// Season salary in dollars.
        pub salary: i64,
    }

    /// A story player: name + per-season profile (None = not in league).
    #[derive(Debug, Clone, Copy)]
    pub struct StoryPlayer {
        /// Full player name.
        pub name: &'static str,
        /// Profiles per season index.
        pub seasons: [Option<SeasonProfile>; 10],
    }

    const fn p(
        team: &'static str,
        pts: f64,
        minutes: f64,
        usage: f64,
        salary: i64,
    ) -> Option<SeasonProfile> {
        Some(SeasonProfile {
            team,
            pts,
            minutes,
            usage,
            salary,
        })
    }

    /// The scripted players. Profile numbers follow the paper's Figures
    /// 14a/14c/14e and the salary constants its explanations mention.
    pub const STORY_PLAYERS: [StoryPlayer; 8] = [
        StoryPlayer {
            name: "Stephen Curry",
            seasons: [
                p("GSW", 17.5, 36.2, 21.0, 2_710_560),
                p("GSW", 18.6, 33.6, 22.0, 3_117_120),
                p("GSW", 14.7, 28.2, 22.0, 3_523_680),
                p("GSW", 21.0, 38.2, 27.0, 3_958_742),
                p("GSW", 24.0, 36.5, 28.0, 9_887_642),
                p("GSW", 23.8, 32.7, 28.9, 10_629_213),
                p("GSW", 30.1, 34.2, 32.6, 11_370_786),
                p("GSW", 25.3, 33.4, 30.1, 12_112_359),
                p("GSW", 26.4, 32.0, 31.0, 34_682_550),
                p("GSW", 27.3, 33.8, 30.4, 37_457_154),
            ],
        },
        StoryPlayer {
            name: "Klay Thompson",
            seasons: [
                None,
                None,
                p("GSW", 12.5, 24.4, 19.9, 2_222_160),
                p("GSW", 16.6, 35.8, 21.4, 2_317_920),
                p("GSW", 18.4, 35.4, 22.4, 3_075_880),
                p("GSW", 21.7, 31.9, 26.3, 3_075_880),
                p("GSW", 22.1, 33.3, 26.3, 15_501_000),
                p("GSW", 22.3, 34.0, 26.4, 16_663_575),
                p("GSW", 20.0, 34.3, 24.9, 17_826_150),
                p("GSW", 21.5, 34.0, 26.0, 18_988_725),
            ],
        },
        StoryPlayer {
            name: "Draymond Green",
            seasons: [
                None,
                None,
                None,
                // Fig. 14a averages.
                p("GSW", 2.87, 13.4, 13.0, 850_000),
                p("GSW", 6.23, 21.9, 14.5, 875_000),
                p("GSW", 11.66, 31.5, 18.0, 915_243),
                // 2015-16 vs 2016-17: the salary jump Q_nba1's top
                // explanations hinge on (14 260 870 → 15 330 435).
                p("GSW", 13.96, 34.7, 18.8, 14_260_870),
                p("GSW", 10.21, 32.5, 16.5, 15_330_435),
                p("GSW", 11.04, 32.7, 18.0, 16_400_000),
                p("GSW", 7.36, 31.3, 14.0, 17_469_565),
            ],
        },
        StoryPlayer {
            name: "LeBron James",
            seasons: [
                // Fig. 14c averages; CLE → MIA pay-cut in 2010-11, the
                // Q_nba3 salary explanation.
                p("CLE", 29.71, 39.0, 33.5, 15_779_912),
                p("MIA", 26.72, 38.8, 31.5, 14_500_000),
                p("MIA", 27.15, 37.5, 32.0, 16_022_500),
                p("MIA", 26.79, 37.9, 30.2, 17_545_000),
                p("MIA", 27.13, 37.7, 31.0, 19_067_500),
                p("CLE", 25.26, 36.1, 32.3, 20_644_400),
                p("CLE", 25.26, 35.6, 31.4, 22_970_500),
                p("CLE", 26.41, 37.8, 30.0, 30_963_450),
                p("CLE", 27.45, 36.9, 31.6, 33_285_709),
                p("LAL", 27.36, 35.2, 31.6, 35_654_150),
            ],
        },
        StoryPlayer {
            name: "Jimmy Butler",
            seasons: [
                None,
                None,
                // Fig. 14e averages; rookie-contract salaries drive the
                // Q_nba5 explanation (1 112 880 → 2 008 748).
                p("CHI", 2.60, 8.5, 10.0, 1_066_920),
                p("CHI", 8.60, 26.0, 14.0, 1_112_880),
                p("CHI", 13.10, 38.7, 17.0, 1_112_880),
                p("CHI", 20.02, 38.7, 21.9, 2_008_748),
                p("CHI", 20.88, 36.9, 24.7, 16_393_443),
                p("CHI", 23.89, 36.9, 26.5, 17_552_209),
                p("MIN", 22.15, 36.7, 25.0, 19_301_070),
                p("PHI", 18.69, 33.2, 22.8, 20_445_779),
            ],
        },
        StoryPlayer {
            name: "Andre Iguodala",
            seasons: [
                p("PHI", 17.1, 38.9, 21.0, 12_243_749),
                p("PHI", 14.1, 36.9, 18.0, 13_476_364),
                p("PHI", 12.4, 35.4, 16.0, 14_718_250),
                p("DEN", 13.0, 34.7, 16.5, 14_968_250),
                // Joins GSW in 2013 — the Q_nba4 tenure explanation.
                p("GSW", 9.3, 32.4, 13.0, 12_868_632),
                p("GSW", 7.8, 26.9, 12.5, 12_288_000),
                p("GSW", 7.0, 26.6, 12.0, 11_710_456),
                p("GSW", 7.6, 26.3, 12.3, 11_131_368),
                p("GSW", 6.0, 25.3, 11.0, 14_814_815),
                p("GSW", 5.7, 23.2, 10.8, 16_000_000),
            ],
        },
        StoryPlayer {
            name: "Harrison Barnes",
            seasons: [
                None,
                None,
                None,
                p("GSW", 9.2, 25.4, 15.0, 2_923_920),
                p("GSW", 9.5, 28.3, 14.0, 3_049_920),
                p("GSW", 10.1, 28.3, 15.5, 3_873_398),
                p("GSW", 11.7, 30.9, 15.8, 3_873_398),
                p("DAL", 19.2, 35.5, 23.0, 22_116_750),
                p("DAL", 18.9, 34.2, 22.5, 23_112_004),
                p("DAL", 17.7, 32.3, 21.0, 24_107_258),
            ],
        },
        StoryPlayer {
            name: "Jarrett Jack",
            seasons: [
                p("TOR", 11.4, 26.4, 19.0, 4_600_000),
                p("NOP", 13.1, 30.8, 21.0, 5_000_000),
                p("NOP", 15.6, 34.2, 22.0, 5_400_000),
                // The one GSW season — the controversial Expl8.
                p("GSW", 12.9, 29.7, 21.0, 5_400_000),
                p("CLE", 9.5, 28.1, 17.0, 6_300_000),
                p("BKN", 12.0, 28.9, 20.0, 6_300_000),
                p("BKN", 2.5, 21.2, 15.0, 6_300_000),
                None,
                p("NYK", 7.5, 22.9, 14.0, 2_328_652),
                None,
            ],
        },
    ];
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NbaConfig {
    /// Number of seasons (from 2009-10 onward; max 10).
    pub seasons: usize,
    /// Games per team per season (82 = paper scale).
    pub games_per_team: usize,
    /// Filler players per team (story players are added on top).
    pub players_per_team: usize,
    /// Emit the ~40 extra "rich" stat columns of §5's column list.
    pub rich_stats: bool,
    /// RNG seed.
    pub seed: u64,
}

impl NbaConfig {
    /// Minimal config for tests and doctests (fast to generate and mine).
    pub fn tiny() -> Self {
        Self {
            seasons: 8,
            games_per_team: 10,
            players_per_team: 6,
            rich_stats: false,
            seed: 7,
        }
    }

    /// Full paper-scale configuration (scale factor 1.0).
    pub fn paper() -> Self {
        Self {
            seasons: 10,
            games_per_team: 82,
            players_per_team: 10,
            rich_stats: true,
            seed: 7,
        }
    }

    /// Scale-factor variant: the per-season schedule scales linearly,
    /// mirroring the paper's size-scaled datasets (§5).
    pub fn scaled(sf: f64) -> Self {
        let mut c = Self::paper();
        c.games_per_team = ((82.0 * sf).round() as usize).max(4);
        c
    }
}

/// The rich extra numeric columns (a representative subset of the §5
/// column list; all stats tables share them).
pub const RICH_COLS: [&str; 20] = [
    "fg_two_a",
    "fg_three_a",
    "ftpoints",
    "ptsassisted_two_s",
    "ptsunassisted_two_s",
    "assisted_two_spct",
    "nonputbacksassisted_two_spct",
    "assisted_three_spct",
    "fg_three_apct",
    "shotqualityavg",
    "efgpct",
    "tspct",
    "ptsputbacks",
    "fg_two_ablocked",
    "assistpoints",
    "two_ptassists",
    "three_ptassists",
    "atrimassists",
    "ftdefrebounds",
    "deflongmidrangereboundpct",
];

struct Ctx {
    rng: StdRng,
    cfg: NbaConfig,
}

/// Generates the synthetic NBA database + schema graph.
pub fn generate(cfg: NbaConfig) -> GeneratedDb {
    let seasons = cfg.seasons.min(10);
    let mut ctx = Ctx {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: NbaConfig { seasons, ..cfg },
    };
    let mut db = Database::new("nba");
    create_schema(&mut db, ctx.cfg.rich_stats);

    populate_seasons(&mut db, &ctx.cfg);
    populate_teams(&mut db);
    let rosters = populate_players(&mut db, &mut ctx);
    populate_play_for_and_salaries(&mut db, &ctx.cfg, &rosters);
    let lineups = populate_lineups(&mut db, &mut ctx, &rosters);
    populate_games_and_stats(&mut db, &mut ctx, &rosters, &lineups);

    register_foreign_keys(&mut db);
    let schema_graph = schema_graph(&db);
    GeneratedDb { db, schema_graph }
}

/// Builds the schema graph for the NBA database: FK-derived edges plus the
/// Fig. 3-style extras (the `home_id = winner_id` alternative condition on
/// the stats–game edges and the lineup-player self-join).
pub fn schema_graph(db: &Database) -> SchemaGraph {
    let mut g = SchemaGraph::from_foreign_keys(db);
    // Stats joined to games the home team won (Fig. 3's second condition).
    for stats in ["player_game_stats", "team_game_stats"] {
        g.add_condition(
            stats,
            "game",
            JoinCond::on(&[
                ("game_date", "game_date"),
                ("home_id", "home_id"),
                ("home_id", "winner_id"),
            ]),
        );
    }
    // Players in the same lineup (Fig. 3's self-loop e4).
    g.add_condition(
        "lineup_player",
        "lineup_player",
        JoinCond::on(&[("lineup_id", "lineup_id")]),
    );
    g
}

fn create_schema(db: &mut Database, rich: bool) {
    db.create_table(
        SchemaBuilder::new("season")
            .column_pk("season_id", DataType::Int, AttrKind::Categorical)
            .column("season_name", DataType::Str, AttrKind::Categorical)
            .column("season_type", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("team")
            .column_pk("team_id", DataType::Int, AttrKind::Categorical)
            .column("team", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("player")
            .column_pk("player_id", DataType::Int, AttrKind::Categorical)
            .column("player_name", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("game")
            .column_pk("game_date", DataType::Str, AttrKind::Categorical)
            .column_pk("home_id", DataType::Int, AttrKind::Categorical)
            .column("away_id", DataType::Int, AttrKind::Categorical)
            .column("winner_id", DataType::Int, AttrKind::Categorical)
            .column("season_id", DataType::Int, AttrKind::Categorical)
            .column("home_points", DataType::Int, AttrKind::Numeric)
            .column("away_points", DataType::Int, AttrKind::Numeric)
            .column("home_possessions", DataType::Int, AttrKind::Numeric)
            .column("away_possessions", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("player_salary")
            .column_pk("player_id", DataType::Int, AttrKind::Categorical)
            .column_pk("season_id", DataType::Int, AttrKind::Categorical)
            .column("salary", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("play_for")
            .column_pk("player_id", DataType::Int, AttrKind::Categorical)
            .column_pk("team_id", DataType::Int, AttrKind::Categorical)
            .column_pk("date_start", DataType::Str, AttrKind::Categorical)
            .column("date_end", DataType::Str, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("lineup")
            .column_pk("lineup_id", DataType::Int, AttrKind::Categorical)
            .column("team_id", DataType::Int, AttrKind::Categorical)
            .build(),
    )
    .unwrap();
    db.create_table(
        SchemaBuilder::new("lineup_player")
            .column_pk("lineup_id", DataType::Int, AttrKind::Categorical)
            .column_pk("player_id", DataType::Int, AttrKind::Categorical)
            .build(),
    )
    .unwrap();

    let mut tgs = SchemaBuilder::new("team_game_stats")
        .column_pk("game_date", DataType::Str, AttrKind::Categorical)
        .column_pk("home_id", DataType::Int, AttrKind::Categorical)
        .column_pk("team_id", DataType::Int, AttrKind::Categorical)
        .column("points", DataType::Int, AttrKind::Numeric)
        .column("offposs", DataType::Int, AttrKind::Numeric)
        .column("fg_two_m", DataType::Int, AttrKind::Numeric)
        .column("fg_two_pct", DataType::Float, AttrKind::Numeric)
        .column("fg_three_m", DataType::Int, AttrKind::Numeric)
        .column("fg_three_pct", DataType::Float, AttrKind::Numeric)
        .column("assists", DataType::Int, AttrKind::Numeric)
        .column("rebounds", DataType::Int, AttrKind::Numeric)
        .column("defrebounds", DataType::Int, AttrKind::Numeric)
        .column("offrebounds", DataType::Int, AttrKind::Numeric);
    if rich {
        for c in RICH_COLS {
            tgs = tgs.column(c, DataType::Float, AttrKind::Numeric);
        }
    } else {
        // The core case-study columns always exist.
        for c in [
            "assistpoints",
            "nonputbacksassisted_two_spct",
            "fg_three_apct",
        ] {
            tgs = tgs.column(c, DataType::Float, AttrKind::Numeric);
        }
    }
    db.create_table(tgs.build()).unwrap();

    db.create_table(
        SchemaBuilder::new("lineup_game_stats")
            .column_pk("lineup_id", DataType::Int, AttrKind::Categorical)
            .column_pk("game_date", DataType::Str, AttrKind::Categorical)
            .column_pk("home_id", DataType::Int, AttrKind::Categorical)
            .column("mp", DataType::Float, AttrKind::Numeric)
            .column("tmposs", DataType::Int, AttrKind::Numeric)
            .column("oppo_tmposs", DataType::Int, AttrKind::Numeric)
            .build(),
    )
    .unwrap();

    let mut pgs = SchemaBuilder::new("player_game_stats")
        .column_pk("game_date", DataType::Str, AttrKind::Categorical)
        .column_pk("home_id", DataType::Int, AttrKind::Categorical)
        .column_pk("player_id", DataType::Int, AttrKind::Categorical)
        .column("points", DataType::Int, AttrKind::Numeric)
        .column("minutes", DataType::Float, AttrKind::Numeric)
        .column("usage", DataType::Float, AttrKind::Numeric)
        .column("tspct", DataType::Float, AttrKind::Numeric)
        .column("efgpct", DataType::Float, AttrKind::Numeric);
    if rich {
        for c in [
            "shotqualityavg",
            "assisted_two_spct",
            "fg_three_apct",
            "deflongmidrangereboundpct",
        ] {
            pgs = pgs.column(c, DataType::Float, AttrKind::Numeric);
        }
    }
    db.create_table(pgs.build()).unwrap();
}

fn populate_seasons(db: &mut Database, cfg: &NbaConfig) {
    let regular = db.intern("regular season");
    for s in 0..cfg.seasons {
        let name = db.intern(story::SEASONS[s]);
        db.table_mut("season")
            .unwrap()
            .push_row(vec![
                Value::Int(s as i64 + 1),
                Value::Str(name),
                Value::Str(regular),
            ])
            .unwrap();
    }
}

fn populate_teams(db: &mut Database) {
    for (i, t) in TEAMS.iter().enumerate() {
        let name = db.intern(t);
        db.table_mut("team")
            .unwrap()
            .push_row(vec![Value::Int(i as i64 + 1), Value::Str(name)])
            .unwrap();
    }
}

/// Roster info: per team index, the player ids on that team's filler
/// roster. Story players have ids 1..=8 and float between teams by season.
pub struct Rosters {
    /// Filler player ids per team (index = team index 0..30).
    pub filler: Vec<Vec<i64>>,
}

impl Rosters {
    /// Team index of a team abbreviation.
    pub fn team_index(abbr: &str) -> usize {
        TEAMS.iter().position(|t| *t == abbr).expect("known team")
    }

    /// Story players on `team` (0-based index) in season `s`, as
    /// (player_id, profile).
    pub fn story_on_team(&self, team: usize, s: usize) -> Vec<(i64, story::SeasonProfile)> {
        story::STORY_PLAYERS
            .iter()
            .enumerate()
            .filter_map(|(i, sp)| {
                sp.seasons[s].and_then(|prof| {
                    (Self::team_index(prof.team) == team).then_some((i as i64 + 1, prof))
                })
            })
            .collect()
    }
}

fn populate_players(db: &mut Database, ctx: &mut Ctx) -> Rosters {
    // Story players first (ids 1..=8).
    for (i, sp) in story::STORY_PLAYERS.iter().enumerate() {
        let name = db.intern(sp.name);
        db.table_mut("player")
            .unwrap()
            .push_row(vec![Value::Int(i as i64 + 1), Value::Str(name)])
            .unwrap();
    }
    // Filler players.
    let mut filler = vec![Vec::new(); TEAMS.len()];
    let mut next_id = story::STORY_PLAYERS.len() as i64 + 1;
    let mut slot = 0usize;
    for (t, roster) in filler.iter_mut().enumerate() {
        let _ = t;
        for _ in 0..ctx.cfg.players_per_team {
            let name = db.intern(&filler_player_name(slot));
            db.table_mut("player")
                .unwrap()
                .push_row(vec![Value::Int(next_id), Value::Str(name)])
                .unwrap();
            roster.push(next_id);
            next_id += 1;
            slot += 1;
        }
    }
    Rosters { filler }
}

fn populate_play_for_and_salaries(db: &mut Database, cfg: &NbaConfig, rosters: &Rosters) {
    let seasons = cfg.seasons;
    // Story players: one play_for stint per contiguous same-team run.
    for (i, sp) in story::STORY_PLAYERS.iter().enumerate() {
        let pid = i as i64 + 1;
        let mut s = 0usize;
        while s < seasons {
            let Some(prof) = sp.seasons[s] else {
                s += 1;
                continue;
            };
            let team = prof.team;
            let start = s;
            let mut end = s;
            while end + 1 < seasons && sp.seasons[end + 1].map(|p| p.team) == Some(team) {
                end += 1;
            }
            let start_date = season_date(2009 + start as i32, 0);
            let end_date = season_date(2009 + end as i32, 190);
            let sd = db.intern(&start_date);
            let ed = db.intern(&end_date);
            let tid = Rosters::team_index(team) as i64 + 1;
            db.table_mut("play_for")
                .unwrap()
                .push_row(vec![
                    Value::Int(pid),
                    Value::Int(tid),
                    Value::Str(sd),
                    Value::Str(ed),
                ])
                .unwrap();
            s = end + 1;
        }
        // Salaries for every active season.
        for s in 0..seasons {
            if let Some(prof) = sp.seasons[s] {
                db.table_mut("player_salary")
                    .unwrap()
                    .push_row(vec![
                        Value::Int(pid),
                        Value::Int(s as i64 + 1),
                        Value::Int(prof.salary),
                    ])
                    .unwrap();
            }
        }
    }
    // Filler players: stay on their team for the whole window; salary is a
    // deterministic-ish spread that grows mildly over seasons.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A1A);
    for (t, roster) in rosters.filler.iter().enumerate() {
        for &pid in roster {
            let sd = db.intern(&season_date(2009, 0));
            let ed = db.intern(&season_date(2009 + seasons as i32 - 1, 190));
            db.table_mut("play_for")
                .unwrap()
                .push_row(vec![
                    Value::Int(pid),
                    Value::Int(t as i64 + 1),
                    Value::Str(sd),
                    Value::Str(ed),
                ])
                .unwrap();
            let base = normal_clamped(&mut rng, 4.0e6, 3.0e6, 0.6e6, 2.4e7);
            for s in 0..seasons {
                let salary = (base * (1.0 + 0.05 * s as f64)) as i64;
                db.table_mut("player_salary")
                    .unwrap()
                    .push_row(vec![
                        Value::Int(pid),
                        Value::Int(s as i64 + 1),
                        Value::Int(salary),
                    ])
                    .unwrap();
            }
        }
    }
}

/// Lineup bookkeeping: per team, the lineup ids; plus the special GSW
/// lineup containing Green + Thompson (the Ω₂ explanation of Fig. 2c).
pub struct Lineups {
    /// Lineup ids per team.
    pub per_team: Vec<Vec<i64>>,
    /// The Green+Thompson GSW lineup id.
    pub green_thompson: i64,
}

fn populate_lineups(db: &mut Database, ctx: &mut Ctx, rosters: &Rosters) -> Lineups {
    let mut per_team = vec![Vec::new(); TEAMS.len()];
    let mut next_id = 1i64;
    let mut green_thompson = 0i64;
    let green_id = 3i64; // story index 2 + 1
    let klay_id = 2i64;

    for (t, roster) in rosters.filler.iter().enumerate() {
        let lineups_per_team = 4;
        for l in 0..lineups_per_team {
            let lid = next_id;
            next_id += 1;
            per_team[t].push(lid);
            db.table_mut("lineup")
                .unwrap()
                .push_row(vec![Value::Int(lid), Value::Int(t as i64 + 1)])
                .unwrap();
            // Five members: possibly story players + fillers.
            let mut members: Vec<i64> = Vec::with_capacity(5);
            if TEAMS[t] == "GSW" && l == 0 {
                members.push(green_id);
                members.push(klay_id);
                green_thompson = lid;
            }
            let mut pool: Vec<i64> = roster.clone();
            pool.shuffle(&mut ctx.rng);
            for &pid in pool.iter() {
                if members.len() >= 5 {
                    break;
                }
                if !members.contains(&pid) {
                    members.push(pid);
                }
            }
            for pid in members {
                db.table_mut("lineup_player")
                    .unwrap()
                    .push_row(vec![Value::Int(lid), Value::Int(pid)])
                    .unwrap();
            }
        }
    }
    Lineups {
        per_team,
        green_thompson,
    }
}

fn populate_games_and_stats(
    db: &mut Database,
    ctx: &mut Ctx,
    rosters: &Rosters,
    lineups: &Lineups,
) {
    let seasons = ctx.cfg.seasons;
    let gpt = ctx.cfg.games_per_team;
    let gsw = Rosters::team_index("GSW");
    // Team strength: GSW tracks its win story; others fixed random.
    let strengths: Vec<f64> = (0..TEAMS.len())
        .map(|_| ctx.rng.gen_range(0.35..0.65))
        .collect();

    for s in 0..seasons {
        let year = 2009 + s as i32;
        let rounds = gpt; // each round pairs all 30 teams → 15 games
                          // Pre-decide GSW's wins this season to hit the story count.
        let gsw_target = (story::GSW_WINS[s] as f64 * gpt as f64 / 82.0).round() as usize;
        let mut gsw_outcomes: Vec<bool> = (0..gpt).map(|g| g < gsw_target).collect();
        gsw_outcomes.shuffle(&mut ctx.rng);
        let mut gsw_game_no = 0usize;

        let mut day = 0usize;
        for _round in 0..rounds {
            let mut order: Vec<usize> = (0..TEAMS.len()).collect();
            order.shuffle(&mut ctx.rng);
            for pair in order.chunks_exact(2) {
                let (home, away) = (pair[0], pair[1]);
                let date = season_date(year, day);
                // Winner.
                let gsw_in_game = home == gsw || away == gsw;
                let home_wins = if gsw_in_game {
                    let gsw_wins = gsw_outcomes.get(gsw_game_no).copied().unwrap_or(false);
                    gsw_game_no += 1;
                    if home == gsw {
                        gsw_wins
                    } else {
                        !gsw_wins
                    }
                } else {
                    let p = 0.5 + (strengths[home] - strengths[away]) + 0.07; // home edge
                    coin(&mut ctx.rng, p.clamp(0.05, 0.95))
                };
                let winner = if home_wins { home } else { away };

                emit_game_rows(db, ctx, rosters, lineups, s, &date, home, away, winner);
                day += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_game_rows(
    db: &mut Database,
    ctx: &mut Ctx,
    rosters: &Rosters,
    lineups: &Lineups,
    s: usize,
    date: &str,
    home: usize,
    away: usize,
    winner: usize,
) {
    let gsw = Rosters::team_index("GSW");
    let rng = &mut ctx.rng;
    let date_id = db.pool_mut().intern(date);

    // League scoring drifts up over the decade; winners score more.
    let base = 98.0 + 1.6 * s as f64;
    let margin = rng.gen_range(2..22) as i64;
    let winner_pts = normal_clamped(rng, base + 6.0, 7.0, 80.0, 150.0) as i64;
    let loser_pts = (winner_pts - margin).max(70);
    let (home_points, away_points) = if winner == home {
        (winner_pts, loser_pts)
    } else {
        (loser_pts, winner_pts)
    };
    let home_poss = normal_clamped(rng, 99.0 + 0.6 * s as f64, 4.0, 85.0, 115.0) as i64;
    let away_poss = home_poss + rng.gen_range(-4i64..=4);

    db.table_mut("game")
        .unwrap()
        .push_row(vec![
            Value::Str(date_id),
            Value::Int(home as i64 + 1),
            Value::Int(away as i64 + 1),
            Value::Int(winner as i64 + 1),
            Value::Int(s as i64 + 1),
            Value::Int(home_points),
            Value::Int(away_points),
            Value::Int(home_poss),
            Value::Int(away_poss),
        ])
        .unwrap();

    // Per-team stats + player stats + lineup stats.
    for &(team, pts, poss) in &[
        (home, home_points, home_poss),
        (away, away_points, away_poss),
    ] {
        let won = team == winner;
        // Assists: GSW follows the Fig. 14b trajectory; others stay ~21.5.
        let assists_mean = if team == gsw {
            story::GSW_ASSISTS[s]
        } else {
            21.5 + 0.25 * s as f64
        };
        let assists = normal_clamped(
            rng,
            assists_mean + if won { 1.2 } else { -0.8 },
            2.6,
            10.0,
            45.0,
        );
        let assistpoints = assists * 2.35 + normal_clamped(rng, 0.0, 2.0, -6.0, 6.0);
        let three_rate = 0.24 + 0.012 * s as f64 + if team == gsw { 0.05 } else { 0.0 };
        let fg_three_m =
            (pts as f64 * three_rate / 3.0 / 2.6 + rng.gen_range(-1.5..1.5)).clamp(2.0, 25.0);
        let fg_three_pct = normal_clamped(
            rng,
            0.33 + if won { 0.025 } else { -0.02 } + 0.004 * s as f64,
            0.05,
            0.15,
            0.62,
        );
        let fg_three_apct = normal_clamped(
            rng,
            0.24 + 0.014 * s as f64 + if won { 0.015 } else { -0.01 },
            0.035,
            0.1,
            0.55,
        );
        let fg_two_m = ((pts as f64 - fg_three_m * 3.0 - 15.0) / 2.0).max(8.0);
        let fg_two_pct =
            normal_clamped(rng, 0.49 + if won { 0.02 } else { -0.02 }, 0.04, 0.3, 0.68);
        let rebounds =
            normal_clamped(rng, 43.0 + if won { 2.0 } else { -1.0 }, 4.0, 28.0, 60.0) as i64;
        let offrebounds = normal_clamped(rng, 10.0, 2.5, 3.0, 20.0) as i64;
        let nonputback = normal_clamped(
            rng,
            0.47 + 0.01 * s as f64 + if team == gsw && s >= 5 { 0.06 } else { 0.0 },
            0.05,
            0.2,
            0.85,
        );

        let mut row = vec![
            Value::Str(date_id),
            Value::Int(home as i64 + 1),
            Value::Int(team as i64 + 1),
            Value::Int(pts),
            Value::Int(poss),
            Value::Int(fg_two_m as i64),
            Value::Float((fg_two_pct * 1000.0).round() / 1000.0),
            Value::Int(fg_three_m as i64),
            Value::Float((fg_three_pct * 1000.0).round() / 1000.0),
            Value::Int(assists as i64),
            Value::Int(rebounds),
            Value::Int(rebounds - offrebounds),
            Value::Int(offrebounds),
        ];
        if ctx.cfg.rich_stats {
            for col in RICH_COLS {
                let v = rich_value(
                    rng,
                    col,
                    pts as f64,
                    assists,
                    assistpoints,
                    nonputback,
                    fg_three_apct,
                    s,
                );
                row.push(Value::Float((v * 1000.0).round() / 1000.0));
            }
        } else {
            row.push(Value::Float((assistpoints * 10.0).round() / 10.0));
            row.push(Value::Float((nonputback * 1000.0).round() / 1000.0));
            row.push(Value::Float((fg_three_apct * 1000.0).round() / 1000.0));
        }
        db.table_mut("team_game_stats")
            .unwrap()
            .push_row(row)
            .unwrap();

        // Player stats: story players on this team + filler to five.
        let story_here = rosters.story_on_team(team, s);
        let mut played: Vec<i64> = Vec::new();
        for (pid, prof) in &story_here {
            played.push(*pid);
            let p_pts = normal_clamped(rng, prof.pts, 5.0, 0.0, 60.0) as i64;
            let p_min = normal_clamped(rng, prof.minutes, 4.0, 4.0, 46.0);
            let p_usage = normal_clamped(rng, prof.usage, 2.5, 5.0, 42.0);
            emit_player_row(
                db,
                ctx.cfg.rich_stats,
                rng,
                date_id,
                home,
                *pid,
                p_pts,
                p_min,
                p_usage,
                s,
            );
        }
        let mut pool = rosters.filler[team].clone();
        pool.shuffle(rng);
        for &pid in pool.iter() {
            if played.len() >= 5 {
                break;
            }
            played.push(pid);
            let p_pts = normal_clamped(rng, 9.0, 5.0, 0.0, 40.0) as i64;
            let p_min = normal_clamped(rng, 20.0, 7.0, 2.0, 44.0);
            let p_usage = normal_clamped(rng, 17.0, 4.0, 4.0, 38.0);
            emit_player_row(
                db,
                ctx.cfg.rich_stats,
                rng,
                date_id,
                home,
                pid,
                p_pts,
                p_min,
                p_usage,
                s,
            );
        }

        // Lineup stats: the team's lineups split the minutes. GSW's
        // Green+Thompson lineup logs heavy minutes from 2014-15 on.
        for (i, &lid) in lineups.per_team[team].iter().enumerate() {
            let is_gt = lid == lineups.green_thompson;
            let mp = if is_gt {
                if s >= 5 {
                    normal_clamped(rng, 21.0, 4.0, 6.0, 40.0)
                } else if s == 3 {
                    normal_clamped(rng, 4.0, 2.0, 0.0, 12.0)
                } else {
                    normal_clamped(rng, 8.0, 3.0, 0.0, 20.0)
                }
            } else {
                normal_clamped(rng, 11.0 - i as f64, 3.0, 0.0, 30.0)
            };
            db.table_mut("lineup_game_stats")
                .unwrap()
                .push_row(vec![
                    Value::Int(lid),
                    Value::Str(date_id),
                    Value::Int(home as i64 + 1),
                    Value::Float((mp * 10.0).round() / 10.0),
                    Value::Int(normal_clamped(rng, 45.0, 8.0, 10.0, 90.0) as i64),
                    Value::Int(normal_clamped(rng, 45.0, 8.0, 10.0, 90.0) as i64),
                ])
                .unwrap();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_player_row(
    db: &mut Database,
    rich: bool,
    rng: &mut StdRng,
    date_id: cajade_storage::StrId,
    home: usize,
    pid: i64,
    pts: i64,
    minutes: f64,
    usage: f64,
    s: usize,
) {
    let tspct = normal_clamped(rng, 0.52 + (pts as f64 - 10.0) * 0.004, 0.07, 0.1, 0.9);
    let efgpct = normal_clamped(rng, tspct - 0.02, 0.04, 0.1, 0.9);
    let mut row = vec![
        Value::Str(date_id),
        Value::Int(home as i64 + 1),
        Value::Int(pid),
        Value::Int(pts),
        Value::Float((minutes * 100.0).round() / 100.0),
        Value::Float((usage * 100.0).round() / 100.0),
        Value::Float((tspct * 1000.0).round() / 1000.0),
        Value::Float((efgpct * 1000.0).round() / 1000.0),
    ];
    if rich {
        let sq = normal_clamped(rng, 0.46 + 0.002 * s as f64, 0.03, 0.3, 0.6);
        let a2 = normal_clamped(rng, 0.5, 0.2, 0.0, 1.0);
        let f3a = normal_clamped(rng, 0.25 + 0.012 * s as f64, 0.08, 0.0, 0.7);
        let dlm = normal_clamped(rng, 0.12, 0.06, 0.0, 0.5);
        for v in [sq, a2, f3a, dlm] {
            row.push(Value::Float((v * 1000.0).round() / 1000.0));
        }
    }
    db.table_mut("player_game_stats")
        .unwrap()
        .push_row(row)
        .unwrap();
}

/// Rich-column generator: a few columns carry real signal (shared with the
/// core columns), a few are correlated copies (exercising the clustering
/// step), the rest are noise.
#[allow(clippy::too_many_arguments)]
fn rich_value(
    rng: &mut StdRng,
    col: &str,
    pts: f64,
    assists: f64,
    assistpoints: f64,
    nonputback: f64,
    fg_three_apct: f64,
    s: usize,
) -> f64 {
    match col {
        "assistpoints" => assistpoints,
        "nonputbacksassisted_two_spct" => nonputback,
        "fg_three_apct" => fg_three_apct,
        "two_ptassists" => assists * 0.6 + normal_clamped(rng, 0.0, 1.0, -3.0, 3.0),
        "three_ptassists" => assists * 0.4 + normal_clamped(rng, 0.0, 1.0, -3.0, 3.0),
        "assisted_three_spct" => normal_clamped(rng, 0.72, 0.08, 0.3, 1.0),
        "assisted_two_spct" => normal_clamped(rng, 0.5 + 0.008 * s as f64, 0.07, 0.2, 0.9),
        "efgpct" => normal_clamped(rng, 0.47 + pts * 0.0006, 0.04, 0.3, 0.7),
        "tspct" => normal_clamped(rng, 0.5 + pts * 0.0006, 0.04, 0.3, 0.75),
        "shotqualityavg" => normal_clamped(rng, 0.455 + 0.002 * s as f64, 0.025, 0.35, 0.58),
        "fg_two_a" => normal_clamped(rng, 60.0 - 1.2 * s as f64, 6.0, 30.0, 90.0),
        "fg_three_a" => normal_clamped(rng, 18.0 + 1.3 * s as f64, 4.0, 5.0, 50.0),
        "ftpoints" => normal_clamped(rng, 17.0, 4.0, 2.0, 40.0),
        "ptsassisted_two_s" => assists * 1.3 + normal_clamped(rng, 0.0, 2.0, -6.0, 6.0),
        "ptsunassisted_two_s" => normal_clamped(rng, 18.0, 4.0, 2.0, 40.0),
        "ptsputbacks" => normal_clamped(rng, 4.0, 2.0, 0.0, 14.0),
        "fg_two_ablocked" => normal_clamped(rng, 3.0, 1.5, 0.0, 10.0),
        "atrimassists" => assists * 0.35 + normal_clamped(rng, 0.0, 1.0, -3.0, 3.0),
        "ftdefrebounds" => normal_clamped(rng, 4.0, 1.5, 0.0, 12.0),
        "deflongmidrangereboundpct" => normal_clamped(rng, 0.11, 0.05, 0.0, 0.4),
        _ => normal_clamped(rng, 10.0, 3.0, 0.0, 30.0),
    }
}

fn register_foreign_keys(db: &mut Database) {
    let fks = [
        ("game", vec!["home_id"], "team", vec!["team_id"]),
        ("game", vec!["away_id"], "team", vec!["team_id"]),
        ("game", vec!["winner_id"], "team", vec!["team_id"]),
        ("game", vec!["season_id"], "season", vec!["season_id"]),
        (
            "player_salary",
            vec!["player_id"],
            "player",
            vec!["player_id"],
        ),
        (
            "player_salary",
            vec!["season_id"],
            "season",
            vec!["season_id"],
        ),
        ("play_for", vec!["player_id"], "player", vec!["player_id"]),
        ("play_for", vec!["team_id"], "team", vec!["team_id"]),
        ("lineup", vec!["team_id"], "team", vec!["team_id"]),
        (
            "lineup_player",
            vec!["lineup_id"],
            "lineup",
            vec!["lineup_id"],
        ),
        (
            "lineup_player",
            vec!["player_id"],
            "player",
            vec!["player_id"],
        ),
        (
            "team_game_stats",
            vec!["game_date", "home_id"],
            "game",
            vec!["game_date", "home_id"],
        ),
        ("team_game_stats", vec!["team_id"], "team", vec!["team_id"]),
        (
            "lineup_game_stats",
            vec!["game_date", "home_id"],
            "game",
            vec!["game_date", "home_id"],
        ),
        (
            "lineup_game_stats",
            vec!["lineup_id"],
            "lineup",
            vec!["lineup_id"],
        ),
        (
            "player_game_stats",
            vec!["game_date", "home_id"],
            "game",
            vec!["game_date", "home_id"],
        ),
        (
            "player_game_stats",
            vec!["player_id"],
            "player",
            vec!["player_id"],
        ),
    ];
    for (from, fc, to, tc) in fks {
        db.add_foreign_key(ForeignKey {
            from_table: from.into(),
            from_cols: fc.into_iter().map(String::from).collect(),
            to_table: to.into(),
            to_cols: tc.into_iter().map(String::from).collect(),
        })
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cajade_query::{execute, parse_sql};

    fn tiny() -> GeneratedDb {
        generate(NbaConfig::tiny())
    }

    #[test]
    fn all_eleven_relations_exist() {
        let g = tiny();
        for t in [
            "season",
            "team",
            "player",
            "game",
            "player_salary",
            "play_for",
            "lineup",
            "lineup_player",
            "team_game_stats",
            "lineup_game_stats",
            "player_game_stats",
        ] {
            assert!(g.db.table(t).is_ok(), "missing {t}");
            assert!(g.db.table(t).unwrap().num_rows() > 0, "{t} is empty");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.db.total_rows(), b.db.total_rows());
        let qa = execute(
            &a.db,
            &parse_sql("SELECT count(*) AS c, season_name FROM season GROUP BY season_name")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(qa.num_rows(), NbaConfig::tiny().seasons);
        let _ = b;
    }

    #[test]
    fn gsw_win_story_holds() {
        let g = tiny();
        let q = parse_sql(
            "SELECT COUNT(*) AS win, s.season_name \
             FROM team t, game g, season s \
             WHERE t.team_id = g.winner_id AND g.season_id = s.season_id AND t.team= 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let win_idx = r.table.schema().field_index("win").unwrap();
        let gpt = NbaConfig::tiny().games_per_team as f64;
        // 2015-16 must have the most wins; 2011-12 the fewest.
        let win_for = |season: &str| -> i64 {
            let row = r.find_row(&g.db, &[("season_name", season)]).unwrap();
            r.table.value(row, win_idx).as_i64().unwrap()
        };
        let w1516 = win_for("2015-16");
        let w1112 = win_for("2011-12");
        let w1213 = win_for("2012-13");
        assert!(w1516 > w1213, "73 > 47 shape: {w1516} vs {w1213}");
        assert!(w1213 > w1112, "47 > 23 shape");
        let expected = (story::GSW_WINS[6] as f64 * gpt / 82.0).round() as i64;
        assert_eq!(w1516, expected);
    }

    #[test]
    fn curry_scores_higher_in_1516_than_1213() {
        let g = tiny();
        let q = parse_sql(
            "SELECT AVG(points) AS avg_pts, s.season_name \
             FROM player p, player_game_stats pgs, game gm, season s \
             WHERE p.player_id = pgs.player_id AND gm.game_date = pgs.game_date \
               AND gm.home_id = pgs.home_id AND s.season_id = gm.season_id \
               AND p.player_name = 'Stephen Curry' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let idx = r.table.schema().field_index("avg_pts").unwrap();
        let avg = |season: &str| -> f64 {
            let row = r.find_row(&g.db, &[("season_name", season)]).unwrap();
            r.table.value(row, idx).as_f64().unwrap()
        };
        assert!(avg("2015-16") > avg("2012-13") + 4.0);
    }

    #[test]
    fn iguodala_not_on_gsw_before_2013() {
        let g = tiny();
        // play_for rows for Iguodala: GSW stint starts 2013.
        let pf = g.db.table("play_for").unwrap();
        let player = g.db.table("player").unwrap();
        let iggy_name = g.db.lookup_str("Andre Iguodala").unwrap();
        let iggy_id = (0..player.num_rows())
            .find(|&r| player.value(r, 1) == Value::Str(iggy_name))
            .map(|r| player.value(r, 0).as_i64().unwrap())
            .unwrap();
        let gsw_tid = Rosters::team_index("GSW") as i64 + 1;
        let mut gsw_stints = 0;
        for r in 0..pf.num_rows() {
            if pf.value(r, 0).as_i64() == Some(iggy_id) && pf.value(r, 1).as_i64() == Some(gsw_tid)
            {
                gsw_stints += 1;
                let start = match pf.value(r, 2) {
                    Value::Str(id) => g.db.resolve(id).to_string(),
                    other => panic!("unexpected {other:?}"),
                };
                assert!(
                    start.starts_with("2013"),
                    "GSW stint starts 2013, got {start}"
                );
            }
        }
        assert_eq!(gsw_stints, 1);
    }

    #[test]
    fn salary_story_constants() {
        let g = tiny();
        let sal = g.db.table("player_salary").unwrap();
        // Draymond Green is story player index 2 → id 3; 2015-16 is season 7.
        let green_1516 = (0..sal.num_rows())
            .find(|&r| sal.value(r, 0) == Value::Int(3) && sal.value(r, 1) == Value::Int(7))
            .map(|r| sal.value(r, 2).as_i64().unwrap());
        assert_eq!(green_1516, Some(14_260_870));
        let green_1617 = (0..sal.num_rows())
            .find(|&r| sal.value(r, 0) == Value::Int(3) && sal.value(r, 1) == Value::Int(8))
            .map(|r| sal.value(r, 2).as_i64().unwrap());
        assert_eq!(green_1617, Some(15_330_435));
    }

    #[test]
    fn fk_integrity_spot_checks() {
        let g = tiny();
        // Every pgs row joins a game (same composite key).
        let q = parse_sql(
            "SELECT count(*) AS c, season_id FROM player_game_stats pgs, game g \
             WHERE pgs.game_date = g.game_date AND pgs.home_id = g.home_id GROUP BY season_id",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        let total: i64 = (0..r.num_rows())
            .map(|i| {
                r.table
                    .value(i, r.table.schema().field_index("c").unwrap())
                    .as_i64()
                    .unwrap()
            })
            .sum();
        assert_eq!(
            total as usize,
            g.db.table("player_game_stats").unwrap().num_rows()
        );
    }

    #[test]
    fn schema_graph_validates_and_has_extras() {
        let g = tiny();
        g.schema_graph.validate(&g.db).unwrap();
        // The pgs–game edge carries two conditions (plain + home=winner).
        let e = g
            .schema_graph
            .edges()
            .iter()
            .find(|e| {
                (e.a == "player_game_stats" && e.b == "game")
                    || (e.a == "game" && e.b == "player_game_stats")
            })
            .unwrap();
        assert!(e.conds.len() >= 2);
        // And the lineup_player self-loop exists.
        assert!(g
            .schema_graph
            .edges()
            .iter()
            .any(|e| e.a == "lineup_player" && e.b == "lineup_player"));
    }

    #[test]
    fn green_thompson_lineup_minutes_jump() {
        let g = tiny();
        // Average mp of the Green+Thompson lineup in 2015-16 vs 2012-13.
        let q = parse_sql(
            "SELECT AVG(mp) AS avg_mp, s.season_name \
             FROM lineup_game_stats lgs, game gm, season s, lineup l, team t \
             WHERE lgs.game_date = gm.game_date AND lgs.home_id = gm.home_id \
               AND s.season_id = gm.season_id AND l.lineup_id = lgs.lineup_id \
               AND t.team_id = l.team_id AND t.team = 'GSW' \
             GROUP BY s.season_name",
        )
        .unwrap();
        let r = execute(&g.db, &q).unwrap();
        assert!(r.num_rows() >= 2);
        // Coarse check on trend via all GSW lineups (the planted lineup
        // dominates the average).
        let idx = r.table.schema().field_index("avg_mp").unwrap();
        let avg = |season: &str| -> f64 {
            let row = r.find_row(&g.db, &[("season_name", season)]).unwrap();
            r.table.value(row, idx).as_f64().unwrap()
        };
        assert!(avg("2015-16") > avg("2012-13"));
    }

    #[test]
    fn scaled_config_scales_games() {
        let half = generate(NbaConfig {
            rich_stats: false,
            ..NbaConfig::scaled(0.1)
        });
        let games = half.db.table("game").unwrap().num_rows();
        // 0.1 × 82 ≈ 8 games per team → 8 × 15 pairings per season × 10.
        assert_eq!(games, 8 * 15 * 10);
    }
}
