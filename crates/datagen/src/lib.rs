//! # cajade-datagen
//!
//! Deterministic synthetic datasets with the schemas and planted
//! correlations of the paper's two evaluation corpora:
//!
//! * [`nba`] — the Figure-5 NBA schema (11 relations). The real corpus is
//!   an nba.com scrape we cannot redistribute; the generator plants the
//!   *story* the case studies depend on: GSW's win trajectory (Fig. 14d),
//!   Curry / Green / Thompson stat shifts around 2015-16, salary changes,
//!   player tenures (Iguodala joins GSW in 2013, LeBron's CLE→MIA move),
//!   and season-level team-stat trends (assists, three-point rates).
//! * [`mimic`] — the Figure-6 MIMIC-III schema (6 relations). MIMIC-III
//!   is access-restricted; the generator plants the Table-6 correlations:
//!   insurance ↔ death rate ↔ age ↔ emergency admissions, ICU
//!   length-of-stay ↔ hospital stay length, ethnicity ↔ religion, and
//!   diagnosis-chapter death-rate differences.
//! * [`synth`] — a fully parameterized star schema for the scale sweep:
//!   rows and tables/columns scale independently (table count, column
//!   count, key fan-out, value cardinality — all deterministic from a
//!   seed), with a planted `grp`-correlation so every point mines
//!   non-trivial patterns.
//! * [`scale`] — the §5 scaling procedure: duplicate-up with remapped keys
//!   (integer factors) while preserving foreign-key integrity and join
//!   result sizes; down-scaling regenerates at reduced size (the paper
//!   sampled; regeneration preserves the same distributions and is exactly
//!   reproducible).
//!
//! Both generators return a [`GeneratedDb`]: the database plus its schema
//! graph (foreign keys + the hand-registered extra conditions of Fig. 3,
//! e.g. the `home = winner` variant and the lineup self-join).

#![warn(missing_docs)]

pub mod mimic;
pub mod names;
pub mod nba;
pub mod scale;
pub mod synth;
pub mod util;

use cajade_graph::SchemaGraph;
use cajade_storage::Database;

/// A generated database together with its schema graph.
#[derive(Debug, Clone)]
pub struct GeneratedDb {
    /// The database instance.
    pub db: Database,
    /// Schema graph (FK-derived edges + registered extras).
    pub schema_graph: SchemaGraph,
}
