//! Small statistical helpers for the generators (we avoid extra
//! dependencies like `rand_distr`; Box–Muller is four lines).

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

/// Normal sample clamped to `[lo, hi]`.
pub fn normal_clamped(rng: &mut StdRng, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Exponential sample with the given mean.
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Weighted choice: returns an index into `weights` (must be non-empty
/// with a positive sum).
pub fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Bernoulli draw.
pub fn coin(rng: &mut StdRng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Formats a synthetic calendar date. `day_index` walks forward from
/// `year`-10-01 (an NBA season start) using 28-day months for simplicity —
/// dates only need to be distinct, ordered, and stable.
pub fn season_date(start_year: i32, day_index: usize) -> String {
    let month_offset = day_index / 28;
    let day = day_index % 28 + 1;
    // Season months: Oct(10), Nov, Dec, Jan, Feb, Mar, Apr.
    let month = 10 + month_offset as i32;
    let (year, month) = if month > 12 {
        (start_year + 1, month - 12)
    } else {
        (start_year, month)
    };
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn clamped_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = normal_clamped(&mut r, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut r, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "{f2}");
    }

    #[test]
    fn season_dates_are_ordered_and_distinct() {
        let dates: Vec<String> = (0..150).map(|i| season_date(2015, i)).collect();
        let mut sorted = dates.clone();
        sorted.sort();
        assert_eq!(dates, sorted, "lexicographic order = chronological");
        let mut dedup = dates.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), dates.len());
        assert_eq!(dates[0], "2015-10-01");
        // Crosses the year boundary.
        assert!(dates.iter().any(|d| d.starts_with("2016-01")));
    }
}
